"""Prove a routing configuration unroutable — with a checkable certificate.

The paper's headline capability is *proving* that a global routing has no
detailed routing at W tracks.  With proof logging enabled, the CDCL
solver's UNSAT answer comes with a DRUP-style clausal proof that an
independent checker (sharing no solver code) verifies — so the
unroutability verdict does not rest on trusting the solver.

Run:  python examples/unroutability_certificate.py
"""

from repro import Strategy, load_routing, minimum_channel_width
from repro.core import get_encoding
from repro.core.symmetry import apply_symmetry
from repro.fpga import build_routing_csp
from repro.sat import check_rup_proof, solve_with_proof

routing = load_routing("C880", scale=0.8)
probe = Strategy("ITE-linear-2+muldirect", "s1")
width = minimum_channel_width(routing, probe)
print(f"{routing.netlist.name}: minimum channel width W = {width}")

# Encode the W-1 configuration (provably unroutable) and solve with the
# proof log enabled.
csp = build_routing_csp(routing, width - 1)
encoded = get_encoding("ITE-log").encode(csp.problem)
apply_symmetry(encoded, "s1")
print(f"encoded W={width - 1} with ITE-log/s1: "
      f"{encoded.cnf.num_vars} vars, {encoded.cnf.num_clauses} clauses")

result, proof = solve_with_proof(encoded.cnf)
assert not result.is_sat
print(f"UNSAT in {result.stats['solve_time']:.3f}s "
      f"({int(result.stats['conflicts'])} conflicts); "
      f"proof has {len(proof)} clauses "
      f"(ends with the empty clause: {proof[-1] == ()})")

# Verify the certificate with the independent RUP checker.
steps = check_rup_proof(encoded.cnf, proof)
print(f"certificate verified: all {steps} proof steps are RUP")
print(f"=> {routing.netlist.name} is provably unroutable at "
      f"W={width - 1}; W={width} is optimal")

# Tamper with the proof to show the checker is not a rubber stamp.
from repro.sat import ProofError

try:
    check_rup_proof(encoded.cnf, [(1, 2)] + proof)
    print("ERROR: tampered proof accepted")
except ProofError as error:
    print(f"tampered proof rejected: {error}")
