"""Use the library as a stand-alone graph-coloring-to-SAT tool.

The paper's tool flow deliberately passes through the DIMACS ``.col``
format so any coloring problem — not just FPGA routing — can ride the
same encodings.  This example writes a .col file, reads it back, finds
the chromatic number by SAT search, and shows the symmetry heuristics'
vertex sequences.

Run:  python examples/graph_coloring_dimacs.py
"""

import os
import tempfile

from repro import ColoringProblem, Strategy, minimum_colors, solve_coloring
from repro.coloring import (parse_col_file, random_graph, write_col_file)
from repro.core.symmetry import b1_sequence, s1_sequence

# A moderately dense random graph (think: register-conflict graph).
graph = random_graph(40, 0.25, seed=7)
print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

# Round-trip through the DIMACS .col format — the paper's intermediate
# artifact between the routing front-end and the SAT back-end.
path = os.path.join(tempfile.mkdtemp(), "example.col")
write_col_file(graph, path, comments=["random G(40, 0.25), seed 7"])
graph = parse_col_file(path)
print(f"wrote and re-parsed {path}")

# Chromatic number by SAT binary search with the best paper strategy.
strategy = Strategy("ITE-linear-2+muldirect", "s1")
problem = ColoringProblem(graph, 1)
chi = minimum_colors(problem, strategy)
print(f"chromatic number: {chi}")

# A certified coloring at chi, and a certified refutation at chi - 1.
sat = solve_coloring(problem.with_colors(chi), strategy)
assert sat.is_sat and problem.with_colors(chi).is_valid_coloring(sat.coloring)
unsat = solve_coloring(problem.with_colors(chi - 1), strategy)
assert not unsat.is_sat
print(f"verified {chi}-coloring found; {chi - 1} colors proven impossible "
      f"({int(unsat.solver_stats['conflicts'])} conflicts)")

# The two symmetry-breaking vertex sequences (§5).
print(f"b1 sequence (max-degree vertex + its neighbours): "
      f"{b1_sequence(graph, chi)}")
print(f"s1 sequence (globally highest degrees):           "
      f"{s1_sequence(graph, chi)}")
