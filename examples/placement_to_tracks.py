"""The full CAD flow: logical netlist → placement → global routing →
SAT detailed routing, with ASCII congestion rendering along the way.

Shows the whole substrate the SAT stage sits on, and why placement
quality matters: a bad placement inflates the minimum channel width.

Run:  python examples/placement_to_tracks.py
"""

import random

from repro import Strategy, minimum_channel_width
from repro.fpga import (AnnealingPlacer, Placement, detailed_route,
                        random_logical_netlist, render_congestion,
                        route_netlist)

COLS, ROWS = 6, 6
strategy = Strategy("ITE-linear-2+muldirect", "s1")

# A random logical circuit: 30 blocks, 70 nets, no positions yet.
logical = random_logical_netlist(num_blocks=30, num_nets=70, seed=11)
print(f"logical netlist: {logical.num_blocks} blocks, "
      f"{len(logical.nets)} nets")

# Annealed placement vs a random one.
annealed = AnnealingPlacer(COLS, ROWS, seed=3).place(logical)
cells = [(x, y) for x in range(COLS) for y in range(ROWS)]
random.Random(5).shuffle(cells)
scattered = Placement(COLS, ROWS,
                      {b: cells[b] for b in range(logical.num_blocks)})
print(f"wirelength: annealed {annealed.wirelength(logical)}, "
      f"random {scattered.wirelength(logical)}")

for label, placement in (("annealed", annealed), ("random", scattered)):
    netlist = placement.to_netlist(logical)
    netlist.name = f"{label}-placement"
    routing = route_netlist(netlist, congestion_penalty=1.0)
    width = minimum_channel_width(routing, strategy)
    print(f"\n[{label}] minimum channel width: W = {width}")
    print(render_congestion(routing))
    result = detailed_route(routing, width, strategy)
    assert result.routable
    tracks_used = len(set(result.assignment.tracks.values()))
    print(f"[{label}] detailed-routed with {tracks_used} tracks "
          f"in {result.total_time:.3f}s")
