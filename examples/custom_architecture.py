"""Route a hand-built netlist on a custom FPGA array, end to end.

Shows the full substrate below the SAT layer: defining nets, running the
congestion-aware global router, inspecting channel-segment usage,
extracting the conflict graph in DIMACS form, and sweeping the channel
width from unroutable to routable.

Run:  python examples/custom_architecture.py
"""

from repro import Net, Netlist, Strategy, detailed_route
from repro.fpga import build_routing_csp, route_netlist, validate_global_routing

# A 6x4 array with a deliberately congested middle corridor: five nets all
# funnel left-to-right, plus local traffic.
netlist = Netlist("corridor", 6, 4, [
    Net("bus0", (0, 1), ((5, 1),)),
    Net("bus1", (0, 1), ((5, 2),)),
    Net("bus2", (0, 2), ((5, 1),)),
    Net("bus3", (0, 2), ((5, 2),)),
    Net("fan", (2, 0), ((3, 3), (4, 0), (2, 3))),
    Net("local0", (1, 1), ((1, 2),)),
    Net("local1", (4, 2), ((4, 1),)),
])

routing = route_netlist(netlist, congestion_penalty=1.0)
assert validate_global_routing(routing) == []
print(f"{netlist.name}: {netlist.num_nets} nets -> "
      f"{routing.num_two_pin_nets} two-pin nets after decomposition")

usage = routing.segment_usage()
hottest = sorted(usage.items(), key=lambda item: -item[1])[:5]
print("hottest channel segments (distinct nets crossing):")
for segment, nets in hottest:
    print(f"  {segment}: {nets}")

csp = build_routing_csp(routing, routing.max_segment_usage())
print(f"\nconflict graph: {csp.problem.num_vertices} vertices, "
      f"{csp.problem.graph.num_edges} edges")
print("DIMACS .col form (first lines):")
for line in csp.to_dimacs_col().splitlines()[:6]:
    print(f"  {line}")

strategy = Strategy("ITE-log", "s1")
print("\nchannel-width sweep:")
for width in range(1, 7):
    result = detailed_route(routing, width, strategy)
    status = "ROUTABLE" if result.routable else "unroutable (proven)"
    print(f"  W={width}: {status}  [{result.total_time:.3f}s]")
    if result.routable:
        per_track = {}
        for vertex, track in result.assignment.tracks.items():
            per_track.setdefault(track, []).append(
                routing.two_pin_nets[vertex].name)
        for track in sorted(per_track):
            print(f"      track {track}: {', '.join(sorted(per_track[track]))}")
        break
