"""Quickstart: SAT-based FPGA detailed routing in ~30 lines.

Loads an MCNC-like benchmark, finds its minimum channel width by SAT
binary search, extracts a verified track assignment at that width, and
proves that one track fewer is unroutable — the capability that sets
SAT-based detailed routing apart (paper §1).

Run:  python examples/quickstart.py
"""

from repro import Strategy, detailed_route, load_routing, minimum_channel_width

# The paper's best single strategy: ITE-linear-2+muldirect encoding with
# the s1 symmetry-breaking heuristic (§6).
strategy = Strategy("ITE-linear-2+muldirect", "s1")

# A scaled-down synthetic stand-in for the MCNC 'alu2' circuit, globally
# routed with the built-in congestion-aware router.
routing = load_routing("alu2", scale=0.8)
print(f"circuit: {routing.netlist.name}  "
      f"({routing.netlist.cols}x{routing.netlist.rows} array, "
      f"{routing.netlist.num_nets} nets, "
      f"{routing.num_two_pin_nets} two-pin nets)")

# Minimum channel width via SAT binary search.
width = minimum_channel_width(routing, strategy)
print(f"minimum channel width: W = {width}")

# A detailed routing at W: SAT, with a decoded and verified assignment.
result = detailed_route(routing, width, strategy)
assert result.routable
tracks_used = sorted(set(result.assignment.tracks.values()))
print(f"routable at W={width}: {len(result.assignment.tracks)} two-pin "
      f"nets assigned to tracks {tracks_used}")
print(f"  time: {result.total_time:.3f}s "
      f"(graph {result.outcome.graph_time:.3f}s + "
      f"encode {result.outcome.encode_time:.3f}s + "
      f"solve {result.outcome.solve_time:.3f}s)")

# One track fewer: UNSAT — a *proof* of unroutability, so W is optimal.
proof = detailed_route(routing, width - 1, strategy)
assert not proof.routable
print(f"W={width - 1} proven unroutable in {proof.total_time:.3f}s "
      f"({int(proof.outcome.solver_stats['conflicts'])} conflicts) "
      f"=> W={width} is optimal")
