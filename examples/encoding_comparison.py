"""Compare all 15 CSP-to-SAT encodings on one unroutable configuration.

A miniature of the paper's Table 2: every encoding (with and without the
s1 symmetry-breaking heuristic) proves the same instance unroutable; the
table shows how wildly the CNF sizes and solve times differ while the
answer, necessarily, does not.

Run:  python examples/encoding_comparison.py
"""

from repro import ALL_ENCODINGS, Strategy, load_routing, minimum_channel_width
from repro.bench import render_simple_table
from repro.core import solve_coloring
from repro.fpga import build_routing_csp

probe = Strategy("ITE-linear-2+muldirect", "s1")
routing = load_routing("alu2", scale=0.8)
width = minimum_channel_width(routing, probe)
csp = build_routing_csp(routing, width - 1)
print(f"{routing.netlist.name}: W_min = {width}; proving W = {width - 1} "
      f"unroutable under every encoding\n")

rows = []
for encoding in ALL_ENCODINGS:
    for symmetry in ("none", "s1"):
        outcome = solve_coloring(csp.problem, Strategy(encoding, symmetry))
        assert not outcome.is_sat, "encodings must agree on UNSAT"
        rows.append([
            encoding, symmetry,
            str(outcome.num_vars), str(outcome.num_clauses),
            str(int(outcome.solver_stats["conflicts"])),
            f"{outcome.solve_time:.3f}",
        ])

print(render_simple_table(
    f"All encodings on {routing.netlist.name} @ W={width - 1} (UNSAT)",
    ["encoding", "symmetry", "vars", "clauses", "conflicts", "solve [s]"],
    rows))

fastest = min(rows, key=lambda r: float(r[5]))
slowest = max(rows, key=lambda r: float(r[5]))
print(f"\nfastest: {fastest[0]}/{fastest[1]} at {fastest[5]}s; "
      f"slowest: {slowest[0]}/{slowest[1]} at {slowest[5]}s "
      f"({float(slowest[5]) / max(float(fastest[5]), 1e-9):.1f}x apart)")
