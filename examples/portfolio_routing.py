"""Run the paper's 3-strategy portfolio on an unroutability proof.

Each strategy — (encoding, symmetry heuristic) — runs in its own process;
the first answer wins and the others are terminated (paper §6).  The
script also shows the analytical "virtual portfolio" time (the minimum of
the members' sequential times) for comparison.

Run:  python examples/portfolio_routing.py
"""

import time

from repro import (PORTFOLIO_3, SolveStatus, Strategy, load_routing,
                   minimum_channel_width)
from repro.core import run_portfolio, solve_coloring
from repro.fpga import build_routing_csp

probe = Strategy("ITE-linear-2+muldirect", "s1")
routing = load_routing("C880", scale=0.9)
width = minimum_channel_width(routing, probe)
csp = build_routing_csp(routing, width - 1)
print(f"{routing.netlist.name}: proving W = {width - 1} unroutable "
      f"({csp.problem.num_vertices} two-pin nets, "
      f"{csp.problem.graph.num_edges} conflicts)\n")

print("portfolio members:")
for strategy in PORTFOLIO_3:
    print(f"  - {strategy.label}")

# Sequential times of each member (what a single core would pay).
member_times = {}
for strategy in PORTFOLIO_3:
    start = time.perf_counter()
    outcome = solve_coloring(csp.problem, strategy)
    member_times[strategy.label] = time.perf_counter() - start
    assert not outcome.is_sat

print("\nsequential member times:")
for label, seconds in member_times.items():
    print(f"  {label}: {seconds:.3f}s")
print(f"virtual portfolio (min of members): "
      f"{min(member_times.values()):.3f}s")

# Real first-to-finish parallel execution.  The race returns a status
# rather than raising: a deadline where *every* member times out comes
# back as SolveStatus.TIMEOUT with per-member verdicts.
result = run_portfolio(csp.problem, list(PORTFOLIO_3), timeout=300)
assert result.status is SolveStatus.UNSAT, result.report.detail
print(f"\nparallel run: {result.winner.label} answered first "
      f"({result.status}) in {result.wall_time:.3f}s wall time "
      f"({result.num_strategies} processes)")

# Losers are stopped cooperatively via a shared CancelToken, so members
# recorded before the winner carry their own statuses too.
for label, status in sorted(result.member_status.items()):
    print(f"  {label}: {status}")
