"""repro.api — the canonical request/response contract.

Before 1.6 the package had four overlapping solving entrypoints —
:func:`repro.core.pipeline.solve_coloring`,
:class:`repro.core.incremental.IncrementalColoringSolver.query`,
:func:`repro.core.portfolio.run_portfolio` and
:func:`repro.bench.batch.run_batch` — each with its own argument spelling
for the same five things: an instance, a color budget K, a strategy (or
several), resource limits, and observability options.  That was workable
in-process; it breaks at a network boundary, where exactly one
request shape must cross the wire.  This module defines that shape:

* :class:`SolveRequest` — frozen, canonical, hashable description of one
  solve: the instance (a :class:`~repro.coloring.problem.Graph`), K, one
  or more :class:`~repro.core.strategy.Strategy` members, optional
  :class:`~repro.sat.status.SolveLimits`, and the trace/audit opts.
  ``request.cache_key()`` is the SHA-256 of the canonical instance bytes
  plus (K, strategies, limits) — the content address the serve cache
  stores results under (equal instances hash equally regardless of edge
  insertion order, because :func:`repro.coloring.dimacs.canonical_bytes`
  sorts).
* :class:`SolveResponse` — the uniform answer: status, a
  :class:`~repro.sat.status.SolveReport`, the decoded coloring when SAT,
  the winning strategy label, the audit verdict, and cache provenance.
* :func:`solve` / :func:`solve_batch` — the single front door.  One
  strategy dispatches to the pipeline, several race as a portfolio, and
  a sequence of requests fans out over the batch runner.  The network
  server (:mod:`repro.serve`) speaks exactly these shapes via
  ``to_wire``/``from_wire``.

The pre-1.6 entrypoints remain importable (they are the engines this
module routes through); the *boolean* compatibility shims from the 1.1
status migration (``satisfiable`` properties, ``SolveResult(bool)``,
``SolveStatus.from_bool``) are deprecated — ``docs/api.md`` has the
migration table.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .coloring.dimacs import canonical_bytes, parse_col_string
from .coloring.problem import ColoringProblem, Graph
from .core.strategy import BEST_SINGLE_STRATEGY, Strategy
from .sat.status import SolveLimits, SolveReport, SolveStatus

#: Wire format identifier (bumped on incompatible changes).
WIRE_FORMAT = "repro-solve/1"


def strategy_to_wire(strategy: Strategy) -> Dict[str, object]:
    """A strategy as a JSON-ready dict (the label alone is ambiguous —
    defaults are elided from labels)."""
    return {"encoding": strategy.encoding, "symmetry": strategy.symmetry,
            "solver": strategy.solver, "seed": strategy.seed,
            "engine": strategy.engine}


def strategy_from_wire(wire: Dict[str, object]) -> Strategy:
    """Rebuild a strategy from its wire dict (validates eagerly)."""
    return Strategy(encoding=str(wire["encoding"]),
                    symmetry=str(wire.get("symmetry", "none")),
                    solver=str(wire.get("solver", "siege_like")),
                    seed=int(wire.get("seed", 0)),
                    engine=str(wire.get("engine", "arena")))


def limits_to_wire(limits: Optional[SolveLimits]) -> Optional[Dict[str, object]]:
    if limits is None:
        return None
    return {"conflict_budget": limits.conflict_budget,
            "propagation_budget": limits.propagation_budget,
            "wall_clock_limit": limits.wall_clock_limit}


def limits_from_wire(wire: Optional[Dict[str, object]]) -> Optional[SolveLimits]:
    if wire is None:
        return None
    return SolveLimits(
        conflict_budget=wire.get("conflict_budget"),
        propagation_budget=wire.get("propagation_budget"),
        wall_clock_limit=wire.get("wall_clock_limit"))


def _limits_token(limits: Optional[SolveLimits]) -> str:
    """Canonical text form of a budget, for cache-key hashing.

    ``None`` and the all-None :class:`SolveLimits` both mean "unlimited"
    and must hash identically; any bound change must miss the cache.
    """
    if limits is None or limits.unlimited:
        return "unlimited"
    return (f"c={limits.conflict_budget};p={limits.propagation_budget};"
            f"w={limits.wall_clock_limit}")


@dataclass(frozen=True)
class SolveRequest:
    """One canonical solve: instance, K, strategy set, limits, opts.

    Frozen so a request can key dicts and travel between threads
    unchanged.  ``strategies`` with one member dispatches to the
    pipeline; more race as a portfolio (first decided answer wins).

    ``audit``, ``keep_model`` and ``proof_log`` are execution options —
    they do **not** enter the cache key (the cached artifact always
    stores the decoded coloring and the audit verdict, so a cached
    answer serves any combination).  ``client`` identifies the submitter
    for admission control and per-client budgets; ``tag`` is a free-form
    correlation id echoed back on the response.  Neither enters the
    cache key.
    """

    graph: Graph
    colors: int
    strategies: Tuple[Strategy, ...] = (BEST_SINGLE_STRATEGY,)
    limits: Optional[SolveLimits] = None
    #: Independently re-verify a decided answer before returning it
    #: (:mod:`repro.reliability.audit`); an answer that fails degrades
    #: to ERROR.  The serve layer forces this on every cache fill.
    audit: bool = False
    keep_model: bool = False
    proof_log: bool = False
    client: str = ""
    tag: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.graph, Graph):
            raise TypeError("SolveRequest.graph must be a Graph")
        if self.colors < 1:
            raise ValueError("colors must be at least 1")
        if not self.strategies:
            raise ValueError("a request needs at least one strategy")
        if not isinstance(self.strategies, tuple):
            # Lists are a common call-site slip; normalise instead of
            # failing (object.__setattr__ because the dataclass is
            # frozen).
            object.__setattr__(self, "strategies", tuple(self.strategies))

    @classmethod
    def single(cls, problem: ColoringProblem,
               strategy: Strategy = BEST_SINGLE_STRATEGY,
               **kwargs) -> "SolveRequest":
        """A one-strategy request from an existing coloring problem."""
        return cls(graph=problem.graph, colors=problem.num_colors,
                   strategies=(strategy,), **kwargs)

    def problem(self) -> ColoringProblem:
        """This request's instance as a :class:`ColoringProblem`."""
        return ColoringProblem(self.graph, self.colors)

    # -- content addressing --------------------------------------------

    def canonical_bytes(self) -> bytes:
        """Byte-stable serialization of the instance (sorted-edge
        DIMACS ``.col`` — the cache key's first ingredient)."""
        return canonical_bytes(self.graph)

    def cache_key(self) -> str:
        """SHA-256 hex over (canonical instance bytes, K, strategies,
        limits) — the content address of this request's *answer*.

        Execution opts (``audit``/``keep_model``/``proof_log``) and
        submitter identity (``client``/``tag``) are deliberately
        excluded: they change what the caller sees, not what the answer
        *is*.
        """
        hasher = hashlib.sha256(self.canonical_bytes())
        hasher.update(b"\x00K=%d" % self.colors)
        for strategy in self.strategies:
            hasher.update(b"\x00")
            hasher.update(strategy.label.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(_limits_token(self.limits).encode("utf-8"))
        return hasher.hexdigest()

    def base_key(self) -> str:
        """SHA-256 hex over (canonical instance bytes, K, limits) —
        the *strategy-free* content address.

        Two requests share a base key iff they ask the same question of
        the same instance under the same budget, no matter which
        strategies they race.  The serve cache indexes fills by base
        key so a request whose strategy set is a **superset** of a
        cached decided answer's can be served that answer: SAT/UNSAT is
        a property of the instance, and the larger portfolio would have
        accepted the same first decided result.
        """
        hasher = hashlib.sha256(self.canonical_bytes())
        hasher.update(b"\x00K=%d" % self.colors)
        hasher.update(b"\x00")
        hasher.update(_limits_token(self.limits).encode("utf-8"))
        return hasher.hexdigest()

    # -- wire ----------------------------------------------------------

    def to_wire(self) -> Dict[str, object]:
        """JSON-ready dict (the network request body)."""
        return {
            "format": WIRE_FORMAT,
            "col": self.canonical_bytes().decode("ascii"),
            "colors": self.colors,
            "strategies": [strategy_to_wire(s) for s in self.strategies],
            "limits": limits_to_wire(self.limits),
            "audit": self.audit,
            "keep_model": self.keep_model,
            "proof_log": self.proof_log,
            "client": self.client,
            "tag": self.tag,
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, object]) -> "SolveRequest":
        """Rebuild a request from its wire dict (validates the graph,
        the strategies and the limits eagerly)."""
        if wire.get("format") != WIRE_FORMAT:
            raise ValueError(f"unsupported request format "
                             f"{wire.get('format')!r}")
        graph = parse_col_string(str(wire["col"]))
        return cls(
            graph=graph,
            colors=int(wire["colors"]),
            strategies=tuple(strategy_from_wire(s)
                             for s in wire.get("strategies") or ()),
            limits=limits_from_wire(wire.get("limits")),
            audit=bool(wire.get("audit", False)),
            keep_model=bool(wire.get("keep_model", False)),
            proof_log=bool(wire.get("proof_log", False)),
            client=str(wire.get("client", "")),
            tag=str(wire.get("tag", "")),
        )


@dataclass
class SolveResponse:
    """The uniform answer every routed entrypoint returns.

    ``report`` is the shared :class:`SolveReport`; ``coloring`` is the
    decoded witness (SAT answers only); ``winner`` names the strategy
    that produced the answer (portfolio races and batch aggregation);
    ``audit`` is the audit verdict ("PASS"/"FAIL"/"SKIPPED", or ""
    when no audit ran); ``cached`` marks answers served from the
    content-addressed cache, with ``digest`` the cache key either way.
    """

    status: SolveStatus
    report: SolveReport
    coloring: Optional[Dict[int, int]] = None
    winner: str = ""
    digest: str = ""
    audit: str = ""
    cached: bool = False
    tag: str = ""
    #: The pipeline's Table-2 time split, when the executor recorded it.
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def decided(self) -> bool:
        return self.status.decided

    @property
    def exit_code(self) -> int:
        """DIMACS convention: 10 SAT / 20 UNSAT / 0 undecided / 2 error."""
        return self.status.exit_code

    def to_wire(self) -> Dict[str, object]:
        return {
            "format": WIRE_FORMAT,
            "status": self.status.value,
            "report": self.report.to_dict(),
            "stats": self.report.stats,
            "coloring": self.coloring,
            "winner": self.winner,
            "digest": self.digest,
            "audit": self.audit,
            "cached": self.cached,
            "tag": self.tag,
            "timings": self.timings,
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, object]) -> "SolveResponse":
        status = SolveStatus(wire["status"])
        report_wire = dict(wire.get("report") or {})
        report = SolveReport(
            status=status,
            wall_time=float(report_wire.get("wall_time", 0.0)),
            conflicts=int(report_wire.get("conflicts", 0)),
            decisions=int(report_wire.get("decisions", 0)),
            propagations=int(report_wire.get("propagations", 0)),
            restarts=int(report_wire.get("restarts", 0)),
            solver=str(report_wire.get("solver", "")),
            detail=str(report_wire.get("detail", "")),
            stats=dict(wire.get("stats") or {}),
        )
        coloring = wire.get("coloring")
        if coloring is not None:
            # JSON object keys are strings; vertex ids are ints.
            coloring = {int(vertex): int(color)
                        for vertex, color in coloring.items()}
        return cls(status=status, report=report, coloring=coloring,
                   winner=str(wire.get("winner", "")),
                   digest=str(wire.get("digest", "")),
                   audit=str(wire.get("audit", "")),
                   cached=bool(wire.get("cached", False)),
                   tag=str(wire.get("tag", "")),
                   timings=dict(wire.get("timings") or {}))


def _audit_verdict(report) -> str:
    return str(report.verdict) if report is not None else ""


def _response_from_outcome(request: SolveRequest, outcome,
                           audit_report=None) -> SolveResponse:
    """Shared packing of a pipeline :class:`ColoringOutcome`."""
    status = outcome.status
    detail = str(outcome.solver_stats.get("stop_reason", ""))
    if audit_report is not None and audit_report.failed:
        status = SolveStatus.ERROR
        detail = "audit failed: " + "; ".join(
            f"{check.name} ({check.detail})"
            for check in audit_report.failures)
    report = SolveReport.from_stats(status, outcome.solver_stats,
                                    detail=detail)
    report.wall_time = outcome.total_time
    return SolveResponse(
        status=status, report=report,
        coloring=outcome.coloring if status is SolveStatus.SAT else None,
        winner=outcome.strategy.label,
        digest=request.cache_key(),
        audit=_audit_verdict(audit_report),
        tag=request.tag,
        timings={"graph_time": outcome.graph_time,
                 "encode_time": outcome.encode_time,
                 "cnf_time": outcome.cnf_time,
                 "symmetry_time": outcome.symmetry_time,
                 "solve_time": outcome.solve_time})


def solve(request: SolveRequest, *, faults=None) -> SolveResponse:
    """The single front door: dispatch one request to the right engine.

    One strategy → :func:`repro.core.pipeline.solve_coloring`; several →
    :func:`repro.core.portfolio.run_portfolio` (first decided answer
    wins).  With ``request.audit`` the decided answer is independently
    re-verified before being returned; a failing audit degrades the
    response to ERROR — it never surfaces a wrong answer.  Never raises
    on solver trouble: every failure mode is a status.
    """
    from .core.pipeline import solve_coloring
    problem = request.problem()
    if len(request.strategies) == 1:
        strategy = request.strategies[0]
        outcome = solve_coloring(
            problem, strategy, limits=request.limits, faults=faults,
            keep_model=request.keep_model or request.audit,
            proof_log=request.proof_log or request.audit)
        audit_report = None
        if request.audit and outcome.status.decided:
            from .reliability.audit import audit_outcome
            audit_report = audit_outcome(problem, outcome)
        return _response_from_outcome(request, outcome, audit_report)

    from .core.portfolio import run_portfolio
    result = run_portfolio(problem, list(request.strategies),
                           limits=request.limits, audit=request.audit,
                           faults=faults)
    if result.outcome is not None:
        winner_label = result.winner.label
        audit_report = result.audits.get(winner_label)
        response = _response_from_outcome(request, result.outcome,
                                          audit_report)
        response.winner = winner_label
        response.report.wall_time = result.wall_time
        return response
    report = result.report
    return SolveResponse(status=result.status, report=report,
                         digest=request.cache_key(), tag=request.tag)


def solve_batch(requests: Sequence[SolveRequest],
                max_workers: Optional[int] = None,
                job_timeout: Optional[float] = None,
                limits: Optional[SolveLimits] = None,
                audit: bool = False,
                num_shards: int = 1,
                **batch_kwargs) -> List[SolveResponse]:
    """Fan a request sequence over the distributed shard scheduler.

    Each request expands to one batch job per member strategy; a
    request's response aggregates its jobs the way a portfolio would
    (first decided answer in strategy order wins).  Per-request
    ``limits`` are merged with the pool-level ``limits`` per job — the
    scheduler's ``job_timeout``/retry/quarantine machinery applies
    unchanged.  Always returns one response per request, in order.

    ``num_shards=1`` (the default) is the flat pool of the historical
    :func:`repro.bench.batch.run_batch`; larger values split the jobs
    over that many locality-aware work-stealing queues
    (:func:`repro.dist.scheduler.run_sharded`), which pays off when the
    corpus is large and instances repeat.
    """
    from .bench.batch import BatchJob
    from .dist.scheduler import run_sharded
    jobs: List[BatchJob] = []
    names: List[str] = []
    pooled = limits if limits is not None else SolveLimits()
    per_request_limits: List[Optional[SolveLimits]] = []
    for index, request in enumerate(requests):
        digest = request.cache_key()
        name = f"req{index}:{digest[:12]}"
        names.append(name)
        merged = pooled.merge(request.limits)
        per_request_limits.append(merged)
        problem = request.problem()
        for strategy in request.strategies:
            jobs.append(BatchJob(instance=name, problem=problem,
                                 strategy=strategy))
    uniform = {_limits_token(l) for l in per_request_limits}
    if len(uniform) > 1:
        raise ValueError(
            "solve_batch requires a uniform budget across requests "
            "(the batch runner applies one SolveLimits per pool); "
            "submit heterogeneous budgets through repro.serve instead")
    effective = per_request_limits[0] if per_request_limits else None
    if effective is not None and effective.unlimited:
        effective = None
    result = run_sharded(jobs, num_shards=num_shards,
                         max_workers=max_workers, job_timeout=job_timeout,
                         limits=effective, audit=audit, **batch_kwargs)

    responses: List[SolveResponse] = []
    for index, request in enumerate(requests):
        name = names[index]
        picked = None
        fallback = None
        for strategy in request.strategies:
            job_result = result.by_key.get((name, strategy.label))
            if job_result is None:
                continue
            if fallback is None:
                fallback = job_result
            if job_result.status.decided:
                picked = job_result
                break
        job_result = picked or fallback
        if job_result is None:  # batch cancelled before this request ran
            report = SolveReport(status=SolveStatus.TIMEOUT,
                                 detail="batch cancelled before launch")
            responses.append(SolveResponse(
                status=SolveStatus.TIMEOUT, report=report,
                digest=request.cache_key(), tag=request.tag))
            continue
        if job_result.outcome is not None:
            response = _response_from_outcome(request, job_result.outcome,
                                              job_result.audit)
        else:
            detail = job_result.error or str(job_result.status)
            report = SolveReport(status=job_result.status, detail=detail,
                                 wall_time=job_result.wall_time)
            response = SolveResponse(status=job_result.status,
                                     report=report,
                                     digest=request.cache_key(),
                                     tag=request.tag)
        responses.append(response)
    return responses


__all__ = [
    "WIRE_FORMAT", "SolveRequest", "SolveResponse", "solve", "solve_batch",
    "strategy_to_wire", "strategy_from_wire",
    "limits_to_wire", "limits_from_wire",
]
