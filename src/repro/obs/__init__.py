"""repro.obs — observability for the solve stack.

Three cooperating pieces (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — structured tracing: :class:`TraceSpan` trees
  with wall/CPU time, attributes, point-in-time events and a stable run
  id, buffered in-process and written as JSON Lines.  Worker processes
  ship their spans back over the existing result queues; the scheduler
  grafts them under its own span so one file describes the whole run.
* :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges and histograms that absorbs the solver stat counters
  (``watch_inspections``, ``blocker_hits``, ``props_per_sec``, …) and
  the orchestration layers' operational counters, with snapshot/merge
  cross-process aggregation.
* :mod:`repro.obs.report` — text rendering of trace files (span tree +
  critical path) and metrics snapshots, behind the ``repro trace`` and
  ``repro metrics`` CLI commands.

Everything is **disabled by default** and the enabled/disabled check is
a single attribute read: with observability off, solver trajectories
are bit-identical and BCP throughput is unchanged (the solver engines
only report at ``_finish``, never from the hot loop).  Enable with the
``--trace PATH`` CLI flag, :func:`repro.obs.trace.enable`, or the
``REPRO_TRACE`` / ``REPRO_METRICS`` environment variables (which worker
processes inherit).
"""

from __future__ import annotations

from . import metrics, trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import (metrics_snapshots, parse_trace_file, render_metrics,
                     render_trace)
from .trace import TraceSpan, Tracer

__all__ = [
    "trace", "metrics",
    "TraceSpan", "Tracer",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "parse_trace_file", "render_trace", "render_metrics",
    "metrics_snapshots",
    "worker_begin", "drain_telemetry", "ingest_telemetry", "reset",
]


def worker_begin() -> None:
    """Top of a worker process: clean tracing state (fork inherits the
    parent's buffers), environment re-check for spawn workers."""
    trace.worker_begin()


def drain_telemetry():
    """Everything a worker ships back over its result queue: its
    finished spans and (when metrics are on) its registry snapshot.
    Returns None when there is nothing to ship, so the queue payload
    stays untouched on the disabled path."""
    spans = trace.tracer().drain_spans() if trace.tracer().enabled else []
    snap = (metrics.registry().snapshot()
            if metrics.enabled() and not metrics.registry().empty else None)
    if not spans and snap is None:
        return None
    return {"spans": spans, "metrics": snap}


def ingest_telemetry(telemetry, parent_span_id=None) -> None:
    """Scheduler side of :func:`drain_telemetry`: graft the worker's
    spans under ``parent_span_id`` and fold its metrics in."""
    if not telemetry:
        return
    trace.tracer().ingest_spans(telemetry.get("spans") or [],
                                parent_span_id)
    if telemetry.get("metrics") and metrics.enabled():
        metrics.registry().merge(telemetry["metrics"])


def reset() -> None:
    """Disable and clear all observability state (test isolation)."""
    trace.tracer().reset()
    metrics.reset()
