"""Process-local metrics registry: counters, gauges, histograms.

One registry per process (:func:`registry`) absorbs every layer's
operational counters behind a single API — the solver stat counters
(``conflicts``, ``propagations``, ``watch_inspections``,
``blocker_hits``, …), pipeline phase timings, portfolio race outcomes,
batch retries, audit verdicts and quarantine transitions — so one
snapshot describes a whole run.

* :class:`Counter` — monotonically increasing total (``inc``).
* :class:`Gauge` — last-written value (``set``).
* :class:`Histogram` — streaming summary of observations: count, sum,
  min, max (mean derived).  No buckets — the consumers here want
  per-run aggregates, not quantile estimation.

**Cross-process aggregation.**  Worker processes (portfolio members,
batch jobs) record into their own registry, ship
``registry().snapshot()`` back over the existing result queues, and the
scheduler folds it in with :meth:`MetricsRegistry.merge` — counters
add, histograms combine their summaries, gauges take the incoming
value.  No shared memory, no extra channels.

**Enablement.**  Metrics are off by default; when disabled every
recording call is one boolean check (and the solver hooks only fire at
``_finish``, never in the BCP loop), so solver trajectories and
throughput are untouched.  Enable with :func:`enable` or
``REPRO_METRICS=1`` in the environment (worker processes inherit it).
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, Optional

#: Environment variable: any non-empty value enables the registry
#: (exported by the CLI so worker processes inherit the setting).
ENV_VAR = "REPRO_METRICS"

#: Solver stat keys absorbed as counters by :func:`absorb_solver_stats`.
SOLVER_COUNTER_KEYS = (
    "conflicts", "decisions", "propagations", "restarts",
    "learned_clauses", "deleted_clauses", "minimized_literals",
    "watch_inspections", "blocker_hits", "arena_compactions",
    # Inprocessing counters (repro.sat.inprocess); absent from the
    # stats dict — and therefore skipped — unless inprocessing ran.
    "inprocess_passes", "subsumed_clauses", "strengthened_clauses",
    "vivified_clauses", "eliminated_vars", "bve_resolvents",
)

#: Solver stat keys absorbed as histogram observations (per solve call).
SOLVER_HISTOGRAM_KEYS = ("solve_time", "props_per_sec")


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; ``set`` overwrites."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observations (count/sum/min/max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def combine(self, count: int, total: float,
                low: Optional[float], high: Optional[float]) -> None:
        """Fold another histogram's summary into this one (merge path)."""
        self.count += count
        self.total += total
        if low is not None and (self.min is None or low < self.min):
            self.min = low
        if high is not None and (self.max is None or high > self.max):
            self.max = high


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Thread-safe at the granularity of single operations (one lock); the
    expected concurrency is light — worker *processes* each own their
    registry and merge through snapshots.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- aggregation ---------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready view of every instrument (the merge currency)."""
        with self._lock:
            return {
                "counters": {name: counter.value
                             for name, counter in
                             sorted(self._counters.items())},
                "gauges": {name: gauge.value
                           for name, gauge in sorted(self._gauges.items())},
                "histograms": {
                    name: {"count": h.count, "sum": round(h.total, 9),
                           "min": h.min, "max": h.max,
                           "mean": round(h.mean, 9)}
                    for name, h in sorted(self._histograms.items())},
            }

    def merge(self, snapshot: Optional[Dict]) -> None:
        """Fold a :meth:`snapshot` (typically from a worker process) in:
        counters add, histogram summaries combine, gauges overwrite."""
        if not snapshot:
            return
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(value)
        for name, summary in (snapshot.get("histograms") or {}).items():
            self.histogram(name).combine(
                int(summary.get("count", 0)),
                float(summary.get("sum", 0.0)),
                summary.get("min"), summary.get("max"))

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    @property
    def empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)


_REGISTRY = MetricsRegistry()
_ENABLED = False
_ENV_CHECKED = False


def registry() -> MetricsRegistry:
    """The process-local registry."""
    return _REGISTRY


def enable(on: bool = True) -> None:
    """Turn metric recording on (or off)."""
    global _ENABLED, _ENV_CHECKED
    _ENABLED = on
    _ENV_CHECKED = True


def enabled() -> bool:
    """Is the registry recording?  (Checks ``REPRO_METRICS`` once.)"""
    global _ENABLED, _ENV_CHECKED
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        if os.environ.get(ENV_VAR):
            _ENABLED = True
    return _ENABLED


def reset() -> None:
    """Disable and clear (test isolation)."""
    global _ENABLED, _ENV_CHECKED
    _ENABLED = False
    _ENV_CHECKED = False
    _REGISTRY.reset()


def absorb_solver_stats(stats: Dict[str, float], *, engine: str = "",
                        prev: Optional[Dict[str, float]] = None,
                        ) -> Dict[str, float]:
    """Fold one solver's ``stats`` dict into the registry.

    Solver stats are *cumulative across calls* on a reused solver
    (incremental solving), so the caller passes back the marker this
    function returns — only the delta since ``prev`` is counted, and
    every ``solve()`` call lands exactly once.
    """
    prefix = "solver."
    marker: Dict[str, float] = {}
    reg = _REGISTRY
    for key in SOLVER_COUNTER_KEYS:
        value = stats.get(key)
        if value is None:
            continue
        marker[key] = value
        delta = value - (prev.get(key, 0.0) if prev else 0.0)
        if delta:
            reg.inc(prefix + key, delta)
    for key in SOLVER_HISTOGRAM_KEYS:
        value = stats.get(key)
        if value is not None:
            reg.observe(prefix + key, value)
    reg.inc("solver.solves")
    if engine:
        reg.inc(f"solver.solves.{engine}")
    return marker


def snapshot_record(run_id: str) -> Dict[str, object]:
    """The registry snapshot as a trace-sink JSONL record."""
    return {"type": "metrics", "run": run_id,
            "metrics": _REGISTRY.snapshot()}


def names(snapshot: Dict) -> Iterable[str]:
    """Every instrument name in a snapshot (render helper)."""
    for section in ("counters", "gauges", "histograms"):
        yield from (snapshot.get(section) or {})
