"""Rendering of trace files and metrics snapshots as text reports.

The JSONL sink (:mod:`repro.obs.trace`) writes one record per line:
``span`` records (with nested events), orphan ``event`` records, and
``metrics`` records (a registry snapshot).  This module reads such a
file back and renders:

* :func:`render_trace` — the span forest as an indented tree with wall
  and CPU times, key attributes, and per-span events; spans on the
  *critical path* (the chain of largest-wall children from each root)
  are marked with ``*``, which is what makes "where did the time go"
  answerable at a glance.
* :func:`render_metrics` — counters, gauges and histogram summaries as
  aligned tables.

Both are plain functions over parsed records so tests can feed them
synthetic data; the CLI commands ``repro trace`` and ``repro metrics``
are thin wrappers.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple


def parse_trace_file(path: str) -> List[Dict]:
    """Parse a JSONL trace file into records; raises ValueError on a
    malformed line (so smoke tests can assert well-formedness)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: not valid JSON "
                                 f"({error})") from error
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError(f"{path}:{number}: not a trace record")
            records.append(record)
    return records


def _span_forest(records: List[Dict]) -> Tuple[List[Dict],
                                               Dict[str, List[Dict]]]:
    """(roots, children-by-parent-id) for the span records, preserving
    file order.  A span whose parent never appears is treated as a root
    (a worker trace ingested without its scheduler, say)."""
    spans = [r for r in records if r.get("type") == "span"]
    by_id = {span.get("id"): span for span in spans if span.get("id")}
    children: Dict[str, List[Dict]] = {}
    roots: List[Dict] = []
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    return roots, children


def _critical_ids(roots: List[Dict],
                  children: Dict[str, List[Dict]]) -> set:
    """Span ids on each root's critical path: from every root, descend
    into the largest-wall child until a leaf."""
    critical = set()
    for root in roots:
        span = root
        while span is not None:
            if span.get("id"):
                critical.add(span["id"])
            kids = children.get(span.get("id"), [])
            span = max(kids, key=lambda s: s.get("wall", 0.0),
                       default=None)
    return critical


_INTERESTING_ATTRS = ("strategy", "encoding", "symmetry", "engine",
                      "status", "label", "instance", "members", "winner",
                      "shards", "steals", "workers", "cubes", "sharing",
                      "error")


def _attr_summary(span: Dict) -> str:
    attrs = span.get("attrs") or {}
    parts = [f"{key}={attrs[key]}" for key in _INTERESTING_ATTRS
             if key in attrs]
    parts += [f"{key}={value}" for key, value in attrs.items()
              if key not in _INTERESTING_ATTRS]
    return f" [{', '.join(parts)}]" if parts else ""


def render_trace(records: List[Dict], *, show_events: bool = True,
                 max_events: int = 8) -> str:
    """Render parsed trace records as a span-tree report."""
    roots, children = _span_forest(records)
    critical = _critical_ids(roots, children)
    lines: List[str] = []
    runs = sorted({r.get("run") for r in records if r.get("run")})
    num_spans = sum(1 for r in records if r.get("type") == "span")
    total = sum(root.get("wall", 0.0) for root in roots)
    lines.append(f"trace: {num_spans} spans, {len(roots)} root(s), "
                 f"{total:.3f}s root wall time"
                 + (f", run {', '.join(runs)}" if runs else ""))

    def emit(span: Dict, prefix: str, is_last: bool) -> None:
        connector = "`- " if is_last else "|- "
        marker = " *" if span.get("id") in critical else ""
        lines.append(
            f"{prefix}{connector}{span.get('name', '?')}"
            f"  {span.get('wall', 0.0):.3f}s wall"
            f" / {span.get('cpu', 0.0):.3f}s cpu"
            f"{_attr_summary(span)}{marker}")
        child_prefix = prefix + ("   " if is_last else "|  ")
        events = span.get("events") or []
        if show_events and events:
            shown = events[:max_events]
            for ev in shown:
                attrs = ev.get("attrs") or {}
                detail = ", ".join(f"{k}={v}" for k, v in attrs.items())
                lines.append(f"{child_prefix}  @{ev.get('t', 0.0):+.3f}s "
                             f"{ev.get('name', '?')}"
                             + (f" ({detail})" if detail else ""))
            if len(events) > max_events:
                lines.append(f"{child_prefix}  ... "
                             f"{len(events) - max_events} more event(s)")
        kids = children.get(span.get("id"), [])
        for index, kid in enumerate(kids):
            emit(kid, child_prefix, index == len(kids) - 1)

    for index, root in enumerate(roots):
        emit(root, "", index == len(roots) - 1)

    orphans = [r for r in records if r.get("type") == "event"]
    if orphans:
        lines.append(f"events outside any span ({len(orphans)}):")
        for record in orphans:
            attrs = record.get("attrs") or {}
            detail = ", ".join(f"{k}={v}" for k, v in attrs.items())
            lines.append(f"  - {record.get('name', '?')}"
                         + (f" ({detail})" if detail else ""))

    metrics = [r for r in records if r.get("type") == "metrics"]
    if metrics:
        lines.append(f"metrics snapshots: {len(metrics)} "
                     f"(render with `repro metrics <file>`)")
    if critical:
        lines.append("(* = critical path: largest-wall child chain "
                     "from each root)")
    return "\n".join(lines)


def render_metrics(snapshot: Optional[Dict]) -> str:
    """Render one registry snapshot as aligned text tables."""
    if not snapshot or not any(snapshot.get(section)
                               for section in ("counters", "gauges",
                                               "histograms")):
        return "no metrics recorded"
    lines: List[str] = []
    counters = snapshot.get("counters") or {}
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value:>16,.0f}")
    gauges = snapshot.get("gauges") or {}
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {value:>16,.6g}")
    histograms = snapshot.get("histograms") or {}
    if histograms:
        lines.append("histograms:          "
                     "count          mean           min           max")
        width = max(len(name) for name in histograms)

        def cell(value) -> str:
            return f"{value:>13,.6g}" if value is not None else f"{'-':>13}"

        for name, summary in histograms.items():
            lines.append(
                f"  {name:<{width}}  {summary.get('count', 0):>8,}"
                f" {cell(summary.get('mean'))}"
                f" {cell(summary.get('min'))}"
                f" {cell(summary.get('max'))}")
    return "\n".join(lines)


def metrics_snapshots(records: List[Dict]) -> List[Dict]:
    """The metrics snapshots embedded in parsed trace records."""
    return [r.get("metrics") or {} for r in records
            if r.get("type") == "metrics"]
