"""Lightweight structured tracing: span trees with a stable run id.

A :class:`TraceSpan` measures one phase of work — wall time via
``time.perf_counter`` and CPU time via ``time.process_time`` — and nests:
spans opened while another span is open become its children, so a run
produces a *tree* (encode → cnf/symmetry, portfolio race → per-member
solves, …).  Spans carry free-form attributes and point-in-time *events*
(``fault.injected``, ``member.won``, ``quarantine.entered``), each with
its own attributes and an offset from the span start.

Design constraints, in order:

1. **Disabled is (nearly) free.**  Tracing is off by default.  A
   disabled :func:`span` still measures time — the pipeline reads
   ``span.wall`` for its Table-2 time splits whether or not tracing is
   on — but records nothing, keeps no stack, and allocates one small
   object per span at *phase* granularity (a handful per solve call,
   never in the BCP hot loop).  :func:`event` is a single attribute
   check when disabled.  Solver trajectories are bit-identical either
   way because tracing never touches solver state or RNGs.
2. **One run, one id.**  The tracer owns a ``run_id`` minted once per
   process; spans shipped back from worker processes are re-stamped
   onto the parent's run when ingested, so a trace file reads as one
   coherent run.
3. **Workers ship, parents write.**  Worker processes never write the
   sink file themselves: :func:`worker_begin` resets inherited buffers
   (fork) or enables from the environment (spawn), and
   :func:`drain_spans` hands the finished spans back to the scheduler
   over the existing result queue, where :func:`ingest_spans` grafts
   them under the scheduler's span.  One writer, no interleaving.

Activation: call :func:`enable` (the CLI's ``--trace PATH`` does), or
set ``REPRO_TRACE=path`` in the environment — the latter is checked
once, lazily, and registers an ``atexit`` flush so library runs and
worker processes need no explicit teardown.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from typing import Any, Dict, List, Optional

#: Environment variable: a path enables tracing and names the JSONL sink.
ENV_VAR = "REPRO_TRACE"


def _new_run_id() -> str:
    return uuid.uuid4().hex[:12]


class TraceSpan:
    """One timed phase of work; a context manager.

    Always measures ``wall`` (perf_counter) and ``cpu`` (process_time)
    seconds, readable after ``__exit__`` — callers rely on the timings
    even when tracing is disabled.  Recording (id assignment, stack
    nesting, the JSONL record) happens only when the tracer is enabled
    at ``__enter__`` time.
    """

    __slots__ = ("name", "attrs", "events", "span_id", "parent_id",
                 "wall", "cpu", "_t0", "_wall0", "_cpu0", "_recording")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.events: List[Dict[str, Any]] = []
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.wall = 0.0
        self.cpu = 0.0
        self._t0 = 0.0
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._recording = False

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    def add_event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event inside this span."""
        if self._recording:
            self.events.append({
                "name": name,
                "t": round(time.perf_counter() - self._wall0, 6),
                **({"attrs": attrs} if attrs else {}),
            })

    def __enter__(self) -> "TraceSpan":
        self._t0 = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        tracer = _TRACER
        if tracer.enabled:
            self._recording = True
            self.span_id = tracer._assign_id()
            stack = tracer._stack
            self.parent_id = stack[-1].span_id if stack else None
            stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall = time.perf_counter() - self._wall0
        self.cpu = time.process_time() - self._cpu0
        if not self._recording:
            return
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__
        tracer = _TRACER
        stack = tracer._stack
        if self in stack:  # tolerate out-of-order exits
            stack.remove(self)
        tracer._records.append(self.to_record(tracer.run_id))
        return None

    def to_record(self, run_id: str) -> Dict[str, Any]:
        """This span as a JSON-ready dict (one JSONL line)."""
        record: Dict[str, Any] = {
            "type": "span",
            "run": run_id,
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t0": round(self._t0, 6),
            "wall": round(self.wall, 6),
            "cpu": round(self.cpu, 6),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if self.events:
            record["events"] = self.events
        return record


class Tracer:
    """Process-local tracing state: enablement, run id, span buffer."""

    def __init__(self) -> None:
        self.enabled = False
        self.sink_path: Optional[str] = None
        self.run_id = _new_run_id()
        self._records: List[Dict[str, Any]] = []
        self._stack: List[TraceSpan] = []
        self._seq = 0
        self._env_checked = False
        self._atexit_registered = False

    def _assign_id(self) -> str:
        self._seq += 1
        return f"{os.getpid()}-{self._seq}"

    # -- activation ----------------------------------------------------

    def enable(self, path: Optional[str] = None) -> None:
        """Turn tracing on; ``path`` names the JSONL sink for flush()."""
        self.enabled = True
        if path is not None:
            self.sink_path = path

    def disable(self) -> None:
        self.enabled = False

    def maybe_enable_from_env(self) -> bool:
        """One-time check of ``REPRO_TRACE``; registers an atexit flush
        so environment-activated runs need no explicit teardown."""
        if self._env_checked:
            return self.enabled
        self._env_checked = True
        path = os.environ.get(ENV_VAR)
        if path:
            self.enable(path)
            if not self._atexit_registered:
                import atexit
                atexit.register(self.flush)
                self._atexit_registered = True
        return self.enabled

    def reset(self) -> None:
        """Fresh state: buffers cleared, disabled, new run id (tests,
        and worker processes via :func:`worker_begin`)."""
        self.enabled = False
        self.sink_path = None
        self.run_id = _new_run_id()
        self._records = []
        self._stack = []
        self._seq = 0
        self._env_checked = False

    # -- recording -----------------------------------------------------

    def current(self) -> Optional[TraceSpan]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def event(self, name: str, **attrs: Any) -> None:
        """Record an event on the current span (or as an orphan record
        when no span is open)."""
        if not self.enabled:
            return
        span = self.current()
        if span is not None:
            span.add_event(name, **attrs)
            return
        self._records.append({
            "type": "event",
            "run": self.run_id,
            "parent": None,
            "name": name,
            "t0": round(time.time(), 6),
            **({"attrs": attrs} if attrs else {}),
        })

    # -- cross-process plumbing ----------------------------------------

    def drain_spans(self) -> List[Dict[str, Any]]:
        """Hand over (and clear) the finished-span records — what a
        worker ships back over its result queue."""
        records, self._records = self._records, []
        return records

    def ingest_spans(self, records: List[Dict[str, Any]],
                     parent_id: Optional[str] = None) -> None:
        """Graft records from another process into this trace: roots are
        re-parented under ``parent_id`` and every record is re-stamped
        onto this tracer's run id."""
        if not self.enabled or not records:
            return
        for record in records:
            record = dict(record)
            record["run"] = self.run_id
            if record.get("parent") is None and parent_id is not None:
                record["parent"] = parent_id
            self._records.append(record)

    # -- sink ----------------------------------------------------------

    def flush(self, path: Optional[str] = None,
              extra_records: Optional[List[Dict[str, Any]]] = None) -> int:
        """Append buffered records (plus ``extra_records``, e.g. a
        metrics snapshot) to ``path`` (default: the configured sink) as
        JSON Lines.  Returns the number of lines written; clears the
        buffer so a later flush (or the atexit hook) never duplicates.
        """
        records = self._records
        self._records = []
        if extra_records:
            records = records + list(extra_records)
        path = path if path is not None else self.sink_path
        if path is None or not records:
            return 0
        with open(path, "a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=False,
                                        default=str) + "\n")
        return len(records)


#: The process-local tracer every module-level helper operates on.
_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-local :class:`Tracer`."""
    return _TRACER


def enabled() -> bool:
    """Is tracing currently recording?  (Checks the environment once.)"""
    t = _TRACER
    if not t._env_checked and not t.enabled:
        t.maybe_enable_from_env()
    return t.enabled


def span(name: str, **attrs: Any) -> TraceSpan:
    """Open a span: ``with trace.span("encode", encoding=label) as s:``.

    The returned object always measures ``wall``/``cpu`` seconds;
    whether it is *recorded* depends on the tracer at entry time.
    """
    if not _TRACER._env_checked and not _TRACER.enabled:
        _TRACER.maybe_enable_from_env()
    return TraceSpan(name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Record an event on the innermost open span (no-op when disabled)."""
    if _TRACER.enabled:
        _TRACER.event(name, **attrs)


def enable(path: Optional[str] = None) -> None:
    """Module-level convenience for :meth:`Tracer.enable`."""
    _TRACER.enable(path)


def disable() -> None:
    _TRACER.disable()


def worker_begin() -> None:
    """Called at the top of a worker process: drop any state inherited
    from the parent (fork) and re-check the environment, so the worker
    records its own spans from a clean slate and ships them back rather
    than writing any file."""
    t = _TRACER
    inherited_enabled = t.enabled
    t._records = []
    t._stack = []
    t.sink_path = None  # workers never write the sink themselves
    t._env_checked = False
    if not inherited_enabled:
        t.maybe_enable_from_env()
        t.sink_path = None  # ship via queue even when env-activated
