"""Deterministic, seedable fault injection for the solving stack.

The paper's headline claims rest on trusting thousands of (encoding,
symmetry, solver) runs, and the portfolio/batch layers race worker
processes that can crash, hang, or return garbage.  This module lets us
*inject* exactly those faults on purpose — deterministically, so a chaos
test that failed once fails the same way again — and the audit layer
(:mod:`repro.reliability.audit`) checks that no injected fault ever
turns into a silently wrong answer.

Vocabulary
----------

* A :class:`FaultSpec` names one fault: a *kind* (what goes wrong), a
  *site* (where in the stack it fires), an optional label *match*
  (which strategies / runs it applies to), a firing *probability* and
  an optional cap on how often it fires.
* A :class:`FaultPlan` is an immutable, picklable bundle of specs plus
  a seed.  Plans cross process boundaries: explicitly (handed to
  ``run_portfolio`` / ``run_batch`` / ``SolverConfig.fault_plan``) or
  via the ``REPRO_FAULTS`` environment variable, which worker processes
  inherit — so chaos tests exercise *real* process boundaries.
* A :class:`FaultInjector` is the per-context activation of a plan: it
  draws from a private RNG seeded from ``(plan.seed, label, spec)`` via
  CRC32, so firing decisions are reproducible across processes and
  independent of ``PYTHONHASHSEED``.

Fault kinds
-----------

========== ============================================================
crash       raise :class:`InjectedFault` (solver site) or ``os._exit``
            (worker site) — exercises the died-without-reporting path.
hang        sleep for ``seconds`` (default one hour) *ignoring*
            cooperative cancellation — exercises hard-termination
            backstops.
slowdown    sleep ``seconds`` (default 5 ms) at every conflict
            boundary — budgets and deadlines must still hold.
wrong_model flip one deterministically chosen variable of a returned
            SAT assignment — the audit layer must flag it.
truncated_proof
            drop the tail (including the empty clause) of a recorded
            UNSAT proof — RUP replay must reject it.
corrupt_input
            flip the sign of one literal of the encoded CNF before
            solving — the answer may silently change; auditing catches
            it end to end.
drop_clause
            delete one deterministically chosen clause of the encoded
            CNF before solving — the canonical *encoding bug* (a
            dropped exclusivity constraint): the formula is weaker, so
            a SAT answer may decode to an improper coloring or an
            UNSAT instance may "solve".  The differential harness
            (:mod:`repro.qa`) must flag it as a disagreement.
drop_resolvent
            during bounded variable elimination
            (:mod:`repro.sat.inprocess`), silently omit one resolvent —
            the classic BVE implementation bug: the reduced formula is
            weaker than the original, so a model of it may not extend,
            or an UNSAT instance may "solve".  Audit / differential
            must catch the consequences.
skip_occurrence
            during inprocessing subsumption, act on a stale
            occurrence-list entry: delete a clause the subsumption
            check did *not* actually cover.  Same failure surface as
            ``drop_resolvent`` (a silently weakened formula).
worker_hang
            a serve-pool worker stalls inside a job for ``seconds``
            (default one hour), ignoring every cooperative budget —
            the stuck-solve scenario the serve watchdog must detect
            and SIGKILL (:mod:`repro.serve.resilience`).
journal_torn_write
            truncate one journal append mid-line and skip its fsync —
            the power-loss torn-tail scenario journal recovery must
            tolerate (:mod:`repro.serve.journal`).
conn_drop
            the server closes a client connection without replying —
            the flaky-network scenario the retrying client must
            survive (resubmission is idempotent by content address).
slow_client
            the client sleeps ``seconds`` (default 50 ms) before each
            send — exercises server read robustness and per-request
            deadlines.
drop_share  silently lose one clause exported to a sharing channel
            (:mod:`repro.dist.sharing`) in transit — sharing is an
            optimisation, so correctness must be unaffected; only the
            export/import counters may disagree.
corrupt_share
            mangle one exported clause in transit by zeroing a
            deterministically chosen literal (0 is never a valid DIMACS
            literal, so a correct import filter *must* reject the
            clause — a corrupt share reaching a solver's clause
            database would be unsound).
========== ============================================================

Sites: ``solver`` (all CDCL engines), ``arena`` / ``legacy`` /
``packed`` (one specific engine — used to test the engine-fallback
path), ``inprocess`` (the inter-restart simplification phases),
``encode`` (CNF generation in the pipeline), ``worker`` (the
portfolio / batch worker process itself), ``serve_worker`` (the solve
service's pool worker), ``journal`` (the serve request journal's
appends), ``conn`` (the serve connection layer, both ends),
``dist_shard`` (a shard worker of the distributed scheduler — the
usual targets are ``crash`` and ``hang``), ``clause_channel`` (the
clause-sharing transport between portfolio / cube members), or ``*``
(everywhere).

``REPRO_FAULTS`` grammar (items separated by ``;``)::

    REPRO_FAULTS="seed=42; crash@worker; wrong_model@solver:match=*s1*,p=0.5"

Each non-``seed`` item is ``kind[@site][:key=value,...]`` with keys
``match`` (fnmatch pattern on the run label), ``p`` / ``probability``,
``max`` / ``max_fires``, and ``s`` / ``seconds``.
"""

from __future__ import annotations

import os
import random
import time
import zlib
from dataclasses import dataclass, replace
from fnmatch import fnmatch
from typing import Dict, List, Optional, Tuple

from ..errors import ParseError

#: Recognised fault kinds (see module docstring).
FAULT_KINDS = ("crash", "hang", "slowdown", "wrong_model",
               "truncated_proof", "corrupt_input", "drop_clause",
               "drop_resolvent", "skip_occurrence", "worker_hang",
               "journal_torn_write", "conn_drop", "slow_client",
               "drop_share", "corrupt_share")

#: Recognised injection sites.
FAULT_SITES = ("*", "solver", "arena", "legacy", "packed", "inprocess",
               "encode", "worker", "serve_worker", "journal", "conn",
               "dist_shard", "clause_channel")

#: Environment variable consulted by the pipeline and the worker
#: processes; its value is a :meth:`FaultPlan.parse` string.
ENV_VAR = "REPRO_FAULTS"

_DEFAULT_HANG_SECONDS = 3600.0
_DEFAULT_SLOWDOWN_SECONDS = 0.005
_DEFAULT_SLOW_CLIENT_SECONDS = 0.05

#: Exit code used by a worker-site ``crash`` fault (``os._exit``), so a
#: chaos test can tell an injected process death from a real one.
CRASH_EXIT_CODE = 86


class InjectedFault(RuntimeError):
    """Raised by a ``crash`` fault at a solver-level site."""

    def __init__(self, kind: str, site: str, label: str = "") -> None:
        self.kind = kind
        self.site = site
        self.label = label
        suffix = f" ({label})" if label else ""
        super().__init__(f"injected {kind} fault at {site}{suffix}")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what goes wrong, where, for whom, how often."""

    kind: str
    site: str = "*"
    match: str = "*"
    probability: float = 1.0
    max_fires: Optional[int] = None
    seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(known: {', '.join(FAULT_KINDS)})")
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r} "
                             f"(known: {', '.join(FAULT_SITES)})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max_fires must be positive")
        if self.seconds is not None and self.seconds <= 0:
            raise ValueError("seconds must be positive")

    def applies(self, site: str, label: str) -> bool:
        """Does this spec target ``site`` for a run labelled ``label``?"""
        if self.site != "*" and self.site != site:
            return False
        return self.match == "*" or fnmatch(label, self.match)

    def to_text(self) -> str:
        """The spec in :meth:`FaultPlan.parse` item syntax."""
        text = self.kind
        if self.site != "*":
            text += f"@{self.site}"
        options = []
        if self.match != "*":
            options.append(f"match={self.match}")
        if self.probability != 1.0:
            options.append(f"p={self.probability}")
        if self.max_fires is not None:
            options.append(f"max={self.max_fires}")
        if self.seconds is not None:
            options.append(f"seconds={self.seconds}")
        if options:
            text += ":" + ",".join(options)
        return text

    @classmethod
    def from_text(cls, text: str) -> "FaultSpec":
        """Parse one ``kind[@site][:key=value,...]`` item."""
        head, _, options_text = text.partition(":")
        kind, _, site = head.partition("@")
        kwargs: Dict[str, object] = {}
        if options_text:
            for item in options_text.split(","):
                key, sep, value = item.partition("=")
                key = key.strip()
                value = value.strip()
                if not sep or not key:
                    raise ParseError(f"malformed fault option {item!r} "
                                     f"in {text!r}")
                try:
                    if key in ("p", "probability"):
                        kwargs["probability"] = float(value)
                    elif key in ("max", "max_fires"):
                        kwargs["max_fires"] = int(value)
                    elif key in ("s", "seconds"):
                        kwargs["seconds"] = float(value)
                    elif key == "match":
                        kwargs["match"] = value
                    else:
                        raise ParseError(f"unknown fault option {key!r} "
                                         f"in {text!r}")
                except ValueError as error:
                    if isinstance(error, ParseError):
                        raise
                    raise ParseError(f"bad value for fault option "
                                     f"{key!r} in {text!r}: {value!r}") \
                        from None
        try:
            return cls(kind=kind.strip(), site=(site.strip() or "*"),
                       **kwargs)
        except ValueError as error:
            raise ParseError(f"invalid fault spec {text!r}: {error}") \
                from None


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of fault specs plus the chaos seed."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    @property
    def empty(self) -> bool:
        return not self.specs

    def with_seed(self, seed: int) -> "FaultPlan":
        """This plan reseeded (the CLI ``--chaos-seed`` hook)."""
        return replace(self, seed=seed)

    def merge(self, other: Optional["FaultPlan"]) -> "FaultPlan":
        """Union of specs; this plan's seed wins unless it is 0."""
        if other is None:
            return self
        return FaultPlan(specs=self.specs + other.specs,
                         seed=self.seed or other.seed)

    def narrow(self, label: str, site: Optional[str] = None) -> "FaultPlan":
        """The sub-plan applying to one run label (match patterns are
        resolved against ``label`` and dropped)."""
        kept = tuple(replace(spec, match="*") for spec in self.specs
                     if (spec.match == "*" or fnmatch(label, spec.match))
                     and (site is None or spec.site in ("*", site)))
        return FaultPlan(specs=kept, seed=self.seed)

    def to_text(self) -> str:
        """Round-trippable :meth:`parse` / ``REPRO_FAULTS`` syntax."""
        items = [f"seed={self.seed}"] if self.seed else []
        items.extend(spec.to_text() for spec in self.specs)
        return ";".join(items)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see module docstring)."""
        specs: List[FaultSpec] = []
        seed = 0
        for raw_item in text.replace("\n", ";").split(";"):
            item = raw_item.strip()
            if not item:
                continue
            if item.startswith("seed="):
                try:
                    seed = int(item[len("seed="):])
                except ValueError:
                    raise ParseError(f"bad chaos seed {item!r}") from None
            else:
                specs.append(FaultSpec.from_text(item))
        return cls(specs=tuple(specs), seed=seed)

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """The plan configured via ``REPRO_FAULTS``, or None."""
        text = (environ if environ is not None else os.environ).get(
            ENV_VAR, "").strip()
        if not text:
            return None
        cached = _ENV_PARSE_CACHE.get(text)
        if cached is None:
            cached = cls.parse(text)
            _ENV_PARSE_CACHE[text] = cached
        return cached

    @staticmethod
    def resolve(explicit=None, environ=None) -> Optional["FaultPlan"]:
        """The active plan for one run.

        ``explicit`` is a :class:`FaultPlan` (used as-is — the caller
        that built it has already folded in whatever it wanted), None
        (use the ``REPRO_FAULTS`` environment plan, if any), or
        ``False`` to disable fault injection entirely — the audit layer
        re-solves with ``faults=False`` so its own probes are never
        faulted.  Each layer resolves exactly once and hands the
        resolved (possibly narrowed) plan down, so environment specs
        are never double-counted.
        """
        if explicit is False:
            return None
        if explicit is None:
            return FaultPlan.from_env(environ)
        return None if explicit.empty else explicit


_ENV_PARSE_CACHE: Dict[str, FaultPlan] = {}


class FaultInjector:
    """Per-context activation of a :class:`FaultPlan`.

    Each context — one solver call, one encode step, one worker process
    — builds its own injector with the sites it owns; firing decisions
    come from a CRC32-seeded private RNG, so they are deterministic
    given ``(plan.seed, label, spec index)`` and reproducible across
    processes.
    """

    def __init__(self, plan: FaultPlan, label: str = "",
                 sites: Tuple[str, ...] = ("*",)) -> None:
        self.plan = plan
        self.label = label
        self.sites = tuple(sites)
        self._fired: Dict[int, int] = {}
        self._rngs: Dict[int, random.Random] = {}
        #: Log of fired faults ("kind@site"), for diagnostics.
        self.log: List[str] = []

    def _rng(self, index: int) -> random.Random:
        rng = self._rngs.get(index)
        if rng is None:
            key = f"{self.plan.seed}|{self.label}|{index}".encode("utf-8")
            rng = random.Random(zlib.crc32(key))
            self._rngs[index] = rng
        return rng

    def _fire(self, kind: str) -> int:
        """Index of the spec of ``kind`` that fires now, or -1."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != kind:
                continue
            if not any(spec.applies(site, self.label)
                       for site in self.sites):
                continue
            count = self._fired.get(index, 0)
            if spec.max_fires is not None and count >= spec.max_fires:
                continue
            if spec.probability < 1.0 \
                    and self._rng(index).random() >= spec.probability:
                continue
            self._fired[index] = count + 1
            self.log.append(f"{kind}@{spec.site}")
            return index
        return -1

    def fire(self, kind: str) -> Optional[FaultSpec]:
        """The spec of ``kind`` firing now (side effect: counts it)."""
        index = self._fire(kind)
        return None if index < 0 else self.plan.specs[index]

    # -- kind-specific helpers, one per injection point ----------------

    def maybe_crash(self) -> None:
        """Raise :class:`InjectedFault` if a ``crash`` fault fires."""
        spec = self.fire("crash")
        if spec is not None:
            raise InjectedFault("crash", spec.site, self.label)

    def maybe_exit(self) -> None:
        """Kill the process (``os._exit``) if a ``crash`` fault fires —
        the worker-site variant: the parent sees a corpse, no report."""
        if self.fire("crash") is not None:
            os._exit(CRASH_EXIT_CODE)

    def maybe_hang(self, sleep=time.sleep) -> bool:
        """Sleep through a ``hang`` fault (ignoring cancellation)."""
        spec = self.fire("hang")
        if spec is None:
            return False
        sleep(spec.seconds if spec.seconds is not None
              else _DEFAULT_HANG_SECONDS)
        return True

    def slowdown_delay(self) -> float:
        """Seconds to sleep at this conflict boundary (0.0 = none)."""
        spec = self.fire("slowdown")
        if spec is None:
            return 0.0
        return (spec.seconds if spec.seconds is not None
                else _DEFAULT_SLOWDOWN_SECONDS)

    def maybe_worker_hang(self, sleep=time.sleep) -> bool:
        """Stall inside a serve-pool job if a ``worker_hang`` fault
        fires (the heartbeat side channel keeps beating — the stall is
        the *job*, which is exactly what the watchdog's deadline check
        must catch)."""
        spec = self.fire("worker_hang")
        if spec is None:
            return False
        sleep(spec.seconds if spec.seconds is not None
              else _DEFAULT_HANG_SECONDS)
        return True

    def torn_write(self, data: bytes) -> Optional[bytes]:
        """A torn prefix of one journal append, or None.

        When a ``journal_torn_write`` fault fires the journal writes
        only the returned prefix (roughly half the record, never the
        whole line) and skips the fsync — simulating power loss
        mid-append.  Recovery must treat the torn tail as absent.
        """
        index = self._fire("journal_torn_write")
        if index < 0 or len(data) < 2:
            return None
        return data[:max(1, len(data) // 2)]

    def maybe_conn_drop(self) -> bool:
        """True when a ``conn_drop`` fault fires — the connection layer
        closes the peer's connection without replying."""
        return self.fire("conn_drop") is not None

    def slow_client_delay(self) -> float:
        """Seconds the client sleeps before its next send (0.0 = none)."""
        spec = self.fire("slow_client")
        if spec is None:
            return 0.0
        return (spec.seconds if spec.seconds is not None
                else _DEFAULT_SLOW_CLIENT_SECONDS)

    def maybe_drop_share(self) -> bool:
        """True when a ``drop_share`` fault eats the clause being
        exported to a sharing channel — the exporter cannot tell (the
        loss is in transit), so it still counts the export."""
        return self.fire("drop_share") is not None

    def corrupt_share(self, lits: Tuple[int, ...]) -> Optional[Tuple[int, ...]]:
        """A corrupted copy of a clause crossing a sharing channel, or
        None when no ``corrupt_share`` fault fires.

        Corruption zeroes one deterministically chosen literal: 0 is
        never a valid DIMACS literal, so *any* correct import filter
        must reject the clause outright.  (A subtler corruption — say a
        sign flip — could silently produce a clause that is wrong but
        well-formed; the channel carries redundant learned clauses, so
        soundness demands rejecting malformed payloads, and this fault
        proves the filter does.)
        """
        index = self._fire("corrupt_share")
        if index < 0:
            return None
        if not lits:
            return (0,)
        mangled = list(lits)
        mangled[self._rng(index).randrange(len(mangled))] = 0
        return tuple(mangled)

    def wrong_model_var(self, num_vars: int) -> Optional[int]:
        """Variable to bit-flip in a SAT assignment, or None."""
        index = self._fire("wrong_model")
        if index < 0 or num_vars < 1:
            return None
        return self._rng(index).randint(1, num_vars)

    def truncated_proof_length(self, proof_length: int) -> Optional[int]:
        """New length for a recorded proof, or None.  Always drops the
        final (empty-clause) step so RUP replay must notice."""
        index = self._fire("truncated_proof")
        if index < 0 or proof_length < 1:
            return None
        return self._rng(index).randint(0, proof_length - 1) // 2

    def corrupt_cnf(self, cnf) -> Optional[str]:
        """Corrupt the encoded formula in place (encode-site faults).

        Tries ``corrupt_input`` (flip the sign of one literal), then
        ``drop_clause`` (delete one clause — the injected *encoding
        bug*).  Returns a description of the corruption, or None when
        no fault fires (or the formula has nothing to corrupt).
        ``cnf`` is duck-typed: anything with a ``clauses`` list of
        literal tuples works.
        """
        index = self._fire("corrupt_input")
        if index >= 0:
            clauses = cnf.clauses
            candidates = [i for i, clause in enumerate(clauses) if clause]
            if not candidates:
                return None
            rng = self._rng(index)
            target = candidates[rng.randrange(len(candidates))]
            clause = list(clauses[target])
            position = rng.randrange(len(clause))
            clause[position] = -clause[position]
            clauses[target] = tuple(clause)
            return (f"corrupt_input: flipped literal {position} of clause "
                    f"{target}")
        return self.drop_cnf_clause(cnf)

    def drop_cnf_clause(self, cnf) -> Optional[str]:
        """Delete one deterministically chosen clause of ``cnf`` in place.

        Prefers multi-literal clauses (conflict/exclusivity constraints)
        over units, so the dropped constraint weakens the formula the
        way a real encoder bug would.
        """
        index = self._fire("drop_clause")
        if index < 0:
            return None
        clauses = cnf.clauses
        candidates = [i for i, clause in enumerate(clauses)
                      if len(clause) >= 2]
        if not candidates:
            candidates = [i for i, clause in enumerate(clauses) if clause]
        if not candidates:
            return None
        target = candidates[self._rng(index).randrange(len(candidates))]
        dropped = clauses[target]
        del clauses[target]
        return (f"drop_clause: removed clause {target} "
                f"{tuple(dropped)}")
