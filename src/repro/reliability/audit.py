"""End-to-end auditing of solver answers.

Every layer of the stack returns an *answer* — a raw
:class:`~repro.sat.model.SolveResult`, a decoded
:class:`~repro.core.pipeline.ColoringOutcome`, a
:class:`~repro.fpga.flow.DetailedRoutingResult` — and every answer can
be wrong: a faulted solver (see :mod:`repro.reliability.faults`), a
buggy encoding, a corrupted worker.  The auditors here re-derive each
claim from first principles:

* **SAT** answers: the model must satisfy every clause of the CNF, the
  decoded coloring must be proper, and a decoded routing must respect
  track exclusivity (via the independent verifier in
  :mod:`repro.fpga.tracks`).
* **UNSAT** answers: when a proof was recorded (``proof_log``), replay
  it through the independent RUP checker in :mod:`repro.sat.proof`;
  otherwise run a budgeted *cross-engine spot-check* — re-solve with the
  other CDCL engine, faults disabled — and fail the audit if it finds a
  model.

Each audit produces an :class:`AuditReport`: a list of named
:class:`AuditCheck` results and an overall verdict (FAIL if any check
failed, else SKIPPED if nothing was checkable, else PASS).  The
portfolio and batch runners consume these reports to reject wrong
winners and quarantine misbehaving strategies
(:mod:`repro.reliability.quarantine`).

Auditors never raise on a *bad answer* — a wrong model yields a FAIL
verdict, not an exception — and their internal re-solves always run
with fault injection disabled (``faults=False``) so a chaos plan cannot
fault the audit itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import metrics as obs_metrics
from ..obs import trace
from ..sat.cnf import CNF
from ..sat.model import Model, SolveResult
from ..sat.proof import verify_rup_proof
from ..sat.solver.config import SolverConfig
from ..sat.status import SolveStatus

#: Conflict budget of a cross-engine UNSAT spot-check.  Deliberately
#: modest: the spot-check is a smoke detector, not a re-run of the
#: experiment — an inconclusive check is reported as SKIPPED, never as
#: a pass.
DEFAULT_CROSS_CHECK_CONFLICTS = 20000


class AuditVerdict(Enum):
    """Outcome of one audit check (or of a whole report)."""

    PASS = "PASS"
    FAIL = "FAIL"
    #: Nothing checkable: an undecided status, a missing model/proof,
    #: or an inconclusive (budget-exhausted) cross-check.
    SKIPPED = "SKIPPED"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class AuditCheck:
    """One named re-verification step and its verdict."""

    name: str
    verdict: AuditVerdict
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.name}: {self.verdict}{suffix}"


@dataclass
class AuditReport:
    """Structured result of auditing one answer.

    ``verdict`` is FAIL when any check failed; PASS when at least one
    check passed and none failed; SKIPPED when nothing was checkable
    (e.g. the answer was TIMEOUT — there is no claim to audit).
    """

    subject: str = ""
    checks: List[AuditCheck] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def verdict(self) -> AuditVerdict:
        verdicts = [check.verdict for check in self.checks]
        if AuditVerdict.FAIL in verdicts:
            return AuditVerdict.FAIL
        if AuditVerdict.PASS in verdicts:
            return AuditVerdict.PASS
        return AuditVerdict.SKIPPED

    @property
    def passed(self) -> bool:
        """True iff the answer survived auditing (no failed check)."""
        return self.verdict is not AuditVerdict.FAIL

    @property
    def failed(self) -> bool:
        return self.verdict is AuditVerdict.FAIL

    @property
    def failures(self) -> List[AuditCheck]:
        return [check for check in self.checks
                if check.verdict is AuditVerdict.FAIL]

    def add(self, name: str, ok: Optional[bool], detail: str = "") -> None:
        """Record one check (``ok=None`` records a SKIPPED check)."""
        verdict = (AuditVerdict.SKIPPED if ok is None
                   else AuditVerdict.PASS if ok else AuditVerdict.FAIL)
        self.checks.append(AuditCheck(name, verdict, detail))

    def extend(self, other: "AuditReport") -> None:
        self.checks.extend(other.checks)
        self.wall_time += other.wall_time

    def summary(self) -> str:
        """One line per check, preceded by the overall verdict."""
        head = f"audit {self.verdict}"
        if self.subject:
            head += f" [{self.subject}]"
        return "\n".join([head] + [f"  - {check}" for check in self.checks])

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "verdict": self.verdict.value,
            "wall_time": self.wall_time,
            "checks": [{"name": check.name,
                        "verdict": check.verdict.value,
                        "detail": check.detail}
                       for check in self.checks],
        }


def _observe_checks(checks: Sequence[AuditCheck]) -> None:
    """Mirror audit checks into the observability layer: one
    ``audit.check`` span event and one per-verdict counter each.  Must
    run while the audit's span is still open so the events attach to it;
    a no-op when tracing and metrics are both disabled."""
    if trace.enabled():
        for check in checks:
            trace.event("audit.check", check=check.name,
                        verdict=str(check.verdict),
                        **({"detail": check.detail} if check.detail else {}))
    if obs_metrics.enabled():
        registry = obs_metrics.registry()
        for check in checks:
            registry.inc(f"audit.checks.{check.verdict}".lower())


def _observe_report(report: AuditReport, audit_span) -> None:
    """Close out one audit's observability: verdict attribute on the
    span, check events, and the per-verdict report counter."""
    audit_span.set("verdict", str(report.verdict))
    _observe_checks(report.checks)
    if obs_metrics.enabled():
        obs_metrics.registry().inc(f"audit.{report.verdict}".lower())


def _check_model(report: AuditReport, cnf: CNF,
                 model: Optional[Model]) -> None:
    """SAT-side check: the model satisfies every clause of the CNF."""
    if model is None:
        report.add("model-present", False, "SAT answer carries no model")
        return
    if model.num_vars < cnf.num_vars:
        report.add("model-satisfies-cnf", False,
                   f"model covers {model.num_vars} of {cnf.num_vars} "
                   f"variables")
        return
    for index, clause in enumerate(cnf):
        if not model.satisfies_clause(clause):
            report.add("model-satisfies-cnf", False,
                       f"clause {index} falsified: {tuple(clause)}")
            return
    report.add("model-satisfies-cnf", True,
               f"{cnf.num_clauses} clauses satisfied")


def _check_proof(report: AuditReport, cnf: CNF,
                 proof: Sequence[Sequence[int]]) -> None:
    """UNSAT-side check: replay the recorded proof through the
    independent RUP checker."""
    outcome = verify_rup_proof(cnf, proof)
    detail = (f"{outcome.steps} steps verified" if outcome.ok
              else outcome.error)
    report.add("proof-replay", outcome.ok, detail)


def _cross_check_unsat(report: AuditReport, cnf: CNF, engine: str,
                       conflict_budget: int) -> None:
    """UNSAT-side fallback: budgeted re-solve on the *other* engine.

    A found model refutes the UNSAT claim (FAIL); agreement passes; an
    exhausted budget is recorded as SKIPPED — inconclusive is not a
    pass.
    """
    other = "legacy" if engine != "legacy" else "arena"
    config = SolverConfig(engine=other, conflict_budget=conflict_budget,
                          name=f"audit-{other}", fault_plan=False)
    from ..sat.solver.cdcl import CDCLSolver
    result = CDCLSolver(cnf, config).solve()
    name = "cross-engine-unsat"
    if result.status is SolveStatus.SAT:
        report.add(name, False,
                   f"{other} engine found a model for the formula "
                   f"claimed UNSAT")
    elif result.status is SolveStatus.UNSAT:
        report.add(name, True, f"{other} engine agrees (budget "
                               f"{conflict_budget} conflicts)")
    else:
        report.add(name, None,
                   f"spot-check inconclusive: {result.status} after "
                   f"{int(result.stats.get('conflicts', 0))} conflicts")


def audit_solve(cnf: CNF, result: SolveResult,
                proof: Optional[Sequence[Sequence[int]]] = None, *,
                subject: str = "",
                cross_check: bool = True,
                cross_check_conflicts: int = DEFAULT_CROSS_CHECK_CONFLICTS,
                engine: str = "arena") -> AuditReport:
    """Audit a raw solver answer against the CNF it was asked about.

    SAT → the model must satisfy the formula.  UNSAT → replay ``proof``
    when given, else a budgeted cross-engine spot-check (``engine`` is
    the engine that produced the answer; the check uses the other one).
    Undecided statuses have no claim to audit and yield SKIPPED.
    """
    start = time.perf_counter()
    report = AuditReport(subject=subject)
    with trace.span("audit", kind="solve", subject=subject,
                    status=str(result.status)) as audit_span:
        if result.status is SolveStatus.SAT:
            _check_model(report, cnf, result.model)
        elif result.status is SolveStatus.UNSAT:
            if proof is not None:
                _check_proof(report, cnf, proof)
            elif cross_check:
                _cross_check_unsat(report, cnf, engine,
                                   cross_check_conflicts)
            else:
                report.add("unsat-claim", None,
                           "no proof recorded and cross-check disabled")
        else:
            report.add("status", None,
                       f"nothing to audit for {result.status}")
        report.wall_time = time.perf_counter() - start
        _observe_report(report, audit_span)
    return report


def _encode(problem, strategy) -> CNF:
    """Re-encode ``problem`` exactly as the pipeline did (encoding is
    deterministic given the strategy)."""
    from ..core.encodings.registry import get_encoding
    from ..core.symmetry.clauses import apply_symmetry
    encoded = get_encoding(strategy.encoding).encode(problem)
    apply_symmetry(encoded, strategy.symmetry)
    return encoded.cnf


def audit_outcome(problem, outcome, *,
                  cross_check: bool = True,
                  cross_check_conflicts: int = DEFAULT_CROSS_CHECK_CONFLICTS
                  ) -> AuditReport:
    """Audit a pipeline :class:`ColoringOutcome` end to end.

    SAT → the decoded coloring must be proper; when the outcome retained
    its model (``solve_coloring(..., keep_model=True)``), the model is
    additionally checked against a re-encoding of the problem.  UNSAT →
    proof replay when the outcome carries a proof, else a cross-engine
    spot-check of the re-encoded formula.
    """
    start = time.perf_counter()
    strategy = outcome.strategy
    report = AuditReport(subject=strategy.label)
    with trace.span("audit", kind="outcome", subject=strategy.label,
                    status=str(outcome.status)) as audit_span:
        if outcome.status is SolveStatus.SAT:
            coloring = outcome.coloring
            if coloring is None:
                report.add("coloring-present", False,
                           "SAT answer carries no coloring")
            else:
                ok = problem.is_valid_coloring(coloring)
                report.add("coloring-proper", ok,
                           "" if ok else "decoded coloring has a conflict "
                                         "or an out-of-range color")
            model = getattr(outcome, "model", None)
            if model is not None:
                _check_model(report, _encode(problem, strategy), model)
        elif outcome.status is SolveStatus.UNSAT:
            proof = getattr(outcome, "proof", None)
            if proof is not None:
                _check_proof(report, _encode(problem, strategy), proof)
            elif cross_check:
                engine = getattr(strategy, "engine", "arena")
                _cross_check_unsat(report, _encode(problem, strategy),
                                   engine, cross_check_conflicts)
            else:
                report.add("unsat-claim", None,
                           "no proof recorded and cross-check disabled")
        else:
            detail = str(outcome.solver_stats.get("stop_reason", ""))
            report.add("status", None,
                       f"nothing to audit for {outcome.status}"
                       + (f" ({detail})" if detail else ""))
        report.wall_time = time.perf_counter() - start
        _observe_report(report, audit_span)
    return report


def audit_routing(result, *,
                  cross_check: bool = True,
                  cross_check_conflicts: int = DEFAULT_CROSS_CHECK_CONFLICTS
                  ) -> AuditReport:
    """Audit a :class:`DetailedRoutingResult`: the underlying coloring
    outcome plus routing-level track exclusivity on the decoded
    assignment (via the independent verifier)."""
    report = audit_outcome(result.csp.problem, result.outcome,
                           cross_check=cross_check,
                           cross_check_conflicts=cross_check_conflicts)
    start = time.perf_counter()
    checked = len(report.checks)
    with trace.span("audit.routing", subject=report.subject) as audit_span:
        if result.status is SolveStatus.SAT:
            if result.assignment is None:
                report.add("track-exclusivity", False,
                           "routable answer carries no track assignment")
            else:
                from ..fpga.tracks import verify_track_assignment
                violations = verify_track_assignment(result.assignment)
                report.add("track-exclusivity", not violations,
                           "; ".join(violations[:3]))
        report.wall_time += time.perf_counter() - start
        audit_span.set("verdict", str(report.verdict))
        # Only the routing-level checks: the inner audit_outcome span
        # already observed the rest.
        _observe_checks(report.checks[checked:])
    return report


def audit_result(result, *, problem=None, cnf: Optional[CNF] = None,
                 proof: Optional[Sequence[Sequence[int]]] = None,
                 **options) -> AuditReport:
    """Audit any answer the stack produces, dispatching on its type.

    * :class:`SolveResult` — requires ``cnf`` (and optionally ``proof``).
    * :class:`ColoringOutcome` — requires ``problem``.
    * :class:`DetailedRoutingResult` — self-contained.
    """
    if isinstance(result, SolveResult):
        if cnf is None:
            raise ValueError("auditing a SolveResult requires cnf=")
        return audit_solve(cnf, result, proof, **options)
    from ..core.pipeline import ColoringOutcome
    if isinstance(result, ColoringOutcome):
        if problem is None:
            raise ValueError("auditing a ColoringOutcome requires problem=")
        return audit_outcome(problem, result, **options)
    from ..fpga.flow import DetailedRoutingResult
    if isinstance(result, DetailedRoutingResult):
        return audit_routing(result, **options)
    raise TypeError(f"don't know how to audit {type(result).__name__}")
