"""Reliability engineering for the reproduction harness.

Two halves, designed to be used together:

* :mod:`repro.reliability.faults` — deterministic, seedable fault
  injection (:class:`FaultPlan` / :class:`FaultInjector`) wired into
  the CDCL engines, the pipeline's encode step, and the portfolio /
  batch worker processes.  Activated per-call or via the
  ``REPRO_FAULTS`` environment variable.
* :mod:`repro.reliability.audit` — end-to-end re-verification of every
  answer (:func:`audit_result` and friends), producing structured
  :class:`AuditReport` objects; :mod:`repro.reliability.quarantine`
  turns repeated failures into capped exponential backoff.

See ``docs/reliability.md`` for the guarantees and a chaos-testing
quickstart.
"""

from .audit import (AuditCheck, AuditReport, AuditVerdict, audit_outcome,
                    audit_result, audit_routing, audit_solve)
from .faults import (CRASH_EXIT_CODE, ENV_VAR, FAULT_KINDS, FAULT_SITES,
                     FaultInjector, FaultPlan, FaultSpec, InjectedFault)
from .quarantine import QuarantinePolicy, QuarantineTracker, StrategyHealth

__all__ = [
    "AuditCheck", "AuditReport", "AuditVerdict",
    "audit_outcome", "audit_result", "audit_routing", "audit_solve",
    "CRASH_EXIT_CODE", "ENV_VAR", "FAULT_KINDS", "FAULT_SITES",
    "FaultInjector", "FaultPlan", "FaultSpec", "InjectedFault",
    "QuarantinePolicy", "QuarantineTracker", "StrategyHealth",
]
