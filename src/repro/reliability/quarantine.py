"""Strategy quarantine with capped exponential backoff.

The batch runner (and, in a lighter form, the portfolio) may run the
same strategy over and over.  A strategy whose worker repeatedly
crashes or whose answers repeatedly fail audit should not be retried at
full rate — it burns the budget and pollutes the results.  The
:class:`QuarantineTracker` keeps a per-strategy health record:

* every crash / audit failure increments an *offence* counter;
* after ``policy.threshold`` consecutive offences the strategy is
  quarantined for ``base * factor ** (offences - threshold)`` seconds,
  capped at ``policy.max_backoff`` — capped exponential backoff;
* a success (or a clean undecided stop) resets the record.

The tracker is deliberately time-source-agnostic: callers pass ``now``
(a monotonic timestamp) so schedulers and tests control the clock.
It is pure bookkeeping — no solver imports, only the stdlib and the
equally dependency-free :mod:`repro.obs` — so every layer can use it
without dependency cycles.  State transitions (offence recorded,
quarantine entered, record reset) are mirrored as trace events and
counters when observability is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs import metrics as obs_metrics
from ..obs import trace


@dataclass(frozen=True)
class QuarantinePolicy:
    """When and for how long a misbehaving strategy sits out.

    Attributes
    ----------
    threshold:
        Consecutive offences before the first quarantine period.
    base_backoff:
        Length of the first quarantine period, in seconds.
    backoff_factor:
        Multiplier applied per additional consecutive offence.
    max_backoff:
        Cap on any single quarantine period, in seconds.
    """

    threshold: int = 2
    base_backoff: float = 0.5
    backoff_factor: float = 2.0
    max_backoff: float = 30.0

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff(self, offences: int) -> float:
        """Quarantine length after ``offences`` consecutive offences
        (0.0 while still under the threshold)."""
        if offences < self.threshold:
            return 0.0
        duration = self.base_backoff * (
            self.backoff_factor ** (offences - self.threshold))
        return min(duration, self.max_backoff)


@dataclass
class StrategyHealth:
    """Mutable health record of one strategy (keyed by label)."""

    label: str
    offences: int = 0          # consecutive crashes / audit failures
    total_offences: int = 0
    successes: int = 0
    quarantined_until: float = 0.0
    last_reason: str = ""
    history: List[str] = field(default_factory=list)

    def quarantined(self, now: float) -> bool:
        return now < self.quarantined_until


class QuarantineTracker:
    """Per-strategy offence bookkeeping shared by a scheduler run."""

    def __init__(self, policy: Optional[QuarantinePolicy] = None) -> None:
        self.policy = policy if policy is not None else QuarantinePolicy()
        self._health: Dict[str, StrategyHealth] = {}

    def health(self, label: str) -> StrategyHealth:
        record = self._health.get(label)
        if record is None:
            record = StrategyHealth(label)
            self._health[label] = record
        return record

    def record_success(self, label: str) -> None:
        """A clean, audit-passing run: consecutive offences reset."""
        record = self.health(label)
        if record.offences:
            trace.event("quarantine.reset", label=label,
                        offences=record.offences)
            if obs_metrics.enabled():
                obs_metrics.registry().inc("quarantine.resets")
        record.offences = 0
        record.quarantined_until = 0.0
        record.successes += 1

    def record_offence(self, label: str, reason: str,
                       now: float) -> float:
        """A crash or audit failure; returns the backoff imposed (s)."""
        record = self.health(label)
        record.offences += 1
        record.total_offences += 1
        record.last_reason = reason
        record.history.append(reason)
        backoff = self.policy.backoff(record.offences)
        trace.event("quarantine.offence", label=label, reason=reason,
                    offences=record.offences)
        if backoff > 0.0:
            record.quarantined_until = max(record.quarantined_until,
                                           now + backoff)
            trace.event("quarantine.entered", label=label,
                        backoff=round(backoff, 3),
                        offences=record.offences)
        if obs_metrics.enabled():
            registry = obs_metrics.registry()
            registry.inc("quarantine.offences")
            if backoff > 0.0:
                registry.inc("quarantine.entered")
                registry.observe("quarantine.backoff", backoff)
        return backoff

    def quarantined(self, label: str, now: float) -> bool:
        """Is the strategy sitting out at time ``now``?"""
        record = self._health.get(label)
        return record is not None and record.quarantined(now)

    def release_time(self, label: str) -> float:
        """Timestamp at which the strategy may run again (0.0 = now)."""
        record = self._health.get(label)
        return 0.0 if record is None else record.quarantined_until

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready view of every tracked strategy, for diagnostics."""
        return {
            label: {
                "offences": record.offences,
                "total_offences": record.total_offences,
                "successes": record.successes,
                "quarantined_until": record.quarantined_until,
                "last_reason": record.last_reason,
            }
            for label, record in sorted(self._health.items())
        }
