"""Command-line front-end.

Exposes the paper's two-stage tool flow as composable commands::

    python -m repro benchmarks                       # list circuit profiles
    python -m repro generate alu2 --out alu2.json    # placed netlist JSON
    python -m repro width alu2                       # min channel width
    python -m repro route alu2 --width 7             # tracks or UNSAT proof
    python -m repro portfolio alu2 --width 7         # parallel strategy race
    python -m repro extract alu2 --width 6 --out g.col   # stage 1: .col
    python -m repro encode g.col --colors 6 \\
        --encoding ITE-linear-2+muldirect --symmetry s1 --out g.cnf  # stage 2
    python -m repro solve g.cnf                      # plain CDCL on DIMACS
    python -m repro audit g.col --colors 6           # solve + re-check answer
    python -m repro route alu2 --width 7 --trace run.jsonl  # traced run
    python -m repro trace run.jsonl                  # render the span tree
    python -m repro metrics run.jsonl                # render metric snapshots
    python -m repro fuzz --seeds 5 --out bundles     # differential fuzzing
    python -m repro serve --cache-dir cache          # solver-as-a-service
    python -m repro submit localhost:7227 g.col --colors 6  # remote job

Every command is deterministic given its inputs, so pipelines are
reproducible end to end.  Exit codes are uniform across every solving
command (route, solve, color, audit, portfolio, submit, fuzz): the
DIMACS convention — 10 for SAT/routable (for ``fuzz``: at least one
finding), 20 for proven UNSAT/unroutable, 0 when a ``--timeout`` or
``--conflict-budget`` stopped the run undecided (for ``fuzz``: campaign
clean) — and 2 for usage or execution errors, so shell scripts can
branch on the verdict.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .coloring import ColoringProblem, parse_col_file, write_col_file
from .core import (PORTFOLIO_2, PORTFOLIO_3, Strategy, get_encoding,
                   run_portfolio, solve_coloring)
from .core.symmetry import apply_symmetry
from .fpga import (ALL_BENCHMARKS, benchmark_spec, build_routing_csp,
                   detailed_route, load_netlist, load_routing,
                   minimum_channel_width, route_netlist)
from .fpga.io import assignment_to_json, netlist_to_json, read_netlist
from .sat import SolveLimits, SolveStatus, parse_dimacs_file, solve
from .sat.solver.cdcl import BudgetExceeded
from .sat.solver.config import preset

DEFAULT_ENCODING = "ITE-linear-2+muldirect"
DEFAULT_SYMMETRY = "s1"


def _strategy(args) -> Strategy:
    return Strategy(args.encoding, args.symmetry, solver=args.solver,
                    seed=args.seed,
                    engine=getattr(args, "engine", "arena"))


def _add_budget_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--timeout", type=float, metavar="SECONDS",
                        help="wall-clock limit; on expiry the run stops "
                             "cooperatively and exits 0 (unknown)")
    parser.add_argument("--conflict-budget", type=int, metavar="N",
                        help="stop after N conflicts (exit 0, unknown)")


def _limits(args) -> Optional[SolveLimits]:
    """The :class:`SolveLimits` implied by --timeout/--conflict-budget."""
    if args.timeout is None and args.conflict_budget is None:
        return None
    return SolveLimits(conflict_budget=args.conflict_budget,
                       wall_clock_limit=args.timeout)


def _print_stop_reason(stats) -> None:
    reason = stats.get("stop_reason")
    if reason:
        print(f"  stopped: {reason}")
    injected = stats.get("injected_faults")
    if injected:
        print(f"  injected faults: {injected}")


def _add_fault_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--faults", metavar="SPEC",
                        help="fault-injection plan, e.g. "
                             "'seed=7; wrong_model; crash@worker:p=0.5' "
                             "(default: $REPRO_FAULTS)")
    parser.add_argument("--chaos-seed", type=int, metavar="N",
                        help="override the fault plan's RNG seed")


def _apply_fault_options(args) -> None:
    """Publish --faults / --chaos-seed via ``REPRO_FAULTS``.

    Exporting the plan through the environment (rather than threading a
    kwarg through every layer) means worker *processes* inherit it too,
    which is exactly how chaos runs are meant to propagate.
    """
    faults = getattr(args, "faults", None)
    chaos_seed = getattr(args, "chaos_seed", None)
    if faults is None and chaos_seed is None:
        return
    import os

    from .reliability.faults import ENV_VAR, FaultPlan
    plan = (FaultPlan.parse(faults) if faults is not None
            else FaultPlan.from_env())
    if plan is None:
        if chaos_seed is not None:
            print("warning: --chaos-seed given but no fault plan "
                  "(--faults or $REPRO_FAULTS); nothing to seed",
                  file=sys.stderr)
        return
    if chaos_seed is not None:
        plan = plan.with_seed(chaos_seed)
    os.environ[ENV_VAR] = plan.to_text()


#: CLI-activated observability state: sink path and the environment
#: values to restore at flush time (see ``_apply_obs_options``).
_OBS_STATE: dict = {}


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="PATH", dest="trace_out",
                        help="record a structured trace of this run as "
                             "JSON Lines at PATH (render it with `repro "
                             "trace PATH`); also enables the metrics "
                             "registry, whose snapshot is appended to "
                             "the same file (default: $REPRO_TRACE)")


def _apply_obs_options(args) -> None:
    """Activate tracing + metrics for ``--trace PATH``.

    The sink path is also exported as ``REPRO_TRACE`` (and the registry
    as ``REPRO_METRICS``) so worker *processes* inherit the setting —
    they record locally and ship their telemetry back over the result
    queues; only this process writes the file.  The previous environment
    is remembered and restored by ``_flush_obs``.
    """
    path = getattr(args, "trace_out", None)
    if not path:
        return
    import os

    from .obs import metrics as obs_metrics
    from .obs import trace as obs_trace
    _OBS_STATE["path"] = path
    _OBS_STATE["env"] = {var: os.environ.get(var)
                         for var in (obs_trace.ENV_VAR, obs_metrics.ENV_VAR)}
    os.environ[obs_trace.ENV_VAR] = path
    os.environ[obs_metrics.ENV_VAR] = "1"
    obs_trace.enable(path)
    obs_metrics.enable()


def _flush_obs() -> None:
    """End of a ``--trace`` run: append the buffered spans plus a final
    metrics snapshot to the sink, restore the environment, disable."""
    if not _OBS_STATE:
        return
    import os

    from .obs import metrics as obs_metrics
    from .obs import trace as obs_trace
    tracer = obs_trace.tracer()
    extra = []
    if not obs_metrics.registry().empty:
        extra.append(obs_metrics.snapshot_record(tracer.run_id))
    written = tracer.flush(extra_records=extra)
    path = _OBS_STATE["path"]
    for var, old in _OBS_STATE["env"].items():
        if old is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = old
    obs_trace.disable()
    obs_metrics.enable(False)
    _OBS_STATE.clear()
    if written:
        print(f"wrote trace: {path} ({written} records, run "
              f"{tracer.run_id})", file=sys.stderr)


def _add_strategy_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--encoding", default=DEFAULT_ENCODING,
                        help=f"CSP-to-SAT encoding (default "
                             f"{DEFAULT_ENCODING}; see 'repro encodings' "
                             f"for the full registry)")
    parser.add_argument("--symmetry", default=DEFAULT_SYMMETRY,
                        choices=["none", "b1", "s1", "c1"],
                        help="symmetry-breaking heuristic (default s1)")
    parser.add_argument("--solver", default="siege_like",
                        choices=["siege_like", "minisat_like"],
                        help="CDCL preset (default siege_like)")
    parser.add_argument("--seed", type=int, default=0,
                        help="solver seed (default 0)")
    parser.add_argument("--engine", default="arena",
                        choices=["arena", "legacy", "packed",
                                 "arena+inprocess"],
                        help="BCP engine (default arena); "
                             "'arena+inprocess' is the arena engine "
                             "with inprocessing + tier reduction (see "
                             "docs/performance.md)")


def _print_solver_stats(stats) -> None:
    """Print the solver's performance counters (the ``--stats`` flag)."""
    print("  solver stats:")
    for key in ("decisions", "conflicts", "propagations", "restarts",
                "learned_clauses", "deleted_clauses", "minimized_literals"):
        if key in stats:
            print(f"    {key:20s} {int(stats[key]):>12,}")
    if "props_per_sec" in stats:
        print(f"    {'props_per_sec':20s} {stats['props_per_sec']:>12,.0f}")
    # Arena-engine BCP instrumentation (absent under engine="legacy").
    inspections = stats.get("watch_inspections")
    if inspections:
        hits = stats.get("blocker_hits", 0)
        print(f"    {'watch_inspections':20s} {int(inspections):>12,}")
        print(f"    {'blocker_hits':20s} {int(hits):>12,} "
              f"({hits / inspections:.1%} hit rate)")
    if "arena_compactions" in stats:
        print(f"    {'arena_compactions':20s} "
              f"{int(stats['arena_compactions']):>12,}")


def _print_outcome_report(outcome, *, show_stats: bool = False) -> None:
    """Shared per-run report: problem size, the paper's Table-2 time
    split (graph + encode + solve), and optional solver counters.

    One helper for every solving command — route, color, audit and the
    portfolio's winner all print the same lines, so the time split is
    never a privilege of one code path.
    """
    print(f"  {outcome.num_vars} vars, {outcome.num_clauses} clauses, "
          f"{int(outcome.solver_stats.get('conflicts', 0))} conflicts")
    print(f"  time: graph {outcome.graph_time:.3f}s + "
          f"encode {outcome.encode_time:.3f}s + "
          f"solve {outcome.solve_time:.3f}s = {outcome.total_time:.3f}s")
    if show_stats:
        print(f"  encode split: cnf {outcome.cnf_time:.3f}s + "
              f"symmetry {outcome.symmetry_time:.3f}s")
        _print_solver_stats(outcome.solver_stats)


def _load_routing_arg(circuit: str, scale: float):
    """A circuit argument is either a benchmark name or a netlist JSON."""
    if circuit in ALL_BENCHMARKS:
        return load_routing(circuit, scale=scale)
    netlist = read_netlist(circuit)
    return route_netlist(netlist, congestion_penalty=1.0)


def cmd_benchmarks(args) -> int:
    print(f"{'name':12s} {'grid':8s} {'nets':>5s}  suite")
    for name in ALL_BENCHMARKS:
        spec = benchmark_spec(name, args.scale)
        suite = "table2" if name in ALL_BENCHMARKS[:8] else "extra"
        print(f"{name:12s} {spec.cols}x{spec.rows:<6d} {spec.num_nets:5d}  {suite}")
    return 0


def cmd_encodings(args) -> int:
    from .core.encodings import (ALL_ENCODINGS, EXTENSION_ENCODINGS,
                                 MODERN_ENCODINGS, REGISTRY_ENCODINGS)
    families = [("paper", ALL_ENCODINGS), ("extension", EXTENSION_ENCODINGS),
                ("modern", MODERN_ENCODINGS)]
    family_of = {name: family for family, names in families
                 for name in names}
    num_colors = args.colors
    print(f"{'encoding':28s} {'family':10s} {'vars/vtx':>8s} "
          f"{'struct.clauses':>14s}  (K={num_colors})")
    for name in REGISTRY_ENCODINGS:
        vertex = get_encoding(name).vertex_encoding(num_colors)
        print(f"{name:28s} {family_of[name]:10s} {vertex.num_vars:8d} "
              f"{len(vertex.clauses):14d}")
    print(f"{len(REGISTRY_ENCODINGS)} registered encodings")
    return 0


def cmd_generate(args) -> int:
    netlist = load_netlist(args.circuit, scale=args.scale)
    text = netlist_to_json(netlist)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out} ({netlist.num_nets} nets)")
    else:
        print(text)
    return 0


def cmd_width(args) -> int:
    routing = _load_routing_arg(args.circuit, args.scale)
    limits = _limits(args)
    try:
        if args.incremental:
            from .core.incremental import IncrementalColoringSolver
            problem = build_routing_csp(routing, 1).problem
            solver = IncrementalColoringSolver(problem, _strategy(args),
                                               limits=limits)
            width = solver.minimum_colors()
            print(f"{routing.netlist.name}: minimum channel width W = {width} "
                  f"({solver.stats.queries} incremental queries)")
        else:
            width = minimum_channel_width(routing, _strategy(args),
                                          limits=limits)
            print(f"{routing.netlist.name}: minimum channel width W = {width}")
    except BudgetExceeded as stop:
        # An undecided probe leaves the width unknown, not an error.
        print(f"{routing.netlist.name}: minimum channel width UNKNOWN "
              f"({stop})")
        return SolveStatus.TIMEOUT.exit_code
    return 0


def cmd_route(args) -> int:
    _apply_fault_options(args)
    routing = _load_routing_arg(args.circuit, args.scale)
    result = detailed_route(routing, args.width, _strategy(args),
                            limits=_limits(args))
    outcome = result.outcome
    if result.status.decided:
        verdict = "ROUTABLE" if result.routable else "UNROUTABLE (proven)"
    else:
        verdict = f"UNDECIDED ({result.status})"
    print(f"{routing.netlist.name} @ W={args.width}: {verdict}")
    if not result.status.decided:
        _print_stop_reason(outcome.solver_stats)
    print(f"  encoding {args.encoding}, symmetry {args.symmetry}, "
          f"solver {args.solver}")
    _print_outcome_report(outcome, show_stats=args.stats)
    if result.routable and args.tracks_out:
        with open(args.tracks_out, "w", encoding="utf-8") as handle:
            handle.write(assignment_to_json(result.assignment))
        print(f"  wrote track assignment to {args.tracks_out}")
    if result.status is SolveStatus.UNSAT and args.certify:
        from .core.symmetry import apply_symmetry
        from .sat import check_rup_proof, solve_with_proof
        csp = build_routing_csp(routing, args.width)
        encoded = get_encoding(args.encoding).encode(csp.problem)
        apply_symmetry(encoded, args.symmetry)
        proof_result, proof = solve_with_proof(
            encoded.cnf, _strategy(args).solver_config())
        assert proof_result.status is SolveStatus.UNSAT
        steps = check_rup_proof(encoded.cnf, proof)
        print(f"  certificate: {steps} proof steps, independently "
              f"verified (RUP)")
    # DIMACS convention: 10 = SAT/routable, 20 = UNSAT/unroutable,
    # 0 = undecided (budget or deadline).
    return result.status.exit_code


def cmd_extract(args) -> int:
    routing = _load_routing_arg(args.circuit, args.scale)
    csp = build_routing_csp(routing, args.width)
    write_col_file(csp.problem.graph, args.out,
                   comments=[f"{routing.netlist.name} @ W={args.width}",
                             f"{csp.num_two_pin_nets} two-pin nets"])
    print(f"wrote {args.out}: {csp.problem.num_vertices} vertices, "
          f"{csp.problem.graph.num_edges} edges (color with K={args.width})")
    return 0


def cmd_encode(args) -> int:
    graph = parse_col_file(args.col_file)
    problem = ColoringProblem(graph, args.colors)
    encoded = get_encoding(args.encoding).encode(problem)
    added = apply_symmetry(encoded, args.symmetry)
    comments = [f"{args.col_file} with K={args.colors}",
                f"encoding {args.encoding}, symmetry {args.symmetry} "
                f"({added} clauses)"]
    if args.out:
        encoded.cnf.write_dimacs_file(args.out, comments=comments)
        print(f"wrote {args.out}: {encoded.cnf.num_vars} vars, "
              f"{encoded.cnf.num_clauses} clauses")
    else:
        sys.stdout.write(encoded.cnf.to_dimacs(comments=comments))
    return 0


def cmd_color(args) -> int:
    _apply_fault_options(args)
    graph = parse_col_file(args.col_file)
    problem = ColoringProblem(graph, args.colors)
    outcome = solve_coloring(problem, _strategy(args))
    if outcome.is_sat:
        print(f"SATISFIABLE: {args.colors}-coloring found")
        if args.show:
            for vertex in range(problem.num_vertices):
                print(f"  vertex {vertex + 1}: color {outcome.coloring[vertex]}")
        _print_outcome_report(outcome, show_stats=args.stats)
    elif outcome.status is SolveStatus.UNSAT:
        print(f"UNSATISFIABLE: no {args.colors}-coloring exists")
        _print_outcome_report(outcome, show_stats=args.stats)
    else:
        print(f"UNDECIDED ({outcome.status})")
        _print_stop_reason(outcome.solver_stats)
    # Uniform DIMACS convention (same as route/solve/portfolio):
    # 10 = SAT, 20 = UNSAT, 0 = undecided, 2 = error.
    return outcome.status.exit_code


def cmd_audit(args) -> int:
    _apply_fault_options(args)
    graph = parse_col_file(args.col_file)
    problem = ColoringProblem(graph, args.colors)
    outcome = solve_coloring(problem, _strategy(args), limits=_limits(args),
                             keep_model=True, proof_log=True)
    from .reliability.audit import (DEFAULT_CROSS_CHECK_CONFLICTS,
                                    audit_outcome)
    budget = (args.cross_check_conflicts
              if args.cross_check_conflicts is not None
              else DEFAULT_CROSS_CHECK_CONFLICTS)
    report = audit_outcome(problem, outcome,
                           cross_check=not args.no_cross_check,
                           cross_check_conflicts=budget)
    if outcome.status is SolveStatus.SAT:
        verdict = f"SATISFIABLE ({args.colors}-coloring found)"
    elif outcome.status is SolveStatus.UNSAT:
        verdict = f"UNSATISFIABLE (no {args.colors}-coloring exists)"
    else:
        verdict = f"UNDECIDED ({outcome.status})"
    print(f"{args.col_file} with K={args.colors}: {verdict}")
    _print_stop_reason(outcome.solver_stats)
    _print_outcome_report(outcome, show_stats=args.stats)
    print(report.summary())
    # A failed audit dominates the solver's own verdict.
    if report.failed:
        return 2
    return outcome.status.exit_code


def cmd_solve(args) -> int:
    _apply_fault_options(args)
    cnf = parse_dimacs_file(args.cnf_file)
    limits = _limits(args)
    overrides = limits.as_config_kwargs() if limits is not None else {}
    result = solve(cnf, preset(args.solver, seed=args.seed, **overrides))
    if result.status is SolveStatus.SAT:
        print("s SATISFIABLE")
        if args.show:
            lits = [v if result.model.value(v) else -v
                    for v in range(1, cnf.num_vars + 1)]
            print("v " + " ".join(map(str, lits)) + " 0")
    elif result.status is SolveStatus.UNSAT:
        print("s UNSATISFIABLE")
    else:
        print("s UNKNOWN")
        _print_stop_reason(result.stats)
    if args.stats:
        _print_solver_stats(result.stats)
    # DIMACS convention: 10 = SAT, 20 = UNSAT, 0 = unknown.
    return result.status.exit_code


def cmd_portfolio(args) -> int:
    _apply_fault_options(args)
    routing = _load_routing_arg(args.circuit, args.scale)
    csp = build_routing_csp(routing, args.width)
    strategies = list(PORTFOLIO_2 if args.members == 2 else PORTFOLIO_3)
    result = run_portfolio(csp.problem, strategies, timeout=args.timeout,
                           limits=_limits(args), audit=args.audit)
    name = routing.netlist.name
    if result.decided:
        routable = result.status is SolveStatus.SAT
        print(f"{name} @ W={args.width}: "
              f"{'ROUTABLE' if routable else 'UNROUTABLE (proven)'}")
        print(f"  winner: {result.winner.label} "
              f"after {result.wall_time:.3f}s "
              f"({result.num_strategies} strategies raced)")
        _print_outcome_report(result.outcome, show_stats=args.stats)
        if args.audit and result.winner.label in result.audits:
            print(f"  {result.audits[result.winner.label].summary()}")
    else:
        print(f"{name} @ W={args.width}: UNDECIDED ({result.status})")
        for label, status in sorted(result.member_status.items()):
            line = f"  {label}: {status}"
            if label in result.failures:
                line += f" ({result.failures[label]})"
            print(line)
    return result.status.exit_code


def cmd_dist(args) -> int:
    _apply_fault_options(args)
    routing = _load_routing_arg(args.circuit, args.scale)
    name = routing.netlist.name
    limits = _limits(args)
    if args.mode == "shards":
        from .bench.batch import BatchJob
        from .dist import run_sharded
        strategy = _strategy(args)
        jobs = [BatchJob(f"{name}@W{width}",
                         build_routing_csp(routing, width).problem,
                         strategy)
                for width in args.width]
        result = run_sharded(jobs, num_shards=args.shards,
                             max_workers=args.workers,
                             job_timeout=args.timeout, limits=limits)
        print(f"{name}: {len(result.results)} jobs over "
              f"{args.shards} shards, {result.steals} stolen, "
              f"{result.wall_time:.3f}s")
        for record in result.results:
            line = f"  {record.job.instance}: {record.status}"
            if record.attempts > 1:
                line += f" (attempt {record.attempts}, {record.engine})"
            print(line)
        for shard, stats in sorted(result.shards.items()):
            print(f"  {shard}: " + ", ".join(
                f"{key}={value}" for key, value in stats.items()))
        return 0 if result.complete else 1
    width = args.width[0]
    problem = build_routing_csp(routing, width).problem
    if args.mode == "portfolio":
        from .dist import run_cooperative
        result = run_cooperative(problem, _strategy(args),
                                 members=args.members,
                                 timeout=args.timeout, limits=limits)
        if result.decided:
            routable = result.status is SolveStatus.SAT
            print(f"{name} @ W={width}: "
                  f"{'ROUTABLE' if routable else 'UNROUTABLE (proven)'}")
            print(f"  winner: {result.winner.label} after "
                  f"{result.wall_time:.3f}s "
                  f"({result.num_strategies} cooperating members)")
            stats = result.outcome.solver_stats
            print(f"  shared: exported={stats.get('shared_exported', 0)} "
                  f"imported={stats.get('shared_imported', 0)} "
                  f"discarded={stats.get('shared_discarded', 0)}")
        else:
            print(f"{name} @ W={width}: UNDECIDED ({result.status})")
        return result.status.exit_code
    from .dist import run_cubed
    result = run_cubed(problem, _strategy(args), max_workers=args.workers,
                       limits=limits, timeout=args.timeout)
    plan = result.plan
    print(f"{name} @ W={width}: {result.status} in {result.wall_time:.3f}s")
    print(f"  cubes: {len(plan.cubes)} over vertices {list(plan.vertices)} "
          f"(depth {plan.depth}, {plan.pruned} pruned), "
          f"{result.cubes_closed} closed"
          + (f", winner cube {result.winner}"
             if result.winner is not None else ""))
    return result.status.exit_code


def cmd_fuzz(args) -> int:
    _apply_fault_options(args)
    from .qa import StrategyMatrix, run_fuzz
    try:
        matrix = StrategyMatrix.parse(args.matrix)
    except ValueError as error:
        print(f"error: bad --matrix: {error}", file=sys.stderr)
        return 2
    seeds = range(args.seed_base, args.seed_base + args.seeds)
    limits = SolveLimits(conflict_budget=args.conflict_budget,
                         wall_clock_limit=args.timeout)
    report = run_fuzz(seeds, matrix=matrix,
                      budget_seconds=args.budget_seconds,
                      shrink=not args.no_shrink,
                      metamorphic=not args.no_metamorphic,
                      include_routing=not args.no_routing,
                      out_dir=args.out, limits=limits,
                      progress=lambda message: print(message,
                                                     file=sys.stderr))
    print(report.summary())
    # Uniform scheme: 0 = campaign clean (nothing decided against the
    # code), 10 = at least one finding (a decided positive answer, with
    # bundles written under --out), 2 = usage errors above.
    return 0 if report.ok else SolveStatus.SAT.exit_code


def cmd_serve(args) -> int:
    import asyncio

    from .serve import AdmissionPolicy, SolveService
    _apply_fault_options(args)
    policy = AdmissionPolicy(
        max_queue_depth=args.max_queue_depth,
        max_inflight_per_client=args.max_inflight,
        max_vertices=args.max_vertices,
        job_limits=_limits(args))
    service = SolveService(host=args.host, port=args.port,
                           workers=args.workers,
                           cache_capacity=args.cache_capacity,
                           cache_dir=args.cache_dir,
                           policy=policy,
                           job_timeout=args.job_timeout,
                           journal_dir=args.journal_dir,
                           heartbeat_interval=args.heartbeat_interval,
                           watchdog=not args.no_watchdog,
                           drain_deadline=args.drain_deadline,
                           warm_start=not args.no_warm_start)

    async def _run() -> None:
        await service.start()
        disk = (f", disk cache {service.cache.disk_dir}"
                if service.cache.disk_dir else "")
        journal = (f", journal {service.journal_dir}"
                   if service.journal_dir else "")
        print(f"repro serve listening on {service.host}:{service.port} "
              f"({service.workers} workers, cache capacity "
              f"{service.cache.capacity}{disk}{journal})", flush=True)
        await service.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro serve: interrupted", file=sys.stderr)
    return 0


def _parse_server_address(text: str) -> tuple:
    host, separator, port = text.rpartition(":")
    if not separator or not port.isdigit():
        raise ValueError(f"server address must be HOST:PORT, got {text!r}")
    return host or "127.0.0.1", int(port)


def cmd_submit(args) -> int:
    from . import api
    from .serve.client import ServeClient, ServeError, ServeRejected
    from .serve.resilience import ResilientClient, RetryPolicy
    host, port = _parse_server_address(args.server)
    graph = parse_col_file(args.col_file)
    request = api.SolveRequest(graph=graph, colors=args.colors,
                               strategies=(_strategy(args),),
                               limits=_limits(args), client=args.client,
                               tag=args.col_file)
    if args.retries > 0:
        # Retrying is safe: submission is idempotent by content address
        # (a resubmitted duplicate coalesces or hits the cache).
        retry = RetryPolicy(max_attempts=args.retries + 1)
        factory = lambda: ResilientClient(host, port, retry=retry)
    else:
        factory = lambda: ServeClient(host, port)
    try:
        with factory() as client:
            response = client.solve(request, deadline=args.deadline)
            dump = client.metrics() if args.show_metrics else None
    except ServeRejected as error:
        print(f"rejected: {error}", file=sys.stderr)
        return 2
    except ServeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    origin = "cache hit" if response.cached else "solved"
    audit = f", audit {response.audit}" if response.audit else ""
    if response.status is SolveStatus.SAT:
        print(f"SATISFIABLE: {args.colors}-coloring found "
              f"({origin}{audit}, {response.winner})")
        if args.show and response.coloring:
            for vertex in sorted(response.coloring):
                print(f"  vertex {vertex + 1}: "
                      f"color {response.coloring[vertex]}")
    elif response.status is SolveStatus.UNSAT:
        print(f"UNSATISFIABLE: no {args.colors}-coloring exists "
              f"({origin}{audit}, {response.winner})")
    else:
        print(f"UNDECIDED ({response.status}): {response.report.detail}")
    print(f"  digest {response.digest[:16]}…  "
          f"solve {response.report.wall_time:.3f}s")
    if dump is not None:
        from .obs.report import render_metrics
        print(f"server cache: {dump.get('cache')}")
        print(render_metrics(dump.get("metrics")))
    return response.exit_code


def cmd_trace(args) -> int:
    from .obs.report import parse_trace_file, render_trace
    records = parse_trace_file(args.trace_file)
    print(render_trace(records, show_events=not args.no_events,
                       max_events=args.max_events))
    return 0


def cmd_metrics(args) -> int:
    from .obs import metrics as obs_metrics
    from .obs.report import (metrics_snapshots, parse_trace_file,
                             render_metrics)
    if args.trace_file:
        snapshots = metrics_snapshots(parse_trace_file(args.trace_file))
        if not snapshots:
            print(f"no metrics snapshots in {args.trace_file}",
                  file=sys.stderr)
            return 1
        for snapshot in snapshots:
            print(render_metrics(snapshot))
        return 0
    print(render_metrics(obs_metrics.registry().snapshot()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SAT-based FPGA detailed routing "
                    "(Velev & Gao, DATE 2008 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("benchmarks", help="list benchmark circuit profiles")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=cmd_benchmarks)

    p = sub.add_parser("encodings",
                       help="list every registered CSP-to-SAT encoding")
    p.add_argument("--colors", type=int, default=7,
                   help="domain size K for the per-vertex size columns "
                        "(default 7)")
    p.set_defaults(func=cmd_encodings)

    p = sub.add_parser("generate", help="emit a placed netlist as JSON")
    p.add_argument("circuit", help="benchmark name")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--out", help="output path (default: stdout)")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("width", help="minimum channel width by SAT search")
    p.add_argument("circuit", help="benchmark name or netlist JSON path")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--incremental", action="store_true",
                   help="reuse one solver across widths (assumptions)")
    _add_strategy_options(p)
    _add_budget_options(p)
    _add_obs_options(p)
    p.set_defaults(func=cmd_width)

    p = sub.add_parser("route", help="detailed-route at a fixed width")
    p.add_argument("circuit", help="benchmark name or netlist JSON path")
    p.add_argument("--width", type=int, required=True)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--tracks-out", help="write the track assignment JSON here")
    p.add_argument("--certify", action="store_true",
                   help="on UNSAT, emit and verify a DRUP certificate")
    p.add_argument("--stats", action="store_true",
                   help="print solver performance counters")
    _add_strategy_options(p)
    _add_budget_options(p)
    _add_fault_options(p)
    _add_obs_options(p)
    p.set_defaults(func=cmd_route)

    p = sub.add_parser("portfolio",
                       help="race the paper's strategy portfolio on one "
                            "routing instance; first decided answer wins")
    p.add_argument("circuit", help="benchmark name or netlist JSON path")
    p.add_argument("--width", type=int, required=True)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--members", type=int, default=3, choices=[2, 3],
                   help="portfolio size: the paper's 2- or 3-member set")
    p.add_argument("--stats", action="store_true",
                   help="print the winner's solver counters")
    p.add_argument("--audit", action="store_true",
                   help="independently re-check candidate winners; an "
                        "answer that fails its audit cannot win")
    _add_budget_options(p)
    _add_fault_options(p)
    _add_obs_options(p)
    p.set_defaults(func=cmd_portfolio)

    p = sub.add_parser("extract",
                       help="stage 1: routing problem -> DIMACS .col")
    p.add_argument("circuit", help="benchmark name or netlist JSON path")
    p.add_argument("--width", type=int, required=True)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--out", required=True, help=".col output path")
    p.set_defaults(func=cmd_extract)

    p = sub.add_parser("encode", help="stage 2: DIMACS .col -> DIMACS CNF")
    p.add_argument("col_file")
    p.add_argument("--colors", type=int, required=True)
    p.add_argument("--out", help="output path (default: stdout)")
    _add_strategy_options(p)
    p.set_defaults(func=cmd_encode)

    p = sub.add_parser("color", help="solve a DIMACS .col coloring problem")
    p.add_argument("col_file")
    p.add_argument("--colors", type=int, required=True)
    p.add_argument("--show", action="store_true",
                   help="print the coloring on success")
    p.add_argument("--stats", action="store_true",
                   help="print solver performance counters")
    _add_strategy_options(p)
    _add_fault_options(p)
    _add_obs_options(p)
    p.set_defaults(func=cmd_color)

    p = sub.add_parser("audit",
                       help="solve a .col instance, then independently "
                            "re-check the answer (model check, RUP proof "
                            "replay, or cross-engine spot-check)")
    p.add_argument("col_file")
    p.add_argument("--colors", type=int, required=True)
    p.add_argument("--no-cross-check", action="store_true",
                   help="skip the cross-engine spot-check of an UNSAT "
                        "answer that has no recorded proof")
    p.add_argument("--cross-check-conflicts", type=int, metavar="N",
                   help="conflict budget of the cross-engine spot-check")
    p.add_argument("--stats", action="store_true",
                   help="print solver performance counters")
    _add_strategy_options(p)
    _add_budget_options(p)
    _add_fault_options(p)
    _add_obs_options(p)
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("solve", help="run the CDCL solver on a DIMACS CNF")
    p.add_argument("cnf_file")
    p.add_argument("--show", action="store_true",
                   help="print the model on success")
    p.add_argument("--stats", action="store_true",
                   help="print solver performance counters")
    p.add_argument("--solver", default="siege_like",
                   choices=["siege_like", "minisat_like"])
    p.add_argument("--seed", type=int, default=0)
    _add_budget_options(p)
    _add_fault_options(p)
    _add_obs_options(p)
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("dist",
                       help="distributed solving on one routing "
                            "benchmark: work-stealing shards, a "
                            "clause-sharing portfolio, or "
                            "cube-and-conquer (see docs/distributed.md)")
    p.add_argument("circuit", help="benchmark name or netlist JSON path")
    p.add_argument("--width", type=int, nargs="+", required=True,
                   help="channel width(s); shards mode solves one job "
                        "per width, the other modes use the first")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--mode", default="shards",
                   choices=["shards", "portfolio", "cubes"],
                   help="parallelism mode (default shards)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes (default 2)")
    p.add_argument("--shards", type=int, default=2,
                   help="shard queues in shards mode (default 2)")
    p.add_argument("--members", type=int, default=2,
                   help="cooperating members in portfolio mode "
                        "(default 2)")
    _add_strategy_options(p)
    _add_budget_options(p)
    _add_fault_options(p)
    _add_obs_options(p)
    p.set_defaults(func=cmd_dist)

    p = sub.add_parser("fuzz",
                       help="differential fuzzing: race seeded instances "
                            "through an encoding x symmetry x engine "
                            "matrix, cross-check every answer, shrink "
                            "and bundle any disagreement")
    p.add_argument("--seeds", type=int, default=5, metavar="N",
                   help="number of generator seeds to fuzz (default 5)")
    p.add_argument("--seed-base", type=int, default=1, metavar="N",
                   help="first generator seed (nightly CI rotates this; "
                        "default 1)")
    p.add_argument("--budget-seconds", type=float, metavar="SECONDS",
                   help="stop the campaign after this much wall time "
                        "(instances are never cut mid-matrix)")
    p.add_argument("--matrix", default="full",
                   help="strategy matrix: 'full', 'quick', 'engines', or "
                        "'encodings=...;symmetry=...;engine=...' "
                        "(default full)")
    p.add_argument("--out", metavar="DIR",
                   help="write minimized reproducer bundles under DIR")
    p.add_argument("--no-shrink", action="store_true",
                   help="report failures without ddmin minimization")
    p.add_argument("--no-metamorphic", action="store_true",
                   help="skip the metamorphic oracles")
    p.add_argument("--no-routing", action="store_true",
                   help="skip the FPGA routing-derived instances")
    p.add_argument("--timeout", type=float, metavar="SECONDS",
                   default=10.0,
                   help="per-solve wall-clock limit (default 10)")
    p.add_argument("--conflict-budget", type=int, metavar="N",
                   default=50_000,
                   help="per-solve conflict budget (default 50000)")
    _add_fault_options(p)
    _add_obs_options(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("serve",
                       help="run the long-lived solve service: JSON-lines "
                            "TCP over a worker pool, with a "
                            "content-addressed audit-verified result "
                            "cache (see docs/serving.md)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=7227,
                   help="bind port; 0 picks a free one (default 7227)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker processes (default: cores - 1)")
    p.add_argument("--cache-capacity", type=int, default=256, metavar="N",
                   help="in-memory LRU entries (default 256)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="persistent on-disk result store (atomic "
                        "per-digest JSON files; survives restarts)")
    p.add_argument("--job-timeout", type=float, metavar="SECONDS",
                   help="server-side wall-clock bound merged into every "
                        "job's budget")
    p.add_argument("--max-queue-depth", type=int, default=64, metavar="N",
                   help="reject new jobs past this many in flight "
                        "(default 64)")
    p.add_argument("--max-inflight", type=int, default=8, metavar="N",
                   help="per-client concurrent-job cap (default 8)")
    p.add_argument("--max-vertices", type=int, default=100_000, metavar="N",
                   help="reject instances larger than this (default "
                        "100000)")
    p.add_argument("--journal-dir", metavar="DIR",
                   help="durable write-ahead request journal; a crashed "
                        "server replays unfinished admitted requests "
                        "from here on the next boot")
    p.add_argument("--drain-deadline", type=float, default=10.0,
                   metavar="SECONDS",
                   help="how long a SIGTERM/shutdown drain waits for "
                        "in-flight jobs before abandoning them to the "
                        "journal (default 10)")
    p.add_argument("--heartbeat-interval", type=float, default=0.5,
                   metavar="SECONDS",
                   help="worker heartbeat period for the watchdog "
                        "(default 0.5)")
    p.add_argument("--no-watchdog", action="store_true",
                   help="disable the worker watchdog (hung jobs are "
                        "then bounded only by their own budgets)")
    p.add_argument("--no-warm-start", action="store_true",
                   help="skip promoting recent disk-cache entries into "
                        "memory at boot")
    _add_budget_options(p)
    _add_fault_options(p)
    _add_obs_options(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit",
                       help="submit a .col coloring job to a running "
                            "`repro serve` instance")
    p.add_argument("server", help="server address as HOST:PORT")
    p.add_argument("col_file")
    p.add_argument("--colors", type=int, required=True)
    p.add_argument("--client", default="cli",
                   help="client name for admission control and "
                        "per-client budgets (default cli)")
    p.add_argument("--show", action="store_true",
                   help="print the coloring on success")
    p.add_argument("--show-metrics", action="store_true",
                   help="also fetch and print the server's metrics dump")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry transient transport failures up to N "
                        "times with jittered exponential backoff (safe: "
                        "submission is idempotent by content address; "
                        "default 0 = single attempt)")
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="per-request deadline bounding this "
                        "submission's socket waits (default: the "
                        "client-wide timeout)")
    _add_strategy_options(p)
    _add_budget_options(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("trace",
                       help="render a recorded trace file (from --trace "
                            "or $REPRO_TRACE) as a span tree with the "
                            "critical path marked")
    p.add_argument("trace_file", help="JSONL trace file")
    p.add_argument("--no-events", action="store_true",
                   help="hide span events (show timings only)")
    p.add_argument("--max-events", type=int, default=8, metavar="N",
                   help="events shown per span before eliding (default 8)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("metrics",
                       help="render the metrics snapshots embedded in a "
                            "trace file (or the live registry)")
    p.add_argument("trace_file", nargs="?",
                   help="JSONL trace file (default: this process's "
                        "registry)")
    p.set_defaults(func=cmd_metrics)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _apply_obs_options(args)
    try:
        return args.func(args)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        _flush_obs()


if __name__ == "__main__":
    sys.exit(main())
