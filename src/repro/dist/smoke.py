"""End-to-end smoke check for distributed solving (CI's ``dist-smoke``).

Run with ``python -m repro.dist.smoke`` (or ``make dist-smoke``).  Three
asserted scenarios, all with deterministic fault seeds:

1. **Shard crash, zero lost jobs** — a tiny corpus over 2 shards with an
   injected ``crash@dist_shard`` killing every first (arena) attempt;
   the scheduler must requeue each job to its home shard, fall back to
   the legacy engine, and settle every job with the correct verdict.
2. **Cooperative sharing under corruption** — a 2-member clause-sharing
   portfolio with ``corrupt_share`` mangling clauses in transit; the
   import filter must reject them and the verdict must stand.
3. **Cube-and-conquer with a crashing worker** — a parallel cubed run
   where the workers die; every cube must still be closed (parent
   re-solve) and the UNSAT verdict must aggregate from all cubes.
"""

from __future__ import annotations

import sys

from ..core.strategy import Strategy
from ..qa.generators import conflict_instances
from ..reliability.faults import FaultPlan
from ..reliability.quarantine import QuarantinePolicy
from ..sat.status import SolveStatus
from . import BatchJob, run_cooperative, run_cubed, run_sharded

STRATEGY = Strategy(encoding="muldirect", symmetry="s1")

#: Small but non-trivial planted-clique UNSAT instances (sub-second
#: each; the point is the machinery, not the solving).
def _corpus(count: int = 4):
    return [
        (inst.name, inst.problem)
        for inst in conflict_instances(7, count, num_vertices=24,
                                       edge_probability=0.4, clique_size=5)
    ]


def _check(label: str, condition: bool, detail: str = "") -> None:
    if not condition:
        print(f"dist-smoke FAILED: {label} {detail}", file=sys.stderr)
        sys.exit(1)
    print(f"  {label}: OK {detail}")


def main() -> int:
    print("dist-smoke: shard crash recovery")
    jobs = [BatchJob(name, problem, STRATEGY)
            for name, problem in _corpus()]
    # Every arena attempt at the dist_shard site crashes; the legacy
    # fallback label escapes the match, so attempt 2 must succeed.
    result = run_sharded(
        jobs, num_shards=2, workers_per_shard=1,
        quarantine=QuarantinePolicy(threshold=5, base_backoff=0.05,
                                    max_backoff=0.2),
        faults=FaultPlan.parse("seed=3; crash@dist_shard:match=*/s1"))
    _check("all jobs settled",
           len(result.results) == len(jobs) and not result.pending,
           f"({len(result.results)}/{len(jobs)}, "
           f"pending {len(result.pending)})")
    _check("zero lost jobs: every verdict correct",
           all(r.status is SolveStatus.UNSAT for r in result.results),
           str({str(k): v for k, v in result.status_counts().items()}))
    requeued = sum(s["requeued"] for s in result.shards.values())
    _check("crashes were requeued", requeued >= len(jobs),
           f"({requeued} requeues)")
    _check("retries fell back to the legacy engine",
           all(r.attempts == 2 and r.engine == "legacy"
               for r in result.results))

    print("dist-smoke: clause sharing under corrupt_share")
    name, problem = _corpus(1)[0]
    coop = run_cooperative(
        problem, STRATEGY, members=2, timeout=60,
        faults=FaultPlan.parse("seed=5; corrupt_share"))
    _check("cooperative verdict stands despite corruption",
           coop.status is SolveStatus.UNSAT, f"on {name}")

    print("dist-smoke: cube-and-conquer with crashing workers")
    cubed = run_cubed(problem, STRATEGY, max_workers=2, timeout=120,
                      faults=FaultPlan.parse("seed=5; crash@dist_shard"))
    _check("every cube closed after worker crashes",
           cubed.cubes_closed == len(cubed.plan.cubes),
           f"({cubed.cubes_closed}/{len(cubed.plan.cubes)})")
    _check("UNSAT aggregated from all cubes",
           cubed.status is SolveStatus.UNSAT)

    print("dist-smoke: all scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
