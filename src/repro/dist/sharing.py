"""Clause-sharing channels for cooperative portfolios and cube workers.

First-to-finish racing (:mod:`repro.core.portfolio`) throws away every
loser's conflict analysis; on the paper's hard UNSAT configurations that
is most of the work done.  This module is the transport that lets
cooperating solvers keep it: each member *exports* its short, low-LBD
learned clauses (the export hook lives in
:meth:`repro.sat.solver.cdcl.CDCLSolver._share_export`) and *imports*
peers' clauses at restart boundaries, after an import filter has
rejected everything malformed, duplicated or over-budget.

Design constraints, in order:

1. **Soundness.**  Shared clauses are 1UIP consequences of the common
   formula, so importing them is sound — *if* the payload arrives
   intact.  The transport is a process boundary, so the import side
   trusts nothing: :class:`ClauseImportFilter` structurally validates
   every payload (literal types, variable range, tautologies, caps) and
   the solver re-checks variable ranges and BVE-eliminated variables
   before attaching.  The ``corrupt_share`` chaos fault proves the
   filter path.
2. **Determinism.**  A solver's trajectory is a function of its inputs.
   With sharing *disabled* nothing here is even imported and runs are
   bit-identical to pre-sharing builds (pinned by the trajectory
   fixtures).  With sharing *enabled* the trajectory additionally
   depends on arrival order — inherently racy across processes — but
   every import passes the same deterministic filter, and the
   in-process :class:`LoopbackChannel` gives tests a fully
   deterministic end-to-end path.
3. **Bounded memory.**  Queues are bounded (``queue_capacity``); an
   exporter that finds the outbox full simply drops the clause (sharing
   is an optimisation, never a dependency), and importers take at most
   ``import_budget`` clauses per restart so a noisy peer cannot flood a
   member's clause database.

Topology: one :class:`ClauseHub` per cooperative run, living in the
parent.  Members push exports into a single shared *outbox* queue; the
parent's poll loop calls :meth:`ClauseHub.pump`, which fans each clause
out to every member's *inbox* except the origin's.  Endpoints are
picklable-by-fork (they hold only queues and plain config), so the
portfolio/cube workers receive them as process arguments.
"""

from __future__ import annotations

import queue
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import metrics as obs_metrics

__all__ = [
    "ShareConfig",
    "ClauseImportFilter",
    "ClauseEndpoint",
    "ClauseHub",
    "LoopbackChannel",
]

_METRIC_PREFIX = "dist.share."


def _count(name: str, amount: int = 1) -> None:
    if amount and obs_metrics.enabled():
        obs_metrics.registry().inc(_METRIC_PREFIX + name, amount)


@dataclass(frozen=True)
class ShareConfig:
    """Tuning knobs for one sharing channel (see docs/distributed.md).

    The defaults follow the standard portfolio-solver wisdom: only very
    short, low-LBD clauses are worth a process hop — they prune the most
    and cost the least to re-check — and imports are rationed per
    restart so sharing can help but never dominate a member's own
    search.
    """

    #: Longest clause a member will export (and an importer will accept).
    export_max_length: int = 8
    #: Highest conflict-time LBD a member will export (units always go).
    export_max_lbd: int = 4
    #: Most clauses a member imports per restart boundary.
    import_budget: int = 64
    #: Bound on each transport queue; a full outbox drops the export.
    queue_capacity: int = 4096

    def __post_init__(self) -> None:
        for field in ("export_max_length", "export_max_lbd",
                      "import_budget", "queue_capacity"):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be positive")


class ClauseImportFilter:
    """The deterministic gatekeeper between the wire and a solver.

    Accepts raw payloads of shape ``(origin, lits, lbd)`` and returns a
    cleaned ``(lits, lbd)`` pair or None.  Rejection reasons:

    * structurally malformed: wrong shape, non-int / zero literals
      (the ``corrupt_share`` fault produces exactly these), empty or
      over-long clauses, non-positive LBD;
    * out-of-range variables (when ``num_vars`` is known);
    * tautologies (``x`` and ``-x`` in one clause — duplicate literals
      are merely deduplicated);
    * over the ``export_max_lbd`` cap (a well-behaved peer never sends
      these, but the filter does not trust peers to be well-behaved);
    * already seen: dedup by the sorted literal tuple, so the same
      clause arriving from two peers — or twice from one — is attached
      at most once per receiving solver.
    """

    def __init__(self, num_vars: Optional[int],
                 config: Optional[ShareConfig] = None) -> None:
        self.num_vars = num_vars
        self.config = config or ShareConfig()
        self._seen: set = set()
        self.admitted = 0
        self.rejected = 0

    def admit(self, payload: object) -> Optional[Tuple[Tuple[int, ...], int]]:
        """The cleaned ``(lits, lbd)`` for a raw payload, or None."""
        cleaned = self._clean(payload)
        if cleaned is None:
            self.rejected += 1
        else:
            self.admitted += 1
        return cleaned

    def _clean(self, payload: object) -> Optional[Tuple[Tuple[int, ...], int]]:
        if not isinstance(payload, tuple) or len(payload) != 3:
            return None
        _origin, lits, lbd = payload
        if type(lbd) is not int or lbd < 1:
            return None
        if not isinstance(lits, (tuple, list)) or not lits:
            return None
        if len(lits) > self.config.export_max_length:
            return None
        signs: Dict[int, int] = {}
        clean: List[int] = []
        for lit in lits:
            if type(lit) is not int or lit == 0:
                return None
            var = abs(lit)
            if self.num_vars is not None and var > self.num_vars:
                return None
            prior = signs.get(var)
            if prior is None:
                signs[var] = lit
                clean.append(lit)
            elif prior != lit:
                return None  # tautology: x and -x
        if len(clean) > 1 and lbd > self.config.export_max_lbd:
            return None
        key = tuple(sorted(clean))
        if key in self._seen:
            return None
        self._seen.add(key)
        return tuple(clean), min(lbd, len(clean)) if len(clean) > 1 else 1


class ClauseEndpoint:
    """One member's handle on a :class:`ClauseHub`.

    This is the object that travels into the worker process and lands in
    ``SolverConfig.clause_channel``; it speaks the solver-side channel
    protocol — ``export_max_length`` / ``export_max_lbd`` attributes
    plus ``export(lits, lbd)`` and ``take()``.  The import filter lives
    here, on the receiving side of the process boundary, so a corrupted
    payload is rejected before the solver ever sees it.
    """

    def __init__(self, member: str, outbox, inbox,
                 num_vars: Optional[int],
                 config: Optional[ShareConfig] = None) -> None:
        self.member = member
        self.config = config or ShareConfig()
        self._outbox = outbox
        self._inbox = inbox
        self._filter = ClauseImportFilter(num_vars, self.config)
        self._injector = None

    # -- solver-side protocol ------------------------------------------

    @property
    def export_max_length(self) -> int:
        return self.config.export_max_length

    @property
    def export_max_lbd(self) -> int:
        return self.config.export_max_lbd

    def export(self, lits: Sequence[int], lbd: int) -> bool:
        """Offer one learned clause to the channel.

        True when the clause was handed to the transport (the solver
        counts it as exported); False when the outbox was full and the
        clause dropped — never an error, sharing is best-effort.
        """
        payload = (self.member, tuple(lits), lbd)
        injector = self._injector
        if injector is not None:
            if injector.maybe_drop_share():
                # Lost in transit: the exporter cannot tell.
                _count("exported")
                return True
            corrupted = injector.corrupt_share(payload[1])
            if corrupted is not None:
                payload = (self.member, corrupted, lbd)
        try:
            self._outbox.put_nowait(payload)
        except queue.Full:
            return False
        _count("exported")
        return True

    def take(self) -> List[Tuple[Tuple[int, ...], int]]:
        """Up to ``import_budget`` filtered peer clauses (non-blocking)."""
        out: List[Tuple[Tuple[int, ...], int]] = []
        discarded = 0
        budget = self.config.import_budget
        while len(out) < budget:
            try:
                payload = self._inbox.get_nowait()
            except queue.Empty:
                break
            clause = self._filter.admit(payload)
            if clause is None:
                discarded += 1
            else:
                out.append(clause)
        _count("imported", len(out))
        _count("discarded", discarded)
        return out

    # -- chaos ---------------------------------------------------------

    def bind_faults(self, faults, label: Optional[str] = None) -> None:
        """Activate ``drop_share`` / ``corrupt_share`` faults on this
        endpoint (site ``clause_channel``).  ``faults`` follows the
        :meth:`repro.reliability.faults.FaultPlan.resolve` convention.
        """
        from ..reliability.faults import FaultInjector, FaultPlan
        plan = FaultPlan.resolve(faults)
        if plan is None:
            return
        plan = plan.narrow(label if label is not None else self.member)
        if plan.empty:
            return
        self._injector = FaultInjector(
            plan, label=label if label is not None else self.member,
            sites=("clause_channel",))


class ClauseHub:
    """The parent-side fan-out hub of one cooperative run.

    Members share a single bounded *outbox*; the parent's poll loop
    calls :meth:`pump` to move clauses from the outbox into every other
    member's bounded *inbox*.  A full inbox drops the clause for that
    member only — a stuck member cannot stall its peers.
    """

    def __init__(self, members: Sequence[str],
                 num_vars: Optional[int] = None,
                 config: Optional[ShareConfig] = None,
                 context=None) -> None:
        if len(set(members)) != len(members):
            raise ValueError("clause hub members must be distinct")
        self.members = tuple(members)
        self.config = config or ShareConfig()
        if context is None:
            import multiprocessing as mp
            context = mp.get_context(
                "fork" if "fork" in mp.get_all_start_methods() else "spawn")
        self._num_vars = num_vars
        self._outbox = context.Queue(self.config.queue_capacity)
        self._inboxes = {member: context.Queue(self.config.queue_capacity)
                         for member in self.members}
        #: Clauses moved by pump(), for diagnostics and tests.
        self.pumped = 0

    def endpoint(self, member: str) -> ClauseEndpoint:
        """The endpoint to hand to ``member``'s worker process."""
        return ClauseEndpoint(member, self._outbox, self._inboxes[member],
                              self._num_vars, self.config)

    def pump(self, limit: int = 512) -> int:
        """Fan up to ``limit`` exported clauses out to peer inboxes."""
        moved = 0
        while moved < limit:
            try:
                payload = self._outbox.get_nowait()
            except queue.Empty:
                break
            origin = payload[0] if isinstance(payload, tuple) and payload \
                else None
            for member, inbox in self._inboxes.items():
                if member == origin:
                    continue
                try:
                    inbox.put_nowait(payload)
                except queue.Full:
                    pass  # that member is behind; drop for it only
            moved += 1
        self.pumped += moved
        return moved

    def close(self) -> None:
        """Release the transport queues (call after workers have been
        joined; pending clauses are discarded)."""
        for q in (self._outbox, *self._inboxes.values()):
            try:
                q.close()
                q.cancel_join_thread()
            except (AttributeError, OSError):
                pass


class LoopbackChannel:
    """In-process channel double: deterministic, no multiprocessing.

    Tests (and single-process cube runs) use it to drive the solver's
    export/import hooks end to end: preload peer clauses with
    :meth:`feed`, then inspect ``exported`` after the solve.  It runs
    the same :class:`ClauseImportFilter` as the real endpoint, so filter
    behaviour is covered by the same path.
    """

    def __init__(self, num_vars: Optional[int] = None,
                 config: Optional[ShareConfig] = None) -> None:
        self.config = config or ShareConfig()
        self._filter = ClauseImportFilter(num_vars, self.config)
        self._pending: Deque[Tuple[str, Tuple[int, ...], int]] = deque()
        #: Every clause the attached solver exported, as (lits, lbd).
        self.exported: List[Tuple[Tuple[int, ...], int]] = []

    @property
    def export_max_length(self) -> int:
        return self.config.export_max_length

    @property
    def export_max_lbd(self) -> int:
        return self.config.export_max_lbd

    def feed(self, lits: Iterable[int], lbd: int = 1,
             origin: str = "peer") -> None:
        """Queue a peer clause for the next restart-time import."""
        self._pending.append((origin, tuple(lits), lbd))

    def feed_raw(self, payload: object) -> None:
        """Queue an arbitrary (possibly malformed) payload."""
        self._pending.append(payload)  # type: ignore[arg-type]

    def export(self, lits: Sequence[int], lbd: int) -> bool:
        self.exported.append((tuple(lits), lbd))
        _count("exported")
        return True

    def take(self) -> List[Tuple[Tuple[int, ...], int]]:
        out: List[Tuple[Tuple[int, ...], int]] = []
        discarded = 0
        while self._pending and len(out) < self.config.import_budget:
            clause = self._filter.admit(self._pending.popleft())
            if clause is None:
                discarded += 1
            else:
                out.append(clause)
        _count("imported", len(out))
        _count("discarded", discarded)
        return out

    @property
    def rejected(self) -> int:
        """Payloads the import filter refused (test hook)."""
        return self._filter.rejected
