"""Cube-and-conquer splitting on high-degree vertices.

The third parallelism mode of :mod:`repro.dist`: split a single hard
instance into *cubes* — partial color assignments to a few
high-degree vertices — and solve each cube as an assumption query
against a persistent solver (:class:`repro.core.incremental
.AssumptionJobSolver`).  On SAT the siblings are cancelled early; on
UNSAT the cube refutations compose into the instance's refutation.

Two facts shape the design:

* **Cube trees must respect color symmetry.**  Naively branching a
  K-colorable instance on one vertex × K colors re-refutes the same
  search space K times under color renaming — measured on the
  conflict-heavy bench suite this makes cubing *2.7–5× slower* than a
  monolithic solve.  So cubes compose with the strategy's symmetry
  breaking: under s1/b1/c1 the cube vertices are the highest-degree
  vertices *after* the K-1 sequence vertices (whose colors the CNF
  already restricts), and with ``symmetry="none"`` the cube tree
  itself applies Van Gelder's argument — the i-th cube vertex only
  branches over colors ``0..i`` (any coloring can be renamed into that
  normal form, so coverage is preserved).
* **The win is work reduction, not core count.**  A refuted cube's
  learned clauses stay in the worker's persistent solver and prune
  every later cube it draws; measured on the hard-UNSAT suite this
  cuts total conflicts ~2–3× even on one core.  Parallel workers then
  scale that shortened work across cores.

Cube *generation* is a pure function of (graph, K, symmetry, fan-out
target) — no RNG — so the same instance always yields the same cube
tree, which the determinism tests pin.
"""

from __future__ import annotations

import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..coloring.problem import ColoringProblem
from ..core.encodings.registry import get_encoding
from ..core.incremental import AssumptionJobSolver
from ..core.portfolio import _worker_injector
from ..core.strategy import Strategy
from ..core.symmetry.clauses import apply_symmetry
from ..core.symmetry.heuristics import _sort_key, get_heuristic
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..sat.status import CancelToken, SolveLimits, SolveStatus

__all__ = ["Cube", "CubePlan", "CubeResult", "cube_tree", "generate_cubes",
           "run_cubed"]

#: Poll cadence of the parent loop, matching the portfolio racer.
_POLL_SECONDS = 0.05
_CANCEL_GRACE_SECONDS = 2.0


def _count(name: str, amount: int = 1) -> None:
    if amount and obs_metrics.enabled():
        obs_metrics.registry().inc(f"dist.cube.{name}", amount)


@dataclass(frozen=True)
class Cube:
    """One branch of the cube tree: a partial color assignment."""

    index: int
    #: ``(vertex, color)`` pairs, in branching order.
    assignment: Tuple[Tuple[int, int], ...]

    def label(self) -> str:
        return "cube" + "".join(f"[{v}={c}]" for v, c in self.assignment)


@dataclass(frozen=True)
class CubePlan:
    """The full cube tree for one instance (deterministic)."""

    #: Vertices branched on, in order (highest degree first).
    vertices: Tuple[int, ...]
    cubes: Tuple[Cube, ...]
    #: Branches dropped because two adjacent cube vertices shared a
    #: color (they can never extend to a proper coloring).
    pruned: int
    depth: int


def cube_tree(problem: ColoringProblem, symmetry: str, *,
              min_cubes: int = 2, max_depth: int = 4) -> CubePlan:
    """The cube tree for ``problem`` under a symmetry heuristic.

    Deepens one vertex at a time — always the next highest-degree
    candidate — until at least ``min_cubes`` live branches exist (or
    ``max_depth`` / the vertex supply stops it).  Pure and
    deterministic: same problem, same symmetry, same targets → same
    tree.
    """
    graph = problem.graph
    num_colors = problem.num_colors
    sequence = get_heuristic(symmetry)(graph, num_colors)
    in_sequence = set(sequence)
    order = sorted(range(graph.num_vertices), key=_sort_key(graph))
    candidates = [v for v in order if v not in in_sequence]
    symmetric = not sequence  # no CNF-side breaking: cap colors ourselves

    cubes: List[Tuple[Tuple[int, int], ...]] = [()]
    pruned = 0
    depth = 0
    while len(cubes) < min_cubes and depth < max_depth \
            and depth < len(candidates):
        vertex = candidates[depth]
        # Under symmetry="none" the i-th cube vertex only branches over
        # colors 0..i (Van Gelder's renaming argument — sound because
        # the CNF carries no color-breaking of its own to clash with).
        colors = range(min(num_colors, depth + 1) if symmetric
                       else num_colors)
        neighbors = set(graph.neighbors(vertex))
        grown: List[Tuple[Tuple[int, int], ...]] = []
        for prefix in cubes:
            taken = {color for v, color in prefix if v in neighbors}
            for color in colors:
                if color in taken:
                    pruned += 1  # adjacent cube vertices, equal color
                    continue
                grown.append(prefix + ((vertex, color),))
        cubes = grown
        depth += 1
    return CubePlan(
        vertices=tuple(candidates[:depth]),
        cubes=tuple(Cube(index=i, assignment=assignment)
                    for i, assignment in enumerate(cubes)),
        pruned=pruned, depth=depth)


def cube_assumptions(encoded, cube: Cube) -> Tuple[int, ...]:
    """The cube as solver assumptions, for any registry encoding.

    ``EncodedProblem.global_pattern(v, c)`` is the conjunction of
    literals selecting color ``c`` at vertex ``v`` under the instance's
    encoding, which is exactly an assumption list — no selector
    variables, no CNF modification, so the cube workers can share one
    encoded formula.
    """
    lits: List[int] = []
    for vertex, color in cube.assignment:
        lits.extend(encoded.global_pattern(vertex, color))
    return tuple(lits)


def generate_cubes(encoded, strategy: Strategy, *, min_cubes: int = 2,
                   max_depth: int = 4):
    """``(plan, [assumptions per cube])`` for an already-encoded problem."""
    plan = cube_tree(encoded.problem, strategy.symmetry,
                     min_cubes=min_cubes, max_depth=max_depth)
    return plan, [cube_assumptions(encoded, cube) for cube in plan.cubes]


@dataclass
class CubeResult:
    """Outcome of one cube-and-conquer run."""

    status: SolveStatus
    coloring: Optional[Dict[int, int]]
    wall_time: float
    plan: CubePlan
    #: Cube index that decided the run (SAT winner), or None.
    winner: Optional[int]
    #: Per-cube verdicts, by cube index (missing = never solved, e.g.
    #: siblings cancelled after a SAT winner).
    cube_status: Dict[int, SolveStatus] = field(default_factory=dict)
    failures: Dict[int, str] = field(default_factory=dict)

    @property
    def decided(self) -> bool:
        return self.status.decided

    @property
    def cubes_closed(self) -> int:
        return sum(1 for s in self.cube_status.values() if s.decided)


def run_cubed(problem: ColoringProblem, strategy: Strategy, *,
              max_workers: int = 1, min_cubes: Optional[int] = None,
              max_depth: int = 4, limits: Optional[SolveLimits] = None,
              timeout: Optional[float] = None, faults=None,
              share=None, cancel=None) -> CubeResult:
    """Solve one instance by cube-and-conquer.

    ``max_workers`` processes draw cubes from a shared queue (one
    persistent :class:`AssumptionJobSolver` each, so refutations
    accumulate within a worker); ``min_cubes`` defaults to
    ``2 * max_workers`` so every worker has a second cube to steal the
    moment its first closes.  With one worker (or a single-cube tree)
    everything runs in-process — same plan, same order, no fork — which
    is also the deterministic path the tests pin.  On a SAT cube the
    siblings are cancelled early; cubes lost to a crashed worker are
    re-solved in the parent, so no cube is ever silently dropped.
    ``share`` (True or a :class:`~repro.dist.sharing.ShareConfig`)
    connects the workers in a clause-sharing hub, exactly as in the
    cooperative portfolio.
    """
    if max_workers < 1:
        raise ValueError("max_workers must be positive")
    start = time.perf_counter()
    if min_cubes is None:
        min_cubes = max(2, 2 * max_workers)
    with trace.span("dist.cubes", strategy=strategy.label,
                    workers=max_workers) as span:
        encoded = get_encoding(strategy.encoding).encode(problem)
        apply_symmetry(encoded, strategy.symmetry)
        plan, assumptions = generate_cubes(encoded, strategy,
                                           min_cubes=min_cubes,
                                           max_depth=max_depth)
        span.set("cubes", len(plan.cubes))
        span.set("depth", plan.depth)
        span.set("pruned", plan.pruned)
        _count("opened", len(plan.cubes))
        _count("pruned", plan.pruned)
        member_limits = (limits or SolveLimits()).with_wall_clock(timeout)
        if max_workers == 1 or len(plan.cubes) <= 1:
            result = _run_serial(problem, strategy, encoded, plan,
                                 assumptions, member_limits, cancel, start)
        else:
            result = _run_parallel(problem, strategy, encoded, plan,
                                   assumptions, member_limits, timeout,
                                   faults, share, max_workers, start)
        span.set("status", str(result.status))
        _count("closed", result.cubes_closed)
        return result


def _aggregate(plan: CubePlan, cube_status: Dict[int, SolveStatus],
               winner: Optional[int]) -> SolveStatus:
    """The run's verdict from the per-cube verdicts.

    SAT needs one SAT cube; UNSAT needs *every* cube refuted (the tree
    covers all colorings up to renaming); anything else inherits the
    strongest not-decided reason, TIMEOUT first.
    """
    if winner is not None:
        return SolveStatus.SAT
    statuses = [cube_status.get(cube.index) for cube in plan.cubes]
    if all(s is SolveStatus.UNSAT for s in statuses):
        return SolveStatus.UNSAT
    for status in (SolveStatus.TIMEOUT, SolveStatus.BUDGET_EXHAUSTED):
        if any(s is status for s in statuses):
            return status
    if any(s is None for s in statuses):
        return SolveStatus.TIMEOUT  # cancelled / never reached
    return SolveStatus.ERROR


def _run_serial(problem, strategy, encoded, plan, assumptions, limits,
                cancel, start) -> CubeResult:
    solver = AssumptionJobSolver(problem, strategy, limits=limits,
                                 cancel=cancel, encoded=encoded)
    cube_status: Dict[int, SolveStatus] = {}
    winner: Optional[int] = None
    coloring = None
    for cube in plan.cubes:
        report = solver.solve_cube(assumptions[cube.index])
        cube_status[cube.index] = report.status
        trace.event("cube.closed", index=cube.index,
                    status=str(report.status))
        if report.status is SolveStatus.SAT:
            winner = cube.index
            coloring = solver.decode()
            break
        if not report.status.decided:
            break  # budget / deadline / cancellation: stop the sweep
    return CubeResult(status=_aggregate(plan, cube_status, winner),
                      coloring=coloring,
                      wall_time=time.perf_counter() - start,
                      plan=plan, winner=winner, cube_status=cube_status)


def _cube_worker(member: str, problem, strategy, encoded, assumptions,
                 index_queue, result_queue, cancel_event, limits,
                 faults, channel) -> None:
    obs.worker_begin()
    try:
        injector = _worker_injector(faults, strategy,
                                    extra_sites=("dist_shard",))
        if injector is not None:
            injector.maybe_exit()
            injector.maybe_hang()
        if channel is not None:
            channel.bind_faults(faults, f"{strategy.label}:{member}")
        cancel = CancelToken(cancel_event)
        solver = AssumptionJobSolver(problem, strategy, limits=limits,
                                     cancel=cancel, clause_channel=channel,
                                     encoded=encoded)
        while not cancel_event.is_set():
            try:
                index = index_queue.get_nowait()
            except queue_module.Empty:
                break
            report = solver.solve_cube(assumptions[index])
            coloring = (solver.decode()
                        if report.status is SolveStatus.SAT else None)
            result_queue.put((member, index, report.status, coloring, None))
        result_queue.put((member, None, None, None, obs.drain_telemetry()))
    except Exception as error:  # surface instead of hanging the parent
        result_queue.put((member, None, repr(error), None,
                          obs.drain_telemetry()))


def _run_parallel(problem, strategy, encoded, plan, assumptions, limits,
                  timeout, faults, share, max_workers, start) -> CubeResult:
    import multiprocessing as mp
    context = mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                             else "spawn")
    index_queue = context.Queue()
    for cube in plan.cubes:
        index_queue.put(cube.index)
    result_queue = context.Queue()
    cancel_event = context.Event()
    hub = None
    if share is not None and share is not False:
        from .sharing import ClauseHub, ShareConfig
        config = share if isinstance(share, ShareConfig) else None
        hub = ClauseHub([f"cube-w{i}" for i in range(max_workers)],
                        num_vars=encoded.cnf.num_vars, config=config,
                        context=context)
    workers: Dict[str, "mp.Process"] = {}
    for i in range(max_workers):
        member = f"cube-w{i}"
        channel = hub.endpoint(member) if hub is not None else None
        workers[member] = context.Process(
            target=_cube_worker,
            args=(member, problem, strategy, encoded, assumptions,
                  index_queue, result_queue, cancel_event, limits,
                  faults, channel),
            daemon=True)
    for worker in workers.values():
        worker.start()

    deadline = None if timeout is None else start + timeout
    cube_status: Dict[int, SolveStatus] = {}
    failures: Dict[int, str] = {}
    winner: Optional[int] = None
    coloring = None
    finished: set = set()
    try:
        while len(finished) < len(workers) and winner is None:
            if hub is not None:
                hub.pump()
            if deadline is not None and time.perf_counter() >= deadline:
                cancel_event.set()
            try:
                member, index, status, payload, telemetry = \
                    result_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                for member, worker in workers.items():
                    if member not in finished and not worker.is_alive():
                        worker.join()
                        finished.add(member)  # died; lost cubes re-solved below
                        trace.event("cube.worker_died", member=member,
                                    exit_code=worker.exitcode)
                continue
            if index is None:
                finished.add(member)
                if isinstance(status, str):  # worker raised: repr in slot
                    trace.event("cube.worker_failed", member=member,
                                error=status)
                obs.ingest_telemetry(telemetry, None)
                continue
            cube_status[index] = status
            trace.event("cube.closed", index=index, status=str(status),
                        member=member)
            if status is SolveStatus.SAT:
                winner = index
                coloring = payload
                cancel_event.set()
    finally:
        cancel_event.set()
        grace_until = time.perf_counter() + _CANCEL_GRACE_SECONDS
        for worker in workers.values():
            remaining = grace_until - time.perf_counter()
            if remaining > 0:
                worker.join(timeout=remaining)
        for worker in workers.values():
            if worker.is_alive():
                worker.terminate()
        for worker in workers.values():
            worker.join(timeout=5)
        while True:  # drain late results so no closed cube is dropped
            try:
                member, index, status, payload, telemetry = \
                    result_queue.get_nowait()
            except queue_module.Empty:
                break
            obs.ingest_telemetry(telemetry, None)
            if index is not None and index not in cube_status \
                    and not isinstance(status, str):
                cube_status[index] = status
                if status is SolveStatus.SAT and winner is None:
                    winner, coloring = index, payload
        if hub is not None:
            hub.close()

    # Crash tolerance: any cube no worker answered (crashed workers take
    # their claimed index with them) is re-solved here, serially —
    # unless a winner or the deadline already settled the run.
    missing = [cube for cube in plan.cubes if cube.index not in cube_status]
    if missing and winner is None \
            and (deadline is None or time.perf_counter() < deadline):
        trace.event("cube.requeue", count=len(missing))
        solver = AssumptionJobSolver(problem, strategy, limits=limits,
                                     encoded=encoded)
        for cube in missing:
            report = solver.solve_cube(assumptions[cube.index])
            cube_status[cube.index] = report.status
            trace.event("cube.closed", index=cube.index,
                        status=str(report.status), member="parent")
            if report.status is SolveStatus.SAT:
                winner = cube.index
                coloring = solver.decode()
                break
            if not report.status.decided:
                break
    return CubeResult(status=_aggregate(plan, cube_status, winner),
                      coloring=coloring,
                      wall_time=time.perf_counter() - start,
                      plan=plan, winner=winner, cube_status=cube_status,
                      failures=failures)
