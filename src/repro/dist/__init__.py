"""Distributed solving: shards, clause sharing, and cube-and-conquer.

Three cooperating parallelism modes behind one scheduler:

* **Work-stealing shards** (:mod:`repro.dist.scheduler`) — many jobs,
  locality-aware queues, crash-tolerant requeue.  The throughput layer.
* **Clause-sharing portfolios** (:mod:`repro.dist.sharing`,
  :mod:`repro.dist.portfolio`) — one hard instance, seed-diverse
  members exchanging short learned clauses.  The latency layer for
  instances where diversity helps.
* **Cube-and-conquer** (:mod:`repro.dist.cubes`) — one very hard
  instance split into symmetry-respecting partial assignments, solved
  by persistent assumption workers.  The latency layer for hard-UNSAT
  instances, where the measured win is *work reduction* (learned-clause
  reuse across cubes), not core count.

:func:`run_jobs` is the policy facade tying them together: it shards a
corpus, and — because cubing pays off through work reduction even when
cores are scarce — routes each job *through the cube splitter* when
more than one worker is available.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..bench.batch import (BatchJob, BatchJobResult, BatchResult,
                           _dedup_jobs, _fan_out_duplicates)
from ..core.pipeline import ColoringOutcome
from ..obs import trace
from ..sat.status import SolveLimits
from .cubes import (Cube, CubePlan, CubeResult, cube_tree, generate_cubes,
                    run_cubed)
from .portfolio import run_cooperative, seed_diverse_members
from .scheduler import ShardedResult, run_sharded, shard_of
from .sharing import (ClauseHub, ClauseImportFilter, LoopbackChannel,
                      ShareConfig)

__all__ = [
    "BatchJob", "BatchJobResult", "BatchResult",
    "ShardedResult", "run_sharded", "shard_of",
    "ShareConfig", "ClauseHub", "ClauseImportFilter", "LoopbackChannel",
    "run_cooperative", "seed_diverse_members",
    "Cube", "CubePlan", "CubeResult", "cube_tree", "generate_cubes",
    "run_cubed",
    "run_jobs",
]


def _cube_outcome(job: BatchJob, cube: CubeResult) -> ColoringOutcome:
    """A cube run flattened to the pipeline's outcome shape, so batch
    consumers (reports, CLI tables) need no cube-specific path."""
    return ColoringOutcome(
        strategy=job.strategy, status=cube.status, coloring=cube.coloring,
        encode_time=0.0, solve_time=cube.wall_time,
        num_vars=0, num_clauses=0,
        solver_stats={"cubes": len(cube.plan.cubes),
                      "cubes_closed": cube.cubes_closed,
                      "cube_depth": cube.plan.depth,
                      "cube_winner": -1 if cube.winner is None
                      else cube.winner},
        graph_time=job.graph_time)


def run_jobs(jobs: Sequence[BatchJob], workers: int = 1,
             num_shards: Optional[int] = None, cube: str = "auto",
             share=None, job_timeout: Optional[float] = None,
             limits: Optional[SolveLimits] = None,
             timeout: Optional[float] = None, faults=None,
             dedup: bool = True, **shard_kwargs) -> BatchResult:
    """Solve a corpus with ``workers`` processes — the policy facade.

    ``cube`` picks the parallelism mode per the measured trade-offs:

    * ``"auto"`` (default): with one worker, jobs run monolithically on
      the shard scheduler (cube fan-out has nothing to feed); with
      ``workers > 1`` each job is cube-split across all workers, one
      job at a time — on hard instances the cube tree's work reduction
      is where the speedup lives, and it compounds with the extra
      cores.
    * ``"off"``: always the shard scheduler (``num_shards`` queues,
      default ``min(workers, 2)``), workers spread across shards.
    * ``"always"``: cube-split every job even at one worker.

    ``share`` threads a :class:`ShareConfig` (or True) into the cube
    workers' clause channel; it is ignored on the pure shard path,
    where jobs are independent instances with nothing sound to share.
    Returns a :class:`~repro.bench.batch.BatchResult` either way.
    """
    if cube not in ("auto", "off", "always"):
        raise ValueError(f"unknown cube policy {cube!r}")
    if workers < 1:
        raise ValueError("workers must be positive")
    cubing = cube == "always" or (cube == "auto" and workers > 1)
    if not cubing:
        shards = num_shards if num_shards is not None else min(workers, 2)
        return run_sharded(
            jobs, num_shards=shards,
            workers_per_shard=max(1, workers // shards),
            job_timeout=job_timeout, limits=limits, timeout=timeout,
            faults=faults, dedup=dedup, **shard_kwargs)

    fanout = {}
    duplicates = 0
    if dedup and len(jobs) > 1:
        jobs, fanout = _dedup_jobs(jobs, limits, job_timeout)
        duplicates = sum(len(d) for d in fanout.values())
    start = time.perf_counter()
    deadline = None if timeout is None else start + timeout
    with trace.span("dist.run_jobs", jobs=len(jobs), workers=workers,
                    mode="cube", deduped=duplicates) as span:
        results = []
        pending = list(jobs)
        cancelled = False
        for job in jobs:
            now = time.perf_counter()
            if deadline is not None and now >= deadline:
                cancelled = True
                break
            budget = job_timeout
            if deadline is not None:
                remaining = deadline - now
                budget = remaining if budget is None \
                    else min(budget, remaining)
            cube_result = run_cubed(
                job.problem, job.strategy, max_workers=workers,
                limits=limits, timeout=budget, faults=faults, share=share)
            pending.remove(job)
            results.append(BatchJobResult(
                job=job, status=cube_result.status,
                outcome=_cube_outcome(job, cube_result),
                wall_time=cube_result.wall_time,
                engine=job.strategy.engine))
        result = BatchResult(results=results, pending=pending,
                             cancelled=cancelled,
                             wall_time=time.perf_counter() - start)
        if fanout:
            _fan_out_duplicates(result, fanout)
        span.set("settled", len(result.results))
        return result
