"""Work-stealing shard scheduler: many locality-aware job queues.

Generalizes :func:`repro.bench.batch.run_batch` from one process pool
to ``num_shards`` cooperating pools.  Jobs land on a *home shard* by a
stable hash of their instance name — so every solve of one instance
(strategy sweeps, retries, re-submissions) queues on the same shard,
which is what makes shard-local caches and warm per-instance state
possible for the layers above — and each shard launches from the
*head* of its own deque.  An idle shard steals from the *tail* of the
longest backlog, the classic work-stealing compromise: the head is
where the owner's locality lives, the tail is where the coldest work
sits.

Failure handling reuses the reliability substrate wholesale: a worker
that crashes (including an injected ``crash@dist_shard``) or reports
ERROR is requeued to its home shard with the strategy's
:class:`~repro.reliability.quarantine.QuarantineTracker` backoff, up
to ``max_attempts``, with the same arena→legacy engine fallback as the
flat batch runner.  Per-shard deadlines (``shard_timeout``) stop a
shard from *launching* past its budget while its remaining jobs stay
stealable, so one slow shard degrades into a donor instead of a
straggler.

The result is a plain :class:`~repro.bench.batch.BatchResult` extended
with per-shard counters, so everything that consumes batch results —
``repro.api.solve_batch``, the bench reports, the CLI — works
unchanged on top.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..bench.batch import (BatchJob, BatchJobResult, BatchResult,
                           _dedup_jobs, _fan_out_duplicates, _unpack)
from ..core.pipeline import ColoringOutcome, solve_coloring
from ..core.portfolio import _worker_injector
from ..core.strategy import Strategy
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..sat.status import CancelToken, SolveLimits, SolveStatus

__all__ = ["ShardedResult", "run_sharded", "shard_of"]

_POLL_SECONDS = 0.05
_CANCEL_GRACE_SECONDS = 2.0
_DRAIN_SECONDS = 0.5


def shard_of(instance: str, num_shards: int) -> int:
    """The home shard of an instance: a stable content hash, so the
    same instance always queues on the same shard across runs and
    processes (CRC32 is seed- and ``PYTHONHASHSEED``-independent)."""
    return zlib.crc32(instance.encode("utf-8")) % num_shards


@dataclass
class ShardedResult(BatchResult):
    """A batch result plus the shard-level accounting."""

    #: Per-shard counters, by shard name ("shard0", ...).
    shards: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Jobs launched away from their home shard.
    steals: int = 0


class _Entry:
    """One queued attempt (home shard remembered across requeues)."""

    __slots__ = ("job", "shard", "attempt", "strategy", "not_before")

    def __init__(self, job: BatchJob, shard: int, attempt: int = 1,
                 strategy: Optional[Strategy] = None,
                 not_before: float = 0.0) -> None:
        self.job = job
        self.shard = shard
        self.attempt = attempt
        self.strategy = strategy if strategy is not None else job.strategy
        self.not_before = not_before


class _Running:
    __slots__ = ("entry", "shard", "process", "cancel_event", "started",
                 "deadline", "hard_deadline")

    def __init__(self, entry: _Entry, shard: int, process, cancel_event,
                 started: float, deadline: Optional[float]) -> None:
        self.entry = entry
        #: Shard whose worker slot this job occupies (the thief's, on a
        #: stolen launch — the home shard stays on the entry).
        self.shard = shard
        self.process = process
        self.cancel_event = cancel_event
        self.started = started
        self.deadline = deadline
        self.hard_deadline: Optional[float] = None


def _shard_worker(job: BatchJob, queue, cancel_event,
                  limits: Optional[SolveLimits], strategy,
                  faults=None, audit: bool = False) -> None:
    """Twin of ``bench.batch._batch_worker`` answering to the extra
    ``dist_shard`` fault site (``crash@dist_shard`` / ``hang@dist_shard``
    kill or wedge a shard worker specifically, leaving plain batch
    workers untouched)."""
    strategy = strategy if strategy is not None else job.strategy
    obs.worker_begin()
    try:
        injector = _worker_injector(faults, strategy,
                                    extra_sites=("dist_shard",))
        if injector is not None:
            injector.maybe_exit()
            injector.maybe_hang()
        cancel = CancelToken(cancel_event) if cancel_event is not None else None
        kwargs = {}
        if faults is not None:
            kwargs["faults"] = faults
        if audit:
            kwargs.update(keep_model=True, proof_log=True)
        outcome = solve_coloring(job.problem, strategy,
                                 graph_time=job.graph_time,
                                 limits=limits, cancel=cancel, **kwargs)
        queue.put((job.key, outcome, None, obs.drain_telemetry()))
    except Exception as error:
        queue.put((job.key, None, repr(error), obs.drain_telemetry()))


def run_sharded(jobs: Sequence[BatchJob],
                num_shards: int = 2,
                max_workers: Optional[int] = None,
                workers_per_shard: Optional[int] = None,
                job_timeout: Optional[float] = None,
                limits: Optional[SolveLimits] = None,
                max_attempts: int = 2,
                timeout: Optional[float] = None,
                shard_timeout: Optional[float] = None,
                cancel: Optional[CancelToken] = None,
                audit: bool = False, faults=None,
                quarantine=None,
                engine_fallback: bool = True,
                dedup: bool = True) -> ShardedResult:
    """Run a batch over ``num_shards`` work-stealing shard queues.

    Semantics match :func:`repro.bench.batch.run_batch` — same job
    type, same result table, same retry / audit / quarantine /
    engine-fallback / dedup behaviour — plus the shard layer:
    ``workers_per_shard`` (default: ``max_workers`` spread evenly,
    minimum one) bounds each shard's pool, ``shard_timeout`` is the
    per-shard launch deadline, and the result carries per-shard
    counters and the steal total.  ``num_shards=1`` degenerates to the
    flat pool (the scheduler is then exactly a batch runner), which is
    how :func:`repro.api.solve_batch` uses it by default.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    if max_attempts < 1:
        raise ValueError("max_attempts must be at least 1")
    if max_workers is None:
        max_workers = max(num_shards, (mp.cpu_count() or 2) - 1)
    if workers_per_shard is None:
        workers_per_shard = max(1, max_workers // num_shards)
    fanout: Dict[int, List[BatchJob]] = {}
    duplicates = 0
    if dedup and len(jobs) > 1:
        jobs, fanout = _dedup_jobs(jobs, limits, job_timeout)
        duplicates = sum(len(d) for d in fanout.values())
    with trace.span("dist.schedule", jobs=len(jobs), shards=num_shards,
                    workers_per_shard=workers_per_shard, audit=audit,
                    deduped=duplicates) as span:
        result = _schedule_in_span(
            span, jobs, num_shards, workers_per_shard, job_timeout,
            limits, max_attempts, timeout, shard_timeout, cancel, audit,
            faults, quarantine, engine_fallback)
        if fanout:
            _fan_out_duplicates(result, fanout)
        span.set("settled", len(result.results))
        span.set("steals", result.steals)
        span.set("cancelled", result.cancelled)
        if obs_metrics.enabled():
            registry = obs_metrics.registry()
            registry.inc("dist.schedules")
            registry.inc("dist.jobs", len(result.results))
            if duplicates:
                registry.inc("batch.deduped", duplicates)
            for status, count in result.status_counts().items():
                registry.inc(f"dist.status.{status}", count)
            registry.observe("dist.wall_time", result.wall_time)
        return result


def _schedule_in_span(span, jobs: Sequence[BatchJob], num_shards: int,
                      workers_per_shard: int,
                      job_timeout: Optional[float],
                      limits: Optional[SolveLimits], max_attempts: int,
                      timeout: Optional[float],
                      shard_timeout: Optional[float],
                      cancel: Optional[CancelToken], audit: bool, faults,
                      quarantine, engine_fallback: bool) -> ShardedResult:
    from ..reliability.quarantine import QuarantineTracker
    tracker = QuarantineTracker(quarantine)
    job_limits = (limits or SolveLimits()).with_wall_clock(job_timeout)
    context = mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                             else "spawn")
    result_queue = context.Queue()
    start = time.perf_counter()
    batch_deadline = None if timeout is None else start + timeout
    shard_deadline = None if shard_timeout is None else start + shard_timeout

    queues: List[Deque[_Entry]] = [deque() for _ in range(num_shards)]
    for job in jobs:
        queues[shard_of(job.instance, num_shards)].append(
            _Entry(job, shard_of(job.instance, num_shards)))
    running: List[Dict[Tuple[str, str], _Running]] = \
        [{} for _ in range(num_shards)]
    by_key: Dict[Tuple[str, str], _Running] = {}
    results: List[BatchJobResult] = []
    stats = [{"queued": len(queues[s]), "launched": 0, "stolen": 0,
              "completed": 0, "requeued": 0}
             for s in range(num_shards)]
    steals = 0
    stopping = False

    def _pop_own(shard: int, now: float) -> Optional[_Entry]:
        """A launchable entry from the head of this shard's own queue
        (skipping backoff-blocked / quarantined entries in place)."""
        queue = queues[shard]
        for _ in range(len(queue)):
            entry = queue[0]
            if entry.not_before <= now and not tracker.quarantined(
                    entry.job.strategy.label, now):
                queue.popleft()
                return entry
            queue.rotate(-1)  # blocked: step past it, keep order
        return None

    def _steal(thief: int, now: float) -> Optional[_Entry]:
        """A launchable entry from the tail of the longest other queue."""
        donors = sorted((s for s in range(num_shards)
                         if s != thief and queues[s]),
                        key=lambda s: -len(queues[s]))
        for donor in donors:
            queue = queues[donor]
            for _ in range(len(queue)):
                entry = queue[-1]
                if entry.not_before <= now and not tracker.quarantined(
                        entry.job.strategy.label, now):
                    queue.pop()
                    return entry
                queue.rotate(1)
        return None

    def _launch(entry: _Entry, shard: int, stolen: bool) -> None:
        nonlocal steals
        job = entry.job
        cancel_event = context.Event()
        process = context.Process(
            target=_shard_worker,
            args=(job, result_queue, cancel_event, job_limits,
                  entry.strategy, faults, audit),
            daemon=True)
        now = time.perf_counter()
        deadline = None if job_timeout is None else now + job_timeout
        record = _Running(entry, shard, process, cancel_event, now, deadline)
        running[shard][job.key] = record
        by_key[job.key] = record
        process.start()
        stats[shard]["launched"] += 1
        if stolen:
            steals += 1
            stats[shard]["stolen"] += 1
            trace.event("dist.steal", instance=job.instance,
                        home=entry.shard, thief=shard)
            if obs_metrics.enabled():
                obs_metrics.registry().inc("dist.steal")
        trace.event("job.launched", instance=job.instance,
                    strategy=entry.strategy.label, shard=shard,
                    attempt=entry.attempt)

    def _forget(record: _Running) -> None:
        del running[record.shard][record.entry.job.key]
        by_key.pop(record.entry.job.key, None)

    def _settle(record: _Running, outcome: Optional[ColoringOutcome],
                error: Optional[str],
                forced_status: Optional[SolveStatus] = None,
                audit_report=None) -> None:
        entry = record.entry
        if forced_status is not None:
            status = forced_status
        elif error is not None:
            status = SolveStatus.ERROR
        else:
            status = outcome.status
        results.append(BatchJobResult(
            job=entry.job, status=status, outcome=outcome,
            wall_time=time.perf_counter() - record.started,
            attempts=entry.attempt, error=error, audit=audit_report,
            engine=entry.strategy.engine))
        stats[record.shard]["completed"] += 1
        _forget(record)
        trace.event("job.settled", instance=entry.job.instance,
                    strategy=entry.job.strategy.label, status=str(status),
                    shard=record.shard, attempts=entry.attempt,
                    **({"error": error} if error else {}))

    def _requeue(record: _Running) -> None:
        """A failed attempt goes back to the *head of its home shard*
        (locality survives the crash), engine-fallen-back and delayed
        by its strategy's quarantine backoff."""
        entry = record.entry
        strategy = entry.strategy
        if engine_fallback and strategy.engine == "arena":
            strategy = strategy.with_engine("legacy")
        not_before = tracker.release_time(entry.job.strategy.label)
        queues[entry.shard].appendleft(_Entry(
            entry.job, entry.shard, entry.attempt + 1, strategy,
            not_before=not_before))
        stats[entry.shard]["requeued"] += 1
        _forget(record)
        trace.event("job.requeued", instance=entry.job.instance,
                    strategy=entry.job.strategy.label, shard=entry.shard,
                    next_attempt=entry.attempt + 1, engine=strategy.engine)
        if obs_metrics.enabled():
            obs_metrics.registry().inc("dist.requeues")

    def _report(record: _Running, outcome: Optional[ColoringOutcome],
                error: Optional[str]) -> None:
        entry = record.entry
        status = SolveStatus.ERROR if error is not None else outcome.status
        audit_report = None
        if audit and error is None and outcome.status.decided:
            from ..reliability.audit import audit_outcome
            audit_report = audit_outcome(entry.job.problem, outcome)
            if audit_report.failed:
                status = SolveStatus.ERROR
                error = "audit failed: " + "; ".join(
                    f"{check.name} ({check.detail})"
                    for check in audit_report.failures)
        if status is SolveStatus.ERROR:
            detail = error
            if detail is None:
                detail = str(outcome.solver_stats.get(
                    "stop_reason", "")) or "job failed"
            tracker.record_offence(entry.job.strategy.label, detail,
                                   time.perf_counter())
            if entry.attempt < max_attempts and not stopping:
                _requeue(record)
            else:
                _settle(record, outcome, detail, audit_report=audit_report)
            return
        if status.decided:
            tracker.record_success(entry.job.strategy.label)
        _settle(record, outcome, error, audit_report=audit_report)

    try:
        while any(running) or (any(queues) and not stopping):
            now = time.perf_counter()
            externally_stopped = (
                (batch_deadline is not None and now >= batch_deadline)
                or (cancel is not None and cancel.cancelled))
            if externally_stopped and not stopping:
                stopping = True
                trace.event("dist.stopping",
                            running=sum(len(r) for r in running),
                            waiting=sum(len(q) for q in queues))
                for shard_running in running:
                    for record in shard_running.values():
                        record.cancel_event.set()
                        if record.hard_deadline is None:
                            record.hard_deadline = \
                                now + _CANCEL_GRACE_SECONDS
            expired = (shard_deadline is not None and now >= shard_deadline)
            if not stopping:
                for shard in range(num_shards):
                    while len(running[shard]) < workers_per_shard:
                        # Own queue first — unless this shard's launch
                        # deadline passed, in which case its backlog
                        # only moves by being stolen.
                        entry = None if expired else _pop_own(shard, now)
                        stolen = False
                        if entry is None and not queues[shard]:
                            entry = _steal(shard, now)
                            stolen = entry is not None
                        if entry is None:
                            break
                        _launch(entry, shard, stolen)
            for shard_running in running:
                for record in list(shard_running.values()):
                    if record.deadline is not None \
                            and now >= record.deadline \
                            and not record.cancel_event.is_set():
                        record.cancel_event.set()
                        record.hard_deadline = now + _CANCEL_GRACE_SECONDS
                    if record.hard_deadline is not None \
                            and now >= record.hard_deadline:
                        if record.process.is_alive():
                            record.process.terminate()
                            record.process.join(timeout=5)
                            trace.event(
                                "job.terminated",
                                instance=record.entry.job.instance,
                                reason="ignored cancel past grace")
                        _settle(record, None, None,
                                forced_status=SolveStatus.TIMEOUT)
            if not any(running):
                if any(queues) and not stopping:
                    time.sleep(_POLL_SECONDS)  # all backoff-blocked
                continue
            try:
                key, outcome, error, telemetry = _unpack(
                    result_queue.get(timeout=_POLL_SECONDS))
            except queue_module.Empty:
                for record in list(by_key.values()):
                    if record.process.is_alive():
                        continue
                    record.process.join()
                    try:
                        key, outcome, error, telemetry = _unpack(
                            result_queue.get(timeout=_DRAIN_SECONDS))
                    except queue_module.Empty:
                        reason = (f"worker died without reporting "
                                  f"(exit code {record.process.exitcode})")
                        trace.event("job.died",
                                    instance=record.entry.job.instance,
                                    shard=record.shard,
                                    exit_code=record.process.exitcode)
                        tracker.record_offence(
                            record.entry.job.strategy.label, reason,
                            time.perf_counter())
                        if record.entry.attempt < max_attempts \
                                and not stopping:
                            _requeue(record)
                        else:
                            _settle(record, None, reason)
                    else:
                        obs.ingest_telemetry(telemetry, span.span_id)
                        if key in by_key:
                            _report(by_key[key], outcome, error)
                    break
                continue
            obs.ingest_telemetry(telemetry, span.span_id)
            if key in by_key:  # late report after a hard kill: ignore
                _report(by_key[key], outcome, error)
    finally:
        for record in by_key.values():
            record.cancel_event.set()
        grace_until = time.perf_counter() + _CANCEL_GRACE_SECONDS
        for record in by_key.values():
            remaining = grace_until - time.perf_counter()
            if remaining > 0:
                record.process.join(timeout=remaining)
        for record in list(by_key.values()):
            if record.process.is_alive():
                record.process.terminate()
                trace.event("job.terminated",
                            instance=record.entry.job.instance,
                            reason="straggler after batch end")
            record.process.join(timeout=5)
            _settle(record, None, None, forced_status=SolveStatus.TIMEOUT)
        while True:
            try:
                _, _, _, telemetry = _unpack(result_queue.get_nowait())
            except queue_module.Empty:
                break
            obs.ingest_telemetry(telemetry, span.span_id)

    pending = [entry.job for queue in queues for entry in queue]
    return ShardedResult(
        results=results, pending=pending, cancelled=stopping,
        wall_time=time.perf_counter() - start,
        quarantine=tracker.snapshot(),
        shards={f"shard{s}": stats[s] for s in range(num_shards)},
        steals=steals)
