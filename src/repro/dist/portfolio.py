"""Cooperative portfolios: seed-diverse members that share clauses.

The classic racing portfolio (:func:`repro.core.portfolio.run_portfolio`)
discards every loser's work.  The cooperative variant keeps the same
process-race machinery but wires every member into one clause-sharing
hub (:mod:`repro.dist.sharing`), so a short clause learned by any member
prunes everyone's search.  Sharing is only sound between members solving
the *same* CNF, so the convenience constructor here diversifies the
*seed* (and optionally the engine) rather than the encoding: same
formula, different decision trajectories, shared refutations.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..coloring.problem import ColoringProblem
from ..core.portfolio import PortfolioResult, run_portfolio
from ..core.strategy import Strategy
from ..sat.status import SolveLimits
from .sharing import ShareConfig

__all__ = ["seed_diverse_members", "run_cooperative"]

#: Engines that honour ``SolverConfig.clause_channel``.  The legacy
#: engine has its own solve loop without sharing hooks; a legacy member
#: in a cooperative portfolio would silently free-ride (sound, but it
#: never exports), so the member constructor skips it.
SHARING_ENGINES = ("arena", "packed", "arena+inprocess")


def seed_diverse_members(strategy: Strategy, count: int,
                         engines: Optional[Sequence[str]] = None
                         ) -> Sequence[Strategy]:
    """``count`` copies of one strategy differing only in seed (and,
    round-robin, in ``engines`` when given) — the legal member set for
    a clause-sharing portfolio: identical CNF, diverse trajectories."""
    if count < 1:
        raise ValueError("count must be positive")
    pool = tuple(engines) if engines else (strategy.engine,)
    for engine in pool:
        if engine not in SHARING_ENGINES:
            raise ValueError(
                f"engine {engine!r} does not support clause sharing")
    return tuple(replace(strategy, seed=strategy.seed + i,
                         engine=pool[i % len(pool)])
                 for i in range(count))


def run_cooperative(problem: ColoringProblem, strategy: Strategy,
                    members: int = 2,
                    engines: Optional[Sequence[str]] = None,
                    share: Optional[ShareConfig] = None,
                    timeout: Optional[float] = None,
                    limits: Optional[SolveLimits] = None,
                    audit: bool = False, faults=None) -> PortfolioResult:
    """Race ``members`` seed-diverse copies of ``strategy`` with clause
    sharing on.  A thin convenience over :func:`run_portfolio` — the
    race/cancel/audit semantics are exactly the portfolio's, with the
    sharing hub enabled (``share=None`` means the default
    :class:`ShareConfig`, not "off"; use plain ``run_portfolio`` for an
    uncooperative race)."""
    squad = seed_diverse_members(strategy, members, engines)
    return run_portfolio(problem, squad, timeout=timeout, limits=limits,
                         audit=audit, faults=faults,
                         share=share if share is not None else True)
