"""repro — SAT encodings for FPGA detailed routing.

Reproduction of Velev & Gao, "Comparison of Boolean Satisfiability
Encodings on FPGA Detailed Routing Problems" (DATE 2008).

Layer map (each is a subpackage with its own focused API):

* :mod:`repro.sat` — CNF formulas, DIMACS CNF I/O, CDCL/DPLL solvers.
* :mod:`repro.coloring` — graph-coloring problems, DIMACS ``.col`` I/O.
* :mod:`repro.core` — the paper's 15 CSP-to-SAT encodings plus the
  modern at-most-one and partial-order families (25 registered
  encodings in all), b1/s1 symmetry breaking, the solving pipeline and
  strategy portfolios.
* :mod:`repro.fpga` — island-style FPGA model, global router, the
  routing-to-coloring reduction, and MCNC-like benchmark profiles.
* :mod:`repro.bench` — strategy sweeps, concurrent batch runs and
  paper-style tables.
* :mod:`repro.reliability` — deterministic fault injection, end-to-end
  result auditing, and strategy quarantine (see ``docs/reliability.md``).
* :mod:`repro.obs` — structured tracing, the metrics registry and trace
  reporting, off by default (see ``docs/observability.md``).
* :mod:`repro.api` — the canonical :class:`SolveRequest` /
  :class:`SolveResponse` contract every entrypoint routes through, with
  content-addressed cache keys and wire codecs (see ``docs/api.md``).
* :mod:`repro.serve` — the solver as a long-running service: asyncio
  front end, persistent worker pool, content-addressed audit-verified
  result cache, admission control (see ``docs/serving.md``).

Quickstart::

    from repro import SolveLimits, Strategy, detailed_route, load_routing

    routing = load_routing("alu2")
    result = detailed_route(routing, width=5,
                            strategy=Strategy("ITE-linear-2+muldirect", "s1"),
                            limits=SolveLimits(wall_clock_limit=60.0))
    if not result.status.decided:
        print(f"stopped early: {result.report.detail}")
    elif result.routable:
        print(result.assignment.tracks)
    else:
        print("provably unroutable at W=5")

Every solving entry point reports a five-way :class:`SolveStatus`
(SAT / UNSAT / TIMEOUT / BUDGET_EXHAUSTED / ERROR) and accepts
:class:`SolveLimits` (conflict / propagation / wall-clock budgets) plus
a :class:`CancelToken` for cooperative cancellation; see ``docs/api.md``.
"""

from . import api
from .api import SolveRequest, SolveResponse
from .bench import BatchJob, BatchResult, run_batch
from .coloring import ColoringProblem, Graph
from .errors import ParseError
from .core import (ALL_ENCODINGS, BEST_SINGLE_STRATEGY, MODERN_ENCODINGS,
                   NEW_ENCODINGS, PORTFOLIO_2, PORTFOLIO_3,
                   PREVIOUS_ENCODINGS, PortfolioResult, REGISTRY_ENCODINGS,
                   TABLE2_ENCODINGS, Strategy,
                   encode_coloring, get_encoding, minimum_colors,
                   run_portfolio, solve_coloring)
from .fpga import (DetailedRoutingResult, FPGAArchitecture, GlobalRouting,
                   Net, Netlist, detailed_route, load_netlist, load_routing,
                   minimum_channel_width)
from .sat import (CNF, CancelToken, SolveLimits, SolveReport, SolveResult,
                  SolveStatus, solve)
from .reliability import (AuditReport, AuditVerdict, FaultPlan,
                          audit_result)
from .sat.solver.cdcl import BudgetExceeded

__version__ = "1.9.0"

__all__ = [
    "api", "SolveRequest", "SolveResponse",
    "ColoringProblem", "Graph",
    "ALL_ENCODINGS", "BEST_SINGLE_STRATEGY", "MODERN_ENCODINGS",
    "NEW_ENCODINGS", "PORTFOLIO_2",
    "PORTFOLIO_3", "PREVIOUS_ENCODINGS", "REGISTRY_ENCODINGS",
    "TABLE2_ENCODINGS", "Strategy",
    "PortfolioResult", "encode_coloring", "get_encoding", "minimum_colors",
    "run_portfolio", "solve_coloring",
    "DetailedRoutingResult", "FPGAArchitecture", "GlobalRouting", "Net",
    "Netlist", "detailed_route", "load_netlist", "load_routing",
    "minimum_channel_width",
    "CNF", "SolveResult", "solve",
    "SolveStatus", "SolveReport", "SolveLimits", "CancelToken",
    "BudgetExceeded",
    "BatchJob", "BatchResult", "run_batch",
    "AuditReport", "AuditVerdict", "FaultPlan", "audit_result",
    "ParseError",
    "__version__",
]
