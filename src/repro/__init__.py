"""repro — SAT encodings for FPGA detailed routing.

Reproduction of Velev & Gao, "Comparison of Boolean Satisfiability
Encodings on FPGA Detailed Routing Problems" (DATE 2008).

Layer map (each is a subpackage with its own focused API):

* :mod:`repro.sat` — CNF formulas, DIMACS CNF I/O, CDCL/DPLL solvers.
* :mod:`repro.coloring` — graph-coloring problems, DIMACS ``.col`` I/O.
* :mod:`repro.core` — the paper's 15 CSP-to-SAT encodings, b1/s1 symmetry
  breaking, the solving pipeline and strategy portfolios.
* :mod:`repro.fpga` — island-style FPGA model, global router, the
  routing-to-coloring reduction, and MCNC-like benchmark profiles.
* :mod:`repro.bench` — strategy sweeps and paper-style tables.

Quickstart::

    from repro import Strategy, detailed_route, load_routing

    routing = load_routing("alu2")
    result = detailed_route(routing, width=5,
                            strategy=Strategy("ITE-linear-2+muldirect", "s1"))
    if result.routable:
        print(result.assignment.tracks)
    else:
        print("provably unroutable at W=5")
"""

from .coloring import ColoringProblem, Graph
from .core import (ALL_ENCODINGS, BEST_SINGLE_STRATEGY, NEW_ENCODINGS,
                   PORTFOLIO_2, PORTFOLIO_3, PREVIOUS_ENCODINGS,
                   TABLE2_ENCODINGS, Strategy, encode_coloring, get_encoding,
                   minimum_colors, run_portfolio, solve_coloring)
from .fpga import (DetailedRoutingResult, FPGAArchitecture, GlobalRouting,
                   Net, Netlist, detailed_route, load_netlist, load_routing,
                   minimum_channel_width)
from .sat import CNF, SolveResult, solve

__version__ = "1.0.0"

__all__ = [
    "ColoringProblem", "Graph",
    "ALL_ENCODINGS", "BEST_SINGLE_STRATEGY", "NEW_ENCODINGS", "PORTFOLIO_2",
    "PORTFOLIO_3", "PREVIOUS_ENCODINGS", "TABLE2_ENCODINGS", "Strategy",
    "encode_coloring", "get_encoding", "minimum_colors", "run_portfolio",
    "solve_coloring",
    "DetailedRoutingResult", "FPGAArchitecture", "GlobalRouting", "Net",
    "Netlist", "detailed_route", "load_netlist", "load_routing",
    "minimum_channel_width",
    "CNF", "SolveResult", "solve",
    "__version__",
]
