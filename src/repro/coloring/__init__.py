"""Graph-coloring substrate: problems, DIMACS .col I/O, bounds, oracle."""

from .brute import chromatic_number, find_coloring, is_colorable
from .dimacs import (parse_col, parse_col_file, parse_col_string, to_col_string,
                     write_col, write_col_file)
from .greedy import (clique_lower_bound, dsatur_coloring, greedy_clique,
                     greedy_coloring, greedy_num_colors)
from .problem import (ColoringProblem, Graph, complete_graph, cycle_graph,
                      random_graph)

__all__ = [
    "chromatic_number", "find_coloring", "is_colorable",
    "parse_col", "parse_col_file", "parse_col_string", "to_col_string",
    "write_col", "write_col_file",
    "clique_lower_bound", "dsatur_coloring", "greedy_clique",
    "greedy_coloring", "greedy_num_colors",
    "ColoringProblem", "Graph", "complete_graph", "cycle_graph", "random_graph",
]
