"""Graph-coloring problems — the CSP intermediate form of the tool flow.

The paper's central methodological point (§1, contribution 1) is a
*two-stage* tool flow: FPGA detailed routing is first translated to an
equivalent graph-coloring problem (in the DIMACS ``.col`` format), and only
then to SAT.  This module is that intermediate representation: an
undirected graph whose vertices are CSP variables, whose edges are
disequality constraints, and a number of colors ``K`` (= tracks per
channel).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Set, Tuple

Edge = Tuple[int, int]


class Graph:
    """A simple undirected graph over vertices ``0..num_vertices-1``.

    Self-loops are rejected (a vertex cannot be required to differ from
    itself — in routing terms, a 2-pin net never conflicts with itself).
    Parallel edges are collapsed.
    """

    def __init__(self, num_vertices: int,
                 edges: Optional[Iterable[Edge]] = None) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._num_vertices = num_vertices
        self._adjacency: List[Set[int]] = [set() for _ in range(num_vertices)]
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def add_vertex(self) -> int:
        """Add a vertex and return its id."""
        self._adjacency.append(set())
        self._num_vertices += 1
        return self._num_vertices - 1

    def add_edge(self, u: int, v: int) -> bool:
        """Add the undirected edge (u, v).  Returns False if it existed."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loop on vertex {u} is not allowed")
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._num_edges += 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adjacency[u]

    def neighbors(self, v: int) -> Set[int]:
        """Return the neighbour set of ``v`` (shared, do not mutate)."""
        self._check_vertex(v)
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._adjacency[v])

    def edges(self) -> Iterable[Edge]:
        """Yield each undirected edge once, as (min, max) pairs."""
        for u in range(self._num_vertices):
            for v in self._adjacency[u]:
                if u < v:
                    yield (u, v)

    def max_degree_vertex(self) -> int:
        """Return the vertex of maximum degree (smallest id on ties)."""
        if self._num_vertices == 0:
            raise ValueError("graph has no vertices")
        return max(range(self._num_vertices),
                   key=lambda v: (len(self._adjacency[v]), -v))

    def subgraph_is_clique(self, vertices: Sequence[int]) -> bool:
        """Return True if the given vertices are pairwise adjacent."""
        for i, u in enumerate(vertices):
            for v in vertices[i + 1:]:
                if not self.has_edge(u, v):
                    return False
        return True

    def copy(self) -> "Graph":
        duplicate = Graph(self._num_vertices)
        duplicate._adjacency = [set(adj) for adj in self._adjacency]
        duplicate._num_edges = self._num_edges
        return duplicate

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._num_vertices:
            raise ValueError(f"vertex {v} out of range 0..{self._num_vertices - 1}")

    def __repr__(self) -> str:
        return f"Graph(num_vertices={self._num_vertices}, num_edges={self._num_edges})"


class ColoringProblem:
    """Color a graph's vertices with ``num_colors`` colors such that
    adjacent vertices differ.

    In the routing reduction, vertices are 2-pin nets, edges are
    connection-block exclusivity constraints, and colors are track indices
    ``0..W-1``.
    """

    def __init__(self, graph: Graph, num_colors: int,
                 vertex_names: Optional[Sequence[str]] = None) -> None:
        if num_colors < 1:
            raise ValueError("num_colors must be at least 1")
        if vertex_names is not None and len(vertex_names) != graph.num_vertices:
            raise ValueError("vertex_names length must match the vertex count")
        self.graph = graph
        self.num_colors = num_colors
        self.vertex_names = list(vertex_names) if vertex_names is not None else None

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    def with_colors(self, num_colors: int) -> "ColoringProblem":
        """Return the same graph with a different color budget."""
        return ColoringProblem(self.graph, num_colors, self.vertex_names)

    def is_valid_coloring(self, coloring: Mapping[int, int]) -> bool:
        """Check a candidate coloring: total, in range, and proper."""
        for v in range(self.graph.num_vertices):
            if v not in coloring:
                return False
            if not 0 <= coloring[v] < self.num_colors:
                return False
        for u, v in self.graph.edges():
            if coloring[u] == coloring[v]:
                return False
        return True

    def violated_edges(self, coloring: Mapping[int, int]) -> List[Edge]:
        """Return edges whose endpoints share a color (for diagnostics)."""
        return [(u, v) for u, v in self.graph.edges()
                if coloring.get(u) == coloring.get(v)]

    def __repr__(self) -> str:
        return (f"ColoringProblem(vertices={self.graph.num_vertices}, "
                f"edges={self.graph.num_edges}, colors={self.num_colors})")


def complete_graph(n: int) -> Graph:
    """Return the complete graph K_n."""
    return Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def cycle_graph(n: int) -> Graph:
    """Return the cycle C_n (needs n >= 3)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def random_graph(n: int, edge_probability: float, seed: int = 0) -> Graph:
    """Return a G(n, p) Erdős–Rényi random graph (seeded)."""
    import random as _random
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = _random.Random(seed)
    graph = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph
