"""Greedy coloring and clique bounds.

These give cheap two-sided bounds on the chromatic number of a
routing-induced conflict graph:

* a greedy (largest-degree-first / DSATUR) coloring upper-bounds it, and
* a greedily grown clique lower-bounds it.

The benchmark harness uses the bounds to bracket the minimum channel width
before the exact SAT search, exactly as a router would before invoking the
expensive unroutability proof.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .problem import Graph


def greedy_coloring(graph: Graph, order: Sequence[int] = None) -> Dict[int, int]:
    """Color greedily in the given vertex order (default: degree-descending).

    Each vertex takes the smallest color unused among its already-colored
    neighbours, so the result is always a proper coloring.
    """
    if order is None:
        order = sorted(range(graph.num_vertices),
                       key=lambda v: graph.degree(v), reverse=True)
    elif sorted(order) != list(range(graph.num_vertices)):
        raise ValueError("order must be a permutation of all vertices")
    coloring: Dict[int, int] = {}
    for v in order:
        used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
        color = 0
        while color in used:
            color += 1
        coloring[v] = color
    return coloring


def dsatur_coloring(graph: Graph) -> Dict[int, int]:
    """DSATUR (Brélaz) coloring: branch on maximum saturation degree.

    Usually needs fewer colors than plain greedy; used for the channel
    width upper bound.
    """
    n = graph.num_vertices
    coloring: Dict[int, int] = {}
    saturation: List[set] = [set() for _ in range(n)]
    uncolored = set(range(n))
    while uncolored:
        v = max(uncolored,
                key=lambda u: (len(saturation[u]), graph.degree(u), -u))
        used = saturation[v]
        color = 0
        while color in used:
            color += 1
        coloring[v] = color
        uncolored.remove(v)
        for u in graph.neighbors(v):
            saturation[u].add(color)
    return coloring


def greedy_num_colors(graph: Graph) -> int:
    """Number of colors used by :func:`dsatur_coloring` (upper bound)."""
    if graph.num_vertices == 0:
        return 0
    coloring = dsatur_coloring(graph)
    return max(coloring.values()) + 1


def greedy_clique(graph: Graph) -> List[int]:
    """Grow a clique greedily from the highest-degree vertices.

    The size of the returned clique lower-bounds the chromatic number (and
    in routing terms, the channel width): all members pairwise conflict, so
    they need pairwise-distinct tracks.
    """
    clique: List[int] = []
    candidates = sorted(range(graph.num_vertices),
                        key=lambda v: graph.degree(v), reverse=True)
    for v in candidates:
        if all(graph.has_edge(v, u) for u in clique):
            clique.append(v)
    return clique


def clique_lower_bound(graph: Graph) -> int:
    """Size of the greedy clique (chromatic-number lower bound)."""
    return len(greedy_clique(graph))
