"""DIMACS ``.col`` graph format reader/writer.

The paper's tool flow emits the routing-induced coloring problem in the
DIMACS graph-coloring format so that any coloring-to-SAT translator can be
applied (§1, contribution 1).  The format:

* ``c <comment>`` lines,
* one ``p edge <vertices> <edges>`` problem line,
* ``e <u> <v>`` edge lines with **1-based** vertex ids.
"""

from __future__ import annotations

import hashlib
import io
from typing import Optional, Sequence, TextIO

from ..errors import ParseError
from .problem import Graph


def write_col(graph: Graph, stream: TextIO, comments: Sequence[str] = ()) -> None:
    """Write ``graph`` to ``stream`` in DIMACS ``.col`` format.

    Edges are emitted in sorted order, so the output is a pure function
    of the graph — ``Graph.edges()`` iterates adjacency sets whose order
    depends on insertion history, which would make otherwise-equal
    graphs serialize differently (and reproducer bundles unstable).
    """
    for comment in comments:
        stream.write(f"c {comment}\n")
    stream.write(f"p edge {graph.num_vertices} {graph.num_edges}\n")
    for u, v in sorted(graph.edges()):
        stream.write(f"e {u + 1} {v + 1}\n")


def to_col_string(graph: Graph, comments: Sequence[str] = ()) -> str:
    """Return the DIMACS ``.col`` text for ``graph``."""
    buffer = io.StringIO()
    write_col(graph, buffer, comments=comments)
    return buffer.getvalue()


def write_col_file(graph: Graph, path: str, comments: Sequence[str] = ()) -> None:
    """Write ``graph`` to the file at ``path`` in DIMACS ``.col`` format."""
    with open(path, "w", encoding="ascii") as handle:
        write_col(graph, handle, comments=comments)


def canonical_bytes(graph: Graph) -> bytes:
    """The byte-stable DIMACS serialization of ``graph``, without comments.

    Equal graphs — same vertex count, same edge *set*, whatever the edge
    insertion order — produce identical bytes (``write_col`` sorts), so
    these bytes are a valid identity for hashing: the serve cache keys
    on them, and QA reproducer bundles record the same digest.  Vertex
    relabelings are distinct instances and serialize differently.
    """
    return to_col_string(graph).encode("ascii")


def instance_digest(graph: Graph, num_colors: Optional[int] = None,
                    extra: Sequence[str] = ()) -> str:
    """SHA-256 hex digest of the canonical instance bytes.

    ``num_colors`` (the K of a coloring problem) and any ``extra``
    discriminators (strategy label, limits, …) are folded in after the
    graph bytes, each behind a NUL separator so field boundaries cannot
    be forged by concatenation.
    """
    hasher = hashlib.sha256(canonical_bytes(graph))
    if num_colors is not None:
        hasher.update(b"\x00K=%d" % num_colors)
    for field in extra:
        hasher.update(b"\x00")
        hasher.update(str(field).encode("utf-8"))
    return hasher.hexdigest()


def parse_col(stream: TextIO, source: str = "") -> Graph:
    """Parse a DIMACS ``.col`` graph from a text stream.

    Tolerates duplicate edge lines and edges listed in both directions
    (both occur in published DIMACS instances); rejects self-loops and
    out-of-range vertices.

    Malformed input raises :class:`~repro.errors.ParseError` (a
    ``ValueError`` subclass) carrying the 1-based line number and
    ``source``, never a bare ``ValueError``/``IndexError`` from
    tokenising.
    """
    graph = None
    pending = []  # (u, v, line_no) edges seen before the problem line

    def add_edge(u: int, v: int, line_no: int) -> None:
        try:
            graph.add_edge(u, v)
        except ValueError as error:
            raise ParseError(str(error), line=line_no,
                             source=source) from None

    for line_no, raw_line in enumerate(stream, start=1):
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        fields = line.split()
        if fields[0] == "p":
            if len(fields) != 4 or fields[1] not in ("edge", "edges", "col"):
                raise ParseError(f"malformed DIMACS problem line: {line!r}",
                                 line=line_no, source=source)
            if graph is not None:
                raise ParseError("multiple problem lines",
                                 line=line_no, source=source)
            try:
                num_vertices = int(fields[2])
                int(fields[3])  # edge count: must at least be a number
            except ValueError:
                raise ParseError(
                    f"non-numeric counts in problem line: {line!r}",
                    line=line_no, source=source) from None
            if num_vertices < 0:
                raise ParseError(
                    f"negative vertex count in problem line: {line!r}",
                    line=line_no, source=source)
            graph = Graph(num_vertices)
            for u, v, edge_line in pending:
                add_edge(u, v, edge_line)
            pending = []
        elif fields[0] == "e":
            if len(fields) != 3:
                raise ParseError(f"malformed edge line: {line!r}",
                                 line=line_no, source=source)
            try:
                u, v = int(fields[1]) - 1, int(fields[2]) - 1
            except ValueError:
                raise ParseError(f"non-numeric vertex in edge line: "
                                 f"{line!r}",
                                 line=line_no, source=source) from None
            if graph is None:
                pending.append((u, v, line_no))
            else:
                add_edge(u, v, line_no)
        else:
            raise ParseError(f"unrecognised DIMACS line: {line!r}",
                             line=line_no, source=source)
    if graph is None:
        raise ParseError("missing DIMACS problem line", source=source)
    return graph


def parse_col_string(text: str) -> Graph:
    """Parse a DIMACS ``.col`` graph from a string."""
    return parse_col(io.StringIO(text), source="<string>")


def parse_col_file(path: str) -> Graph:
    """Parse a DIMACS ``.col`` graph from the file at ``path``."""
    with open(path, "r", encoding="ascii") as handle:
        return parse_col(handle, source=path)
