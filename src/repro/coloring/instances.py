"""Classic graph-coloring instance families.

The paper's stage-2 tooling (coloring → SAT) is deliberately generic, and
its own §6 cites the graph-coloring literature (Van Gelder's symmetry
paper, the DIMACS challenge instances).  These generators provide the
standard families used there:

* **Mycielski graphs** — triangle-free graphs with unboundedly growing
  chromatic number: the canonical family where the clique bound is
  maximally misleading, so refutation requires genuine search.
* **Queen graphs** — the n-queens attack graph; dense, highly symmetric,
  a staple of the DIMACS coloring benchmarks.
* **Book/wheel/crown graphs** — small structured families with known
  chromatic numbers, ideal for exact tests.
"""

from __future__ import annotations

from .problem import Graph


def mycielski_graph(k: int) -> Graph:
    """The k-th Mycielski graph M_k: chromatic number k, no triangles
    beyond M_2 (K2=M_2, C5=M_3, Grötzsch graph=M_4, ...)."""
    if k < 2:
        raise ValueError("Mycielski construction starts at k = 2 (K2)")
    graph = Graph(2, [(0, 1)])
    for _ in range(k - 2):
        graph = _mycielskian(graph)
    return graph


def _mycielskian(graph: Graph) -> Graph:
    n = graph.num_vertices
    # vertices 0..n-1: originals; n..2n-1: shadows; 2n: apex.
    result = Graph(2 * n + 1)
    for u, v in graph.edges():
        result.add_edge(u, v)
        result.add_edge(u, n + v)
        result.add_edge(v, n + u)
    for shadow in range(n, 2 * n):
        result.add_edge(shadow, 2 * n)
    return result


def queen_graph(n: int) -> Graph:
    """The n×n queen graph: vertices are board squares, edges join squares
    a queen moves between.  Chromatic number is n for most n >= 5."""
    if n < 1:
        raise ValueError("board size must be positive")
    graph = Graph(n * n)
    for row_a in range(n):
        for col_a in range(n):
            a = row_a * n + col_a
            for row_b in range(n):
                for col_b in range(n):
                    b = row_b * n + col_b
                    if b <= a:
                        continue
                    same_row = row_a == row_b
                    same_col = col_a == col_b
                    same_diag = abs(row_a - row_b) == abs(col_a - col_b)
                    if same_row or same_col or same_diag:
                        graph.add_edge(a, b)
    return graph


def wheel_graph(n: int) -> Graph:
    """W_n: a cycle of n rim vertices plus a hub joined to all of them.
    Chromatic number 3 for even n, 4 for odd n."""
    if n < 3:
        raise ValueError("a wheel needs at least 3 rim vertices")
    graph = Graph(n + 1)
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
        graph.add_edge(i, n)
    return graph


def book_graph(pages: int) -> Graph:
    """The triangular book B_p: p triangles sharing one common edge.
    Chromatic number 3."""
    if pages < 1:
        raise ValueError("a book needs at least one page")
    graph = Graph(pages + 2)
    graph.add_edge(0, 1)  # spine
    for page in range(pages):
        vertex = page + 2
        graph.add_edge(0, vertex)
        graph.add_edge(1, vertex)
    return graph


def crown_graph(n: int) -> Graph:
    """The crown S_n^0: K_{n,n} minus a perfect matching.  Bipartite
    (chromatic number 2) yet maximally confusing for greedy orderings."""
    if n < 3:
        raise ValueError("crown graphs need n >= 3")
    graph = Graph(2 * n)
    for i in range(n):
        for j in range(n):
            if i != j:
                graph.add_edge(i, n + j)
    return graph
