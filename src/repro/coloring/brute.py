"""Exact (exponential-time) coloring for small graphs — the testing oracle.

The property-based tests certify each SAT encoding against this
implementation: for random small graphs and every color budget K, the
encoded CNF must be satisfiable exactly when a K-coloring exists.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .problem import Graph

_MAX_BRUTE_VERTICES = 16


def find_coloring(graph: Graph, num_colors: int) -> Optional[Dict[int, int]]:
    """Return a proper ``num_colors``-coloring, or None if none exists.

    Backtracking with symmetry pruning: vertex ``i`` may only use colors
    ``0..min(i, K-1)`` relative to the colors already introduced, which is
    sound because color names are interchangeable.
    """
    if graph.num_vertices > _MAX_BRUTE_VERTICES:
        raise ValueError(
            f"refusing brute-force coloring of {graph.num_vertices} vertices "
            f"(limit {_MAX_BRUTE_VERTICES})")
    if num_colors < 1:
        raise ValueError("num_colors must be at least 1")
    n = graph.num_vertices
    assignment: List[int] = [-1] * n

    def backtrack(v: int, used: int) -> bool:
        if v == n:
            return True
        limit = min(used + 1, num_colors)
        for color in range(limit):
            if all(assignment[u] != color for u in graph.neighbors(v)
                   if assignment[u] != -1 and u < v):
                assignment[v] = color
                if backtrack(v + 1, max(used, color + 1)):
                    return True
                assignment[v] = -1
        return False

    if not backtrack(0, 0):
        return None
    return {v: assignment[v] for v in range(n)}


def is_colorable(graph: Graph, num_colors: int) -> bool:
    """Return True iff a proper ``num_colors``-coloring exists."""
    return find_coloring(graph, num_colors) is not None


def chromatic_number(graph: Graph) -> int:
    """Exact chromatic number of a small graph (0 for the empty graph)."""
    if graph.num_vertices == 0:
        return 0
    for k in range(1, graph.num_vertices + 1):
        if is_colorable(graph, k):
            return k
    raise AssertionError("unreachable: every graph is n-colorable")
