"""The shared result contract: statuses, budgets, reports, cancellation.

Every layer that runs a solver — the raw CDCL engines, the coloring
pipeline, the incremental width search, the portfolio race, the batch
runner and the CLI — answers with the same vocabulary defined here:

* :class:`SolveStatus` — the five-way outcome that replaces bare
  ``satisfiable`` booleans.  TIMEOUT / BUDGET_EXHAUSTED / ERROR are
  first-class results, not exceptions, which is what makes portfolio
  members and benchmark jobs killable without losing their partial
  statistics.
* :class:`SolveLimits` — the caller-side resource budget (conflicts,
  propagations, wall-clock seconds) applied to one solve call.
* :class:`CancelToken` — cooperative cancellation: the controller sets
  it, the solver observes it at conflict/decision boundaries and
  returns a TIMEOUT result promptly with its state intact.
* :class:`SolveReport` — the flat summary shape every orchestration
  layer exposes, so the pipeline, portfolio, CLI and bench harness all
  consume one result contract.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional


class SolveStatus(Enum):
    """Outcome of a (possibly resource-bounded) solve.

    ``SAT`` and ``UNSAT`` are *decided* answers; the other three mean
    the question is still open:

    * ``TIMEOUT`` — the wall-clock limit elapsed, or the run was
      cancelled by a :class:`CancelToken` (a deadline imposed from
      outside rather than from the config).
    * ``BUDGET_EXHAUSTED`` — a conflict or propagation budget ran out.
    * ``ERROR`` — the run failed (worker crash, exception); details in
      the report's ``detail`` field.
    """

    SAT = "SAT"
    UNSAT = "UNSAT"
    TIMEOUT = "TIMEOUT"
    BUDGET_EXHAUSTED = "BUDGET_EXHAUSTED"
    ERROR = "ERROR"

    @property
    def decided(self) -> bool:
        """True for the two definitive answers, SAT and UNSAT."""
        return self in (SolveStatus.SAT, SolveStatus.UNSAT)

    @property
    def exit_code(self) -> int:
        """DIMACS solver exit-code convention.

        10 = SAT, 20 = UNSAT, 0 = unknown (timeout / budget), and 2 for
        ERROR (matching the CLI's usage-error code).
        """
        if self is SolveStatus.SAT:
            return 10
        if self is SolveStatus.UNSAT:
            return 20
        if self is SolveStatus.ERROR:
            return 2
        return 0

    @classmethod
    def from_bool(cls, satisfiable: bool) -> "SolveStatus":
        """Lift a legacy ``satisfiable`` boolean into a status.

        .. deprecated:: 1.6
           Part of the pre-status compatibility layer.  Write
           ``SolveStatus.SAT`` / ``SolveStatus.UNSAT`` directly — the
           boolean form cannot express the three undecided statuses.
           See the migration table in ``docs/api.md``.
        """
        warnings.warn(
            "SolveStatus.from_bool() is deprecated; use SolveStatus.SAT "
            "or SolveStatus.UNSAT directly (docs/api.md has the "
            "migration table)", DeprecationWarning, stacklevel=2)
        return cls.SAT if satisfiable else cls.UNSAT

    def __str__(self) -> str:
        return self.value


class CancelToken:
    """A cooperative cancellation flag shared by a controller and workers.

    The controller calls :meth:`cancel`; solvers poll :attr:`cancelled`
    at conflict and decision boundaries and wind down with a TIMEOUT
    result instead of being killed mid-propagation.  The default backing
    event is a :class:`threading.Event`; pass a
    ``multiprocessing.Event`` (see :meth:`for_context`) to share the
    token across processes — the portfolio and batch runners do exactly
    that to stop losers promptly.
    """

    def __init__(self, event=None) -> None:
        self._event = event if event is not None else threading.Event()

    @classmethod
    def for_context(cls, context) -> "CancelToken":
        """A token backed by ``context.Event()`` of a multiprocessing
        context, shareable with fork/spawn workers."""
        return cls(context.Event())

    def cancel(self) -> None:
        """Request cancellation (idempotent, thread/process-safe)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.is_set()

    @property
    def event(self):
        """The backing event (for handing to worker processes)."""
        return self._event

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "live"
        return f"CancelToken({state})"


@dataclass(frozen=True)
class SolveLimits:
    """Resource budget for one solve call.

    All fields are optional; ``None`` means unlimited.  Budgets are
    checked on conflict boundaries (and the wall clock additionally on
    decision boundaries), so the hot BCP path is untouched and an
    unbudgeted solve follows a bit-identical trajectory.

    Attributes
    ----------
    conflict_budget:
        Stop with BUDGET_EXHAUSTED once this many conflicts occurred
        *within the call* (per-query for incremental solving).
    propagation_budget:
        Same, counted in propagated literals.
    wall_clock_limit:
        Stop with TIMEOUT after this many seconds.
    """

    conflict_budget: Optional[int] = None
    propagation_budget: Optional[int] = None
    wall_clock_limit: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("conflict_budget", "propagation_budget"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.wall_clock_limit is not None and self.wall_clock_limit <= 0:
            raise ValueError("wall_clock_limit must be positive")

    @property
    def unlimited(self) -> bool:
        return (self.conflict_budget is None
                and self.propagation_budget is None
                and self.wall_clock_limit is None)

    def as_config_kwargs(self) -> Dict[str, object]:
        """The non-None fields as ``SolverConfig`` override kwargs."""
        kwargs: Dict[str, object] = {}
        if self.conflict_budget is not None:
            kwargs["conflict_budget"] = self.conflict_budget
        if self.propagation_budget is not None:
            kwargs["propagation_budget"] = self.propagation_budget
        if self.wall_clock_limit is not None:
            kwargs["wall_clock_limit"] = self.wall_clock_limit
        return kwargs

    def merge(self, other: Optional["SolveLimits"]) -> "SolveLimits":
        """Combine two budgets, keeping the tighter bound per axis."""
        if other is None:
            return self

        def tighter(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return min(a, b)

        return SolveLimits(
            conflict_budget=tighter(self.conflict_budget,
                                    other.conflict_budget),
            propagation_budget=tighter(self.propagation_budget,
                                       other.propagation_budget),
            wall_clock_limit=tighter(self.wall_clock_limit,
                                     other.wall_clock_limit))

    def with_wall_clock(self, seconds: Optional[float]) -> "SolveLimits":
        """This budget with the wall clock tightened to ``seconds``
        (a no-op when ``seconds`` is None)."""
        if seconds is None:
            return self
        return self.merge(SolveLimits(wall_clock_limit=seconds))


@dataclass
class SolveReport:
    """Flat, serialisable summary of one solve — the shared shape the
    pipeline, portfolio, batch runner and CLI all hand to callers."""

    status: SolveStatus
    wall_time: float = 0.0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    solver: str = ""
    #: Human-readable amplification: stop reason, error message, winner.
    detail: str = ""
    #: The full stats dict of the underlying run, when available.
    stats: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_stats(cls, status: SolveStatus, stats: Optional[Dict],
                   detail: str = "") -> "SolveReport":
        """Build a report from a solver ``stats`` dict."""
        stats = dict(stats or {})
        return cls(
            status=status,
            wall_time=float(stats.get("solve_time", 0.0)),
            conflicts=int(stats.get("conflicts", 0)),
            decisions=int(stats.get("decisions", 0)),
            propagations=int(stats.get("propagations", 0)),
            restarts=int(stats.get("restarts", 0)),
            solver=str(stats.get("solver", "")),
            detail=detail or str(stats.get("stop_reason", "")),
            stats=stats,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict (status by name, stats dict included)."""
        return {
            "status": self.status.value,
            "wall_time": self.wall_time,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "solver": self.solver,
            "detail": self.detail,
        }

    def __repr__(self) -> str:
        return (f"SolveReport({self.status}, {self.wall_time:.3f}s, "
                f"{self.conflicts} conflicts)")
