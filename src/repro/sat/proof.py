"""RUP/DRUP clausal proof checking.

A clausal proof of unsatisfiability is a sequence of clauses ending with
the empty clause, each of which is *RUP* (Reverse Unit Propagation) with
respect to the original formula plus the previously derived clauses:
asserting the negation of all its literals and running unit propagation
yields a conflict.  CDCL learned clauses have this property, so the
sequence a solver learns on the way to UNSAT — which
:class:`~repro.sat.solver.cdcl.CDCLSolver` records when
``config.proof_log`` is set — is exactly such a proof.

This checker is deliberately independent of the solver: it shares no
code with the CDCL implementation beyond the literal convention, so a
solver bug cannot silently certify itself.  For the routing pipeline
this closes the loop on the paper's headline capability: an
"unroutable" verdict comes with a certificate a few hundred lines of
unrelated code can validate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from .cnf import CNF
from .literals import clause_to_codes, lit_to_code

Clause = Tuple[int, ...]

_TRUE = 1
_FALSE = -1
_UNDEF = 0


class ProofError(Exception):
    """Raised when a proof step is not RUP (the proof is invalid)."""


class _Propagator:
    """Incremental two-watched-literal unit propagation over a growing
    clause database, with a permanent (root) trail and temporary
    assumption levels for RUP checks."""

    def __init__(self, num_vars: int) -> None:
        self.num_vars = num_vars
        self._values: List[int] = [_UNDEF] * (2 * num_vars + 2)
        self._watches: List[List[List[int]]] = \
            [[] for _ in range(2 * num_vars + 2)]
        self._trail: List[int] = []
        self._qhead = 0
        self.contradiction = False

    def _assign(self, code: int) -> bool:
        """Assign a literal true; False if it contradicts the assignment."""
        value = self._values[code]
        if value == _TRUE:
            return True
        if value == _FALSE:
            return False
        self._values[code] = _TRUE
        self._values[code ^ 1] = _FALSE
        self._trail.append(code)
        return True

    def add_clause(self, clause: Sequence[int]) -> None:
        """Add a clause permanently and propagate at the root level."""
        if self.contradiction:
            return
        codes = clause_to_codes(clause)
        if codes is None:
            return  # tautology: irrelevant for propagation
        # Move non-false literals to the watch positions.
        codes.sort(key=lambda c: self._values[c] == _FALSE)
        if not codes or self._values[codes[0]] == _FALSE:
            self.contradiction = True
            return
        if len(codes) == 1 or self._values[codes[1]] == _FALSE:
            if not self._assign(codes[0]):
                self.contradiction = True
                return
            if len(codes) > 1:
                self._watch(codes)
            self._propagate_root()
            return
        self._watch(codes)

    def _watch(self, codes: List[int]) -> None:
        self._watches[codes[0]].append(codes)
        self._watches[codes[1]].append(codes)

    def _propagate_root(self) -> None:
        if self._propagate() is not None:
            self.contradiction = True
        self._qhead = len(self._trail)

    def _propagate(self) -> Optional[List[int]]:
        """Propagate queued assignments; returns a conflicting clause's
        codes, or None."""
        values = self._values
        watches = self._watches
        while self._qhead < len(self._trail):
            propagated = self._trail[self._qhead]
            self._qhead += 1
            false_code = propagated ^ 1
            watchers = watches[false_code]
            i = 0
            j = 0
            count = len(watchers)
            while i < count:
                codes = watchers[i]
                i += 1
                if codes[0] == false_code:
                    codes[0], codes[1] = codes[1], codes[0]
                first = codes[0]
                if values[first] == _TRUE:
                    watchers[j] = codes
                    j += 1
                    continue
                moved = False
                for k in range(2, len(codes)):
                    if values[codes[k]] != _FALSE:
                        codes[1], codes[k] = codes[k], codes[1]
                        watches[codes[1]].append(codes)
                        moved = True
                        break
                if moved:
                    continue
                watchers[j] = codes
                j += 1
                if values[first] == _FALSE:
                    while i < count:
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    del watchers[j:]
                    return codes
                self._assign(first)
            del watchers[j:]
        return None

    def rup_check(self, clause: Sequence[int]) -> bool:
        """Is the clause RUP with respect to the current database?

        Leaves the permanent state untouched."""
        if self.contradiction:
            return True
        mark = len(self._trail)
        saved_qhead = self._qhead
        try:
            for lit in clause:
                code = lit_to_code(lit)
                if self._values[code] == _TRUE:
                    return True  # negation immediately contradictory
                if not self._assign(code ^ 1):
                    return True
            return self._propagate() is not None
        finally:
            for code in self._trail[mark:]:
                self._values[code] = _UNDEF
                self._values[code ^ 1] = _UNDEF
            del self._trail[mark:]
            self._qhead = min(saved_qhead, mark)


def check_rup_proof(cnf: CNF, proof: Iterable[Sequence[int]],
                    require_empty_clause: bool = True) -> int:
    """Verify a clausal UNSAT proof against ``cnf``.

    Returns the number of verified steps.  Raises :class:`ProofError` on
    the first step that is not RUP, or (when ``require_empty_clause``) if
    the proof does not derive the empty clause.
    """
    propagator = _Propagator(cnf.num_vars)
    for clause in cnf:
        propagator.add_clause(clause)
    derived_empty = propagator.contradiction
    steps = 0
    for step, clause in enumerate(proof):
        clause = tuple(clause)
        for lit in clause:
            if lit == 0 or abs(lit) > cnf.num_vars:
                raise ProofError(
                    f"proof step {step} mentions literal {lit}, outside "
                    f"the formula's variables 1..{cnf.num_vars}")
        if not propagator.rup_check(clause):
            raise ProofError(f"proof step {step} is not RUP: {clause}")
        propagator.add_clause(clause)
        steps += 1
        if not clause or propagator.contradiction:
            derived_empty = True
    if require_empty_clause and not derived_empty:
        raise ProofError("proof does not derive the empty clause")
    return steps


@dataclass(frozen=True)
class ProofCheckResult:
    """Outcome of a non-raising proof verification.

    ``ok`` is True iff every step was RUP and the empty clause was
    derived; ``steps`` counts the steps verified before success or
    failure; ``error`` carries the checker's message when ``ok`` is
    False.
    """

    ok: bool
    steps: int = 0
    error: str = ""

    def __bool__(self) -> bool:
        return self.ok


def verify_rup_proof(cnf: CNF, proof: Iterable[Sequence[int]],
                     require_empty_clause: bool = True) -> ProofCheckResult:
    """Non-raising variant of :func:`check_rup_proof`.

    The audit layer (:mod:`repro.reliability.audit`) treats an invalid
    proof as a *finding*, not an exception — this wrapper turns
    :class:`ProofError` into a structured :class:`ProofCheckResult`.
    """
    proof = [tuple(clause) for clause in proof]
    try:
        steps = check_rup_proof(cnf, proof,
                                require_empty_clause=require_empty_clause)
    except ProofError as error:
        return ProofCheckResult(ok=False, steps=len(proof),
                                error=str(error))
    return ProofCheckResult(ok=True, steps=steps)


def solve_with_proof(cnf: CNF, config=None):
    """Solve ``cnf`` with proof logging on; returns (result, proof).

    On UNSAT the proof is a checkable certificate; on SAT it is the
    (valid but uninteresting) list of clauses learned along the way.
    """
    from .solver.cdcl import CDCLSolver
    from .solver.config import SolverConfig
    import dataclasses

    if config is None:
        config = SolverConfig(proof_log=True)
    elif not config.proof_log:
        config = dataclasses.replace(config, proof_log=True)
    solver = CDCLSolver(cnf, config)
    result = solver.solve()
    return result, list(solver.proof)
