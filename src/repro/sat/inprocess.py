"""Inter-restart inprocessing for the CDCL engines.

:mod:`repro.sat.simplify` preprocesses a formula *before* the search;
this module simplifies the solver's live clause database *during* it, at
restart boundaries, where the trail is back at the root level and the
arena can be rewritten safely.  Three classic techniques, each bounded
by a work budget so a pass is a slice of the search rather than a detour:

* **Subsumption / self-subsuming resolution** — delete clauses implied
  by a subset clause; strengthen a clause ``D`` by resolving away one
  literal when a clause ``C`` matches ``D`` except for that literal's
  complement.  Uses occurrence lists plus 64-bit literal signatures as
  a subset prefilter, and loops to a fixpoint (bounded), so a second
  invocation on an unchanged database is a no-op.
* **Vivification** — for a learned clause ``(l1 ... lk)``, assume
  ``¬l1, ¬l2, ...`` in order, propagating after each: a conflict proves
  the assumed prefix is already a clause (shorten to it), an implied
  ``li`` proves the prefix plus ``li`` is one, and a falsified ``li``
  is redundant.  The clause is detached during the probe so it cannot
  propagate itself.
* **Bounded variable elimination (BVE)** — resolve a variable out of
  the formula when the non-tautological resolvents do not outnumber
  the clauses they replace.  The replaced clauses are saved so a model
  of the reduced formula extends back over the eliminated variable
  (:meth:`Inprocessor.extend`), exactly like
  :meth:`repro.sat.simplify.Simplification.extend_model`.

Every derived clause (strengthened, vivified, resolvent, new root unit)
is RUP with respect to the database it was derived from, so when
``config.proof_log`` is set each one is appended to ``solver.proof`` —
the recorded UNSAT proof still replays through the independent checker
in :mod:`repro.sat.proof` (clause *deletions* never invalidate a RUP
proof because the checker only accumulates).

The inprocessor mutates the solver's internal arena through the same
small set of primitives both the arena and packed engines share
(``_attach``, ``_delete_clause``, ``_enqueue``, ``_propagate``,
``_cancel_until``), so one implementation serves both.  Fault-injection
hooks (site ``inprocess``): ``drop_resolvent`` silently omits one BVE
resolvent and ``skip_occurrence`` deletes one clause as if a stale
occurrence entry had matched — both weaken the formula the way a real
inprocessing bug would, and the audit / differential layers must flag
the consequences (see :mod:`repro.reliability.faults`).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..obs import trace as obs_trace

_UNDEF = 0
_TRUE = 1
_FALSE = -1

#: Clauses longer than this stay outside the generic subsumption pass
#: entirely — they are not even indexed, which keeps the per-pass
#: occurrence build proportional to the (stable, mostly-original) short
#: clauses instead of the growing learnt database.  Long learnt clauses
#: are still strengthened, by the binary-resolution phase.
SUBSUME_LEN_CAP = 20

#: Only learned clauses in this length range are vivification candidates.
VIVIFY_MIN_LEN = 3
VIVIFY_LEN_CAP = 16

#: Vivification candidates per pass (the cheapest-first prefix).
VIVIFY_CAP_PER_PASS = 150

#: A variable with more positive or negative occurrences than this is
#: never eliminated (occurrence explosion guard).
BVE_OCC_CAP = 16

#: Resolvents longer than this veto the elimination producing them.
BVE_RESOLVENT_LEN_CAP = 16

#: Subsumption fixpoint rounds per pass (a backstop; the tick budget is
#: the real bound).
_SUBSUME_MAX_ROUNDS = 4

#: Stats counters the inprocessor maintains on ``solver.stats``.
STAT_KEYS = ("inprocess_passes", "subsumed_clauses", "strengthened_clauses",
             "vivified_clauses", "eliminated_vars", "bve_resolvents")


def _dimacs(codes: Sequence[int]) -> Tuple[int, ...]:
    """Literal codes as a DIMACS clause (the proof-log convention)."""
    return tuple(code >> 1 if not code & 1 else -(code >> 1)
                 for code in codes)


class Inprocessor:
    """Inter-restart simplification of one solver's clause database.

    Constructed once per solver (when ``config.inprocessing`` is set)
    and invoked via :meth:`run` at the start of a search and at restart
    boundaries.  The instance owns the eliminated-variable stack, so it
    must live as long as the solver does — model extension on a later
    incremental call still needs it.
    """

    def __init__(self, solver) -> None:
        self.solver = solver
        #: (var, saved clauses containing it) in elimination order.
        self._eliminated_stack: List[Tuple[int, List[List[int]]]] = []
        self._ticks = 0
        self._deadline: Optional[float] = None
        #: Clause refs below this existed at the end of the previous
        #: pass; the per-pass binary-strengthening phase only visits
        #: refs at or above it (the clauses learned since).
        self._seen_refs = 0
        #: Root-trail length after the last full clean — when the trail
        #: has not grown since, the O(arena) clean scan is skipped.
        self._cleaned_at = -1
        #: BVE runs once per solver (its value is front-loaded; later
        #: passes would rebuild a full occurrence index over the grown
        #: learnt DB only to find the occurrence caps block everything).
        self._bve_done = False
        stats = solver.stats
        for key in STAT_KEYS:
            stats.setdefault(key, 0)

    # ------------------------------------------------------------------
    # Budget plumbing
    # ------------------------------------------------------------------

    def _expired(self) -> bool:
        return (self._ticks <= 0
                or (self._deadline is not None
                    and time.perf_counter() >= self._deadline))

    # ------------------------------------------------------------------
    # Clause-database primitives
    # ------------------------------------------------------------------

    def _log(self, codes: Sequence[int]) -> None:
        if self.solver.config.proof_log:
            self.solver.proof.append(_dimacs(codes))

    def _attach_derived(self, codes: Sequence[int], learnt: bool = False,
                        act: float = 0.0, lbd: int = 0) -> int:
        """Add a *derived* clause (logged to the proof when recording).

        Literals already decided at the root are resolved away here, so
        the watch invariants hold for whatever is attached.  Returns
        the new clause ref, or -1 when nothing was attached (clause
        satisfied at root, collapsed to a unit, or refuted — the last
        clears ``solver._ok``).
        """
        solver = self.solver
        values = solver._values
        kept: List[int] = []
        for code in codes:
            value = values[code]
            if value == _TRUE:
                return -1  # satisfied at root: nothing to add
            if value == _UNDEF:
                kept.append(code)
        self._log(kept)
        if not kept:
            solver._ok = False
            return -1
        if len(kept) == 1:
            solver._enqueue(kept[0], -1)
            return -1
        ref = solver._attach(list(kept), learnt=learnt)
        solver._clause_act[ref] = act
        solver._lbd[ref] = min(lbd, len(kept)) if lbd else 0
        return ref

    def _replace(self, ref: int, codes: Sequence[int]) -> int:
        """Swap clause ``ref`` for the (strengthened) ``codes``."""
        solver = self.solver
        learnt = bool(solver._learnt[ref])
        act = solver._clause_act[ref]
        lbd = solver._lbd[ref]
        solver._delete_clause(ref)
        return self._attach_derived(codes, learnt=learnt, act=act, lbd=lbd)

    def _codes(self, ref: int) -> List[int]:
        solver = self.solver
        off = solver._coff[ref]
        return list(solver._arena[off:off + solver._clen[ref]])

    def _root_propagate(self) -> bool:
        """Propagate pending root units; False on a root conflict.

        Root-implied variables keep no reason pointers (analysis never
        dereferences level-0 reasons), which frees every clause for
        deletion or rebuilding during the pass.
        """
        solver = self.solver
        if solver._propagate() != -1:
            solver._ok = False
            return False
        reason = solver._reason
        for code in solver._trail:
            reason[code >> 1] = -1
        return True

    # ------------------------------------------------------------------
    # The pass
    # ------------------------------------------------------------------

    def run(self, frozen: Set[int] = frozenset(),
            deadline: Optional[float] = None) -> None:
        """One inprocessing pass at the root level.

        ``frozen`` variables (the current call's assumptions) are never
        eliminated.  ``deadline`` is the solve call's wall-clock limit;
        it is checked between phases and candidates, and the per-pass
        tick budget (``config.inprocess_ticks``) bounds the occurrence
        work, so a pass cannot overrun the caller's budgets by more
        than one bounded step.
        """
        solver = self.solver
        if solver._trail_lim:
            raise RuntimeError("inprocessing requires the root level")
        if not solver._ok:
            return
        config = solver.config
        self._ticks = config.inprocess_ticks
        self._deadline = deadline
        if not self._root_propagate():
            return
        self._clean()
        if solver._ok and config.inprocess_subsume:
            self._subsume()
        if solver._ok and config.inprocess_vivify and not self._expired():
            self._vivify()
        if solver._ok and config.inprocess_bve and not self._bve_done \
                and not self._expired():
            self._bve(frozen)
            self._bve_done = True
        if solver._ok:
            self._root_propagate()
        self._seen_refs = len(solver._clen)
        solver.stats["inprocess_passes"] += 1

    # ------------------------------------------------------------------
    # Phase 0: root-level clean-up
    # ------------------------------------------------------------------

    def _clean(self) -> None:
        """Drop root-satisfied clauses, strip root-falsified literals.

        Skipped entirely when no new root assignment has appeared since
        the previous clean: conflict analysis never puts root-assigned
        variables into learnt clauses and :meth:`_attach_derived`
        filters them at attach time, so without new root facts there is
        nothing for the scan to find.
        """
        solver = self.solver
        if len(solver._trail) == self._cleaned_at:
            return
        values = solver._values
        clen = solver._clen
        coff = solver._coff
        arena = solver._arena
        for ref in range(len(clen)):
            length = clen[ref]
            if length == 0:
                continue
            off = coff[ref]
            codes = arena[off:off + length]
            satisfied = False
            falsified = 0
            for code in codes:
                value = values[code]
                if value == _TRUE:
                    satisfied = True
                    break
                if value == _FALSE:
                    falsified += 1
            if satisfied:
                solver._delete_clause(ref)
                continue
            if not falsified:
                continue
            kept = [code for code in codes if values[code] == _UNDEF]
            if (len(kept) >= 2 and values[codes[0]] == _UNDEF
                    and values[codes[1]] == _UNDEF):
                # Watched slots survive: shrink in place (watcher
                # records and blockers all stay valid).
                for position, code in enumerate(kept):
                    arena[off + position] = code
                clen[ref] = len(kept)
                solver._arena_dead += length - len(kept)
                self._log(kept)
            else:
                self._replace(ref, kept)
                if not solver._ok:
                    return
        self._root_propagate()
        self._cleaned_at = len(solver._trail)

    # ------------------------------------------------------------------
    # Phase 1: subsumption + self-subsuming resolution
    # ------------------------------------------------------------------

    def _occurrence_index(self, max_len: Optional[int] = None):
        """Occurrence lists and 64-bit signatures over live clauses.

        With ``max_len`` set, longer clauses are skipped without
        touching their literals — subsumption indexes only the short
        clauses it can act on, while BVE (which must see *every*
        occurrence of a variable to eliminate it soundly) indexes all.
        """
        solver = self.solver
        clen = solver._clen
        coff = solver._coff
        arena = solver._arena
        occ: Dict[int, List[int]] = {}
        sigs = [0] * len(clen)
        visited = 0
        for ref in range(len(clen)):
            length = clen[ref]
            if length == 0 or (max_len is not None and length > max_len):
                continue
            off = coff[ref]
            sig = 0
            for code in arena[off:off + length]:
                occ.setdefault(code, []).append(ref)
                sig |= 1 << (code & 63)
            sigs[ref] = sig
            visited += length
        self._ticks -= visited
        return occ, sigs

    def _strengthen(self, ref: int, remove: int, occ, sigs) -> None:
        """Remove literal ``remove`` from clause ``ref`` (sound: the
        caller established it via self-subsuming resolution)."""
        solver = self.solver
        clen = solver._clen
        coff = solver._coff
        arena = solver._arena
        length = clen[ref]
        off = coff[ref]
        position = arena.index(remove, off, off + length) - off
        if position >= 2:
            # Not a watched slot: swap with the last literal and shrink.
            arena[off + position] = arena[off + length - 1]
            clen[ref] = length - 1
            solver._arena_dead += 1
            codes = arena[off:off + length - 1]
            sig = 0
            for code in codes:
                sig |= 1 << (code & 63)
            sigs[ref] = sig
            self._log(codes)
        else:
            codes = [code for code in self._codes(ref) if code != remove]
            new = self._replace(ref, codes)
            sigs[ref] = 0
            if new >= 0:
                sig = 0
                for code in codes:
                    occ.setdefault(code, []).append(new)
                    sig |= 1 << (code & 63)
                while len(sigs) <= new:
                    sigs.append(0)
                sigs[new] = sig
        solver.stats["strengthened_clauses"] += 1

    def _subsume(self) -> None:
        solver = self.solver
        stats = solver.stats
        clen = solver._clen
        injector = getattr(solver, "_injector", None)
        with obs_trace.span("inprocess.subsume") as span:
            strengthened_before = stats["strengthened_clauses"]
            subsumed = 0
            rounds = 0
            # The full fixpoint runs once, on the first pass: the short
            # clauses it scans are almost entirely originals, so later
            # passes would redo the same O(short DB) scan to find
            # nothing (the clauses are already at fixpoint and new
            # learnt clauses are rarely short).  Clauses added later
            # are still strengthened — by the per-pass binary phase.
            changed = self._seen_refs == 0
            while changed and rounds < _SUBSUME_MAX_ROUNDS \
                    and not self._expired():
                changed = False
                rounds += 1
                occ, sigs = self._occurrence_index(SUBSUME_LEN_CAP)
                order = sorted(
                    (ref for ref in range(len(clen)) if clen[ref]),
                    key=clen.__getitem__)
                for ref in order:
                    if self._expired():
                        break
                    length = clen[ref]
                    if length == 0 or length > SUBSUME_LEN_CAP:
                        continue
                    codes = self._codes(ref)
                    cset = set(codes)
                    sig = sigs[ref]
                    # Forward subsumption: candidates must contain this
                    # clause's rarest literal.
                    rarest = min(codes, key=lambda c: len(occ.get(c, ())))
                    for other in occ.get(rarest, ()):
                        self._ticks -= 1
                        if other == ref:
                            continue
                        other_len = clen[other]
                        if other_len < length or other_len == 0:
                            continue
                        if sig & ~sigs[other]:
                            continue
                        self._ticks -= other_len
                        is_superset = cset <= set(self._codes(other))
                        if not is_superset and injector is not None \
                                and injector.fire("skip_occurrence") \
                                is not None:
                            # Injected bookkeeping bug: a stale
                            # occurrence entry "matches" a clause it
                            # should not, deleting a live constraint.
                            is_superset = True
                        if is_superset:
                            solver._delete_clause(other)
                            subsumed += 1
                            changed = True
                    # Self-subsuming resolution: strengthen a clause
                    # containing ``¬l`` and the rest of this one.
                    for lit in codes:
                        neg = lit ^ 1
                        rest = cset - {lit}
                        sig_rest = sig & ~(1 << (lit & 63))
                        for other in occ.get(neg, ()):
                            self._ticks -= 1
                            if other == ref:
                                continue
                            other_len = clen[other]
                            if other_len < length or other_len == 0:
                                continue
                            if sig_rest & ~sigs[other]:
                                continue
                            self._ticks -= other_len
                            oset = set(self._codes(other))
                            if neg in oset and rest <= oset - {neg}:
                                self._strengthen(other, neg, occ, sigs)
                                changed = True
                                if not solver._ok:
                                    return
                if not self._root_propagate():
                    return
            if solver._ok and not self._expired():
                self._strengthen_with_binaries()
            stats["subsumed_clauses"] += subsumed
            span.set("subsumed", subsumed)
            span.set("strengthened",
                     stats["strengthened_clauses"] - strengthened_before)
            span.set("rounds", rounds)

    def _strengthen_with_binaries(self) -> None:
        """Self-subsuming resolution against binary clauses only, applied
        to clauses attached since the previous pass.

        This is the phase that reaches the *long* learnt clauses the
        capped generic pass skips: a clause ``D ⊇ {¬a, b}`` resolves
        with a binary ``(a ∨ b)`` to drop ``¬a``.  The binary adjacency
        map is tiny (the live binaries, mostly original edge-conflict
        clauses), each clause needs one dictionary probe per literal,
        and only the new-since-last-pass suffix of the database is
        visited — so the phase stays cheap even as the learnt database
        grows.  Removals chain (dropping one literal can enable the
        next) and each is an ordinary resolution step, so the final
        clause is RUP against the database and is logged as usual.
        """
        solver = self.solver
        clen = solver._clen
        coff = solver._coff
        arena = solver._arena
        binmap: Dict[int, List[int]] = {}
        for ref in range(len(clen)):
            if clen[ref] == 2:
                off = coff[ref]
                first, second = arena[off], arena[off + 1]
                binmap.setdefault(first, []).append(second)
                binmap.setdefault(second, []).append(first)
        self._ticks -= len(clen) - self._seen_refs
        if not binmap:
            return
        empty: Tuple[int, ...] = ()
        for ref in range(self._seen_refs, len(clen)):
            if self._expired():
                break
            length = clen[ref]
            if length < 2:
                continue
            off = coff[ref]
            codes = list(arena[off:off + length])
            cur = set(codes)
            self._ticks -= length
            removed = False
            changed = True
            while changed:
                changed = False
                for code in list(cur):
                    for partner in binmap.get(code ^ 1, empty):
                        self._ticks -= 1
                        if partner != code and partner in cur:
                            cur.discard(code)
                            removed = True
                            changed = True
                            break
            if not removed:
                continue
            kept = [code for code in codes if code in cur]
            new = self._replace(ref, kept)
            solver.stats["strengthened_clauses"] += 1
            if not solver._ok:
                return
            if new >= 0 and clen[new] == 2:
                noff = coff[new]
                first, second = arena[noff], arena[noff + 1]
                binmap.setdefault(first, []).append(second)
                binmap.setdefault(second, []).append(first)
        self._root_propagate()

    # ------------------------------------------------------------------
    # Phase 2: vivification
    # ------------------------------------------------------------------

    def _vivify(self) -> None:
        solver = self.solver
        values = solver._values
        clen = solver._clen
        learnt = solver._learnt
        lbd = solver._lbd
        stats = solver.stats
        with obs_trace.span("inprocess.vivify") as span:
            candidates = [ref for ref in range(len(clen))
                          if learnt[ref]
                          and VIVIFY_MIN_LEN <= clen[ref] <= VIVIFY_LEN_CAP]
            candidates.sort(key=lambda ref: (lbd[ref] or VIVIFY_LEN_CAP,
                                             clen[ref]))
            shortened_count = deleted_count = 0
            for ref in candidates[:VIVIFY_CAP_PER_PASS]:
                if self._expired():
                    break
                if clen[ref] == 0:
                    continue
                codes = [code for code in self._codes(ref)
                         if values[code] != _FALSE]
                if any(values[code] == _TRUE for code in codes):
                    solver._delete_clause(ref)  # root-satisfied
                    continue
                if len(codes) < 2:
                    # Collapsed under root assignments; _replace handles
                    # the unit/empty cases.
                    self._replace(ref, codes)
                    if not solver._ok:
                        return
                    continue
                act = solver._clause_act[ref]
                clause_lbd = lbd[ref]
                # Detach first so the clause cannot propagate itself.
                solver._delete_clause(ref)
                props_before = stats["propagations"]
                kept: List[int] = []
                conflicted = False
                for code in codes:
                    value = values[code]
                    if value == _TRUE:
                        # ¬(prefix) propagated this literal: the prefix
                        # plus it already is a clause.
                        kept.append(code)
                        break
                    if value == _FALSE:
                        continue  # implied false: redundant literal
                    kept.append(code)
                    solver._trail_lim.append(len(solver._trail))
                    solver._enqueue(code ^ 1, -1)
                    if solver._propagate() != -1:
                        conflicted = True
                        break
                solver._cancel_until(0)
                self._ticks -= (stats["propagations"] - props_before
                                + len(codes))
                if conflicted and len(kept) == len(codes):
                    # ¬(whole clause) conflicts: the clause is implied
                    # by the rest of the database — drop it for good.
                    deleted_count += 1
                    continue
                if len(kept) < len(codes):
                    self._attach_derived(kept, learnt=True, act=act,
                                         lbd=clause_lbd)
                    shortened_count += 1
                    stats["vivified_clauses"] += 1
                    if not solver._ok:
                        return
                else:
                    # Unchanged: re-attach verbatim (no proof entry —
                    # it is the same clause).
                    new = solver._attach(list(codes), learnt=True)
                    solver._clause_act[new] = act
                    solver._lbd[new] = clause_lbd
            if not self._root_propagate():
                return
            span.set("shortened", shortened_count)
            span.set("deleted", deleted_count)

    # ------------------------------------------------------------------
    # Phase 3: bounded variable elimination
    # ------------------------------------------------------------------

    def _bve(self, frozen: Set[int]) -> None:
        solver = self.solver
        values = solver._values
        clen = solver._clen
        learnt = solver._learnt
        eliminated = solver._eliminated
        stats = solver.stats
        injector = getattr(solver, "_injector", None)
        with obs_trace.span("inprocess.bve") as span:
            occ, _ = self._occurrence_index()
            eliminated_count = resolvent_count = 0

            def live_refs(code: int) -> List[int]:
                refs = []
                for ref in occ.get(code, ()):
                    self._ticks -= 1
                    if clen[ref] and code in self._codes(ref):
                        refs.append(ref)
                return refs

            order = sorted(
                (var for var in range(1, solver.num_vars + 1)
                 if values[2 * var] == _UNDEF and not eliminated[var]
                 and var not in frozen),
                key=lambda var: (len(occ.get(2 * var, ()))
                                 + len(occ.get(2 * var + 1, ()))))
            for var in order:
                if self._expired():
                    break
                pos_code = 2 * var
                neg_code = pos_code + 1
                if values[pos_code] != _UNDEF:
                    # Root-assigned since the order was computed (a unit
                    # resolvent of an earlier elimination).  The unit
                    # lives on the trail, not in the occurrence lists,
                    # so resolution here would be *incomplete* — it
                    # would miss the unit as a partner and could delete
                    # the clauses that refute the formula.  Propagation
                    # handles this variable's clauses instead.
                    continue
                pos_refs = live_refs(pos_code)
                neg_refs = live_refs(neg_code)
                pos_orig = [ref for ref in pos_refs if not learnt[ref]]
                neg_orig = [ref for ref in neg_refs if not learnt[ref]]
                if len(pos_orig) > BVE_OCC_CAP or len(neg_orig) > BVE_OCC_CAP:
                    continue
                limit = len(pos_orig) + len(neg_orig)
                resolvents: List[List[int]] = []
                bounded = True
                for pref in pos_orig:
                    pos_set = set(self._codes(pref)) - {pos_code}
                    for nref in neg_orig:
                        neg_set = set(self._codes(nref)) - {neg_code}
                        self._ticks -= len(pos_set) + len(neg_set)
                        if any(code ^ 1 in pos_set for code in neg_set):
                            continue  # tautological resolvent
                        merged = sorted(pos_set | neg_set)
                        if len(merged) > BVE_RESOLVENT_LEN_CAP:
                            bounded = False
                            break
                        resolvents.append(merged)
                        if len(resolvents) > limit:
                            bounded = False
                            break
                    if not bounded:
                        break
                if not bounded:
                    continue
                # Commit: save the originals for model extension,
                # delete every clause mentioning the variable, attach
                # the resolvents.
                saved = [self._codes(ref) for ref in pos_orig + neg_orig]
                for ref in pos_refs + neg_refs:
                    solver._delete_clause(ref)
                for resolvent in resolvents:
                    if injector is not None \
                            and injector.fire("drop_resolvent") is not None:
                        continue  # injected bug: resolvent silently lost
                    new = self._attach_derived(resolvent)
                    resolvent_count += 1
                    if not solver._ok:
                        return
                    if new >= 0:
                        for code in resolvent:
                            occ.setdefault(code, []).append(new)
                eliminated[var] = 1
                self._eliminated_stack.append((var, saved))
                eliminated_count += 1
            stats["eliminated_vars"] += eliminated_count
            stats["bve_resolvents"] += resolvent_count
            span.set("eliminated", eliminated_count)
            span.set("resolvents", resolvent_count)
            self._root_propagate()

    # ------------------------------------------------------------------
    # Model extension
    # ------------------------------------------------------------------

    def extend(self, values: List[bool]) -> List[bool]:
        """Extend a model of the reduced formula over eliminated
        variables (latest elimination first, as its saved clauses may
        mention earlier-eliminated variables)."""
        if not self._eliminated_stack:
            return values
        out = list(values)
        for var, saved in reversed(self._eliminated_stack):
            need_true = False
            for clause in saved:
                satisfied = False
                has_positive = False
                for code in clause:
                    cvar = code >> 1
                    if cvar == var:
                        if not code & 1:
                            has_positive = True
                        continue
                    value = out[cvar - 1]
                    if value != bool(code & 1):
                        satisfied = True
                        break
                if has_positive and not satisfied:
                    need_true = True
                    break
            out[var - 1] = need_true
        return out

    @property
    def eliminated_count(self) -> int:
        return len(self._eliminated_stack)
