"""DIMACS-style literal helpers.

Throughout :mod:`repro.sat`, a *literal* is a nonzero Python ``int`` in the
DIMACS convention: variable ``v`` (1-based) appears positively as ``v`` and
negatively as ``-v``.  The CDCL solver internally re-encodes literals as
*codes* (``2*var`` / ``2*var + 1``) so that negation is a cheap XOR and
literals can index arrays directly; the helpers for that live here too.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def var_of(lit: int) -> int:
    """Return the (positive) variable of a DIMACS literal."""
    if lit == 0:
        raise ValueError("0 is not a valid DIMACS literal")
    return lit if lit > 0 else -lit


def is_positive(lit: int) -> bool:
    """Return True if the literal is a positive occurrence of its variable."""
    if lit == 0:
        raise ValueError("0 is not a valid DIMACS literal")
    return lit > 0


def negate(lit: int) -> int:
    """Return the negation of a DIMACS literal."""
    if lit == 0:
        raise ValueError("0 is not a valid DIMACS literal")
    return -lit


def lit_to_code(lit: int) -> int:
    """Map a DIMACS literal to its internal code.

    Variable ``v`` maps to ``2*v`` when positive and ``2*v + 1`` when
    negative, so ``code ^ 1`` is the code of the negated literal and codes
    can index flat arrays of size ``2 * (num_vars + 1)``.
    """
    if lit == 0:
        raise ValueError("0 is not a valid DIMACS literal")
    return 2 * lit if lit > 0 else -2 * lit + 1


def code_to_lit(code: int) -> int:
    """Inverse of :func:`lit_to_code`."""
    if code < 2:
        raise ValueError(f"invalid literal code {code}")
    var = code >> 1
    return -var if code & 1 else var


def clause_to_codes(clause: Sequence[int]) -> Optional[List[int]]:
    """Convert a DIMACS clause to deduplicated internal codes.

    Returns the clause's literal codes in first-occurrence order with
    duplicates removed, or ``None`` when the clause is a tautology
    (contains ``lit`` and ``-lit``) and can be discarded outright.  This
    is the shared ingestion step of every code-based propagation engine
    (the CDCL solvers and the independent RUP proof checker).
    """
    codes: List[int] = []
    seen = set()
    for lit in clause:
        code = lit_to_code(lit)
        if code ^ 1 in seen:
            return None
        if code not in seen:
            seen.add(code)
            codes.append(code)
    return codes


def max_var(lits: Iterable[int]) -> int:
    """Return the largest variable mentioned in an iterable of literals."""
    best = 0
    for lit in lits:
        v = lit if lit > 0 else -lit
        if v > best:
            best = v
    return best
