"""CNF formula container and DIMACS CNF reader/writer.

The :class:`CNF` class is the hand-off format between the encoding layer
(:mod:`repro.core.encodings`) and the SAT solvers (:mod:`repro.sat.solver`).
It stores clauses as tuples of DIMACS literals, tracks the number of
variables, and can be serialised to and parsed from the standard DIMACS
``p cnf`` format so instances can be inspected with external tools.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, List, Optional, Sequence, TextIO, Tuple

from ..errors import ParseError
from .literals import var_of

Clause = Tuple[int, ...]


class CNF:
    """A propositional formula in conjunctive normal form.

    Parameters
    ----------
    clauses:
        Optional initial clauses; each clause is an iterable of nonzero
        DIMACS literals.
    num_vars:
        Optional explicit variable count.  The count grows automatically as
        clauses mentioning larger variables are added, but it may be set
        higher than any mentioned variable (DIMACS allows unused variables,
        and encodings allocate contiguous per-vertex blocks up front).
    """

    def __init__(self, clauses: Optional[Iterable[Iterable[int]]] = None,
                 num_vars: int = 0) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self._clauses: List[Clause] = []
        self._num_vars = num_vars
        if clauses is not None:
            for clause in clauses:
                self.add_clause(clause)

    @property
    def num_vars(self) -> int:
        """Number of variables (the largest variable id in use)."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of clauses added so far."""
        return len(self._clauses)

    @property
    def clauses(self) -> List[Clause]:
        """The clause list (shared, do not mutate)."""
        return self._clauses

    def new_var(self) -> int:
        """Allocate and return a fresh variable id."""
        self._num_vars += 1
        return self._num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables and return their ids."""
        if count < 0:
            raise ValueError("count must be non-negative")
        first = self._num_vars + 1
        self._num_vars += count
        return list(range(first, self._num_vars + 1))

    def reserve(self, num_vars: int) -> None:
        """Ensure the formula has at least ``num_vars`` variables."""
        if num_vars > self._num_vars:
            self._num_vars = num_vars

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause given as an iterable of DIMACS literals.

        The empty clause is allowed and makes the formula trivially
        unsatisfiable.  Literal order is preserved; duplicates are kept
        (the solver tolerates them), but a ``0`` literal is rejected.
        """
        clause = tuple(lits)
        for lit in clause:
            if lit == 0:
                raise ValueError("clause contains the invalid literal 0")
            v = var_of(lit)
            if v > self._num_vars:
                self._num_vars = v
        self._clauses.append(clause)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add many clauses at once."""
        for clause in clauses:
            self.add_clause(clause)

    def copy(self) -> "CNF":
        """Return an independent copy of this formula."""
        duplicate = CNF(num_vars=self._num_vars)
        duplicate._clauses = list(self._clauses)
        return duplicate

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __repr__(self) -> str:
        return f"CNF(num_vars={self._num_vars}, num_clauses={len(self._clauses)})"

    # ------------------------------------------------------------------
    # DIMACS serialisation
    # ------------------------------------------------------------------

    def write_dimacs(self, stream: TextIO, comments: Sequence[str] = ()) -> None:
        """Write the formula to ``stream`` in DIMACS CNF format."""
        for comment in comments:
            stream.write(f"c {comment}\n")
        stream.write(f"p cnf {self._num_vars} {len(self._clauses)}\n")
        for clause in self._clauses:
            stream.write(" ".join(str(lit) for lit in clause))
            stream.write(" 0\n")

    def to_dimacs(self, comments: Sequence[str] = ()) -> str:
        """Return the DIMACS CNF text for this formula."""
        buffer = io.StringIO()
        self.write_dimacs(buffer, comments=comments)
        return buffer.getvalue()

    def write_dimacs_file(self, path: str, comments: Sequence[str] = ()) -> None:
        """Write the formula to the file at ``path`` in DIMACS CNF format."""
        with open(path, "w", encoding="ascii") as handle:
            self.write_dimacs(handle, comments=comments)


def parse_dimacs(stream: TextIO, source: str = "") -> CNF:
    """Parse a DIMACS CNF formula from a text stream.

    Comment lines (``c ...``) are ignored.  The ``p cnf`` header is
    optional in practice but, when present, its variable count is honoured
    even if larger than any literal.  Clauses may span lines; each is
    terminated by ``0``.

    Malformed input raises :class:`~repro.errors.ParseError` (a
    ``ValueError`` subclass) carrying the 1-based line number and
    ``source``, never a bare ``ValueError``/``IndexError`` from
    tokenising.
    """
    cnf = CNF()
    declared_vars = 0
    pending: List[int] = []
    for line_no, raw_line in enumerate(stream, start=1):
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            fields = line.split()
            if len(fields) != 4 or fields[1] != "cnf":
                raise ParseError(f"malformed DIMACS problem line: {line!r}",
                                 line=line_no, source=source)
            try:
                declared_vars = int(fields[2])
                int(fields[3])  # clause count: must at least be a number
            except ValueError:
                raise ParseError(
                    f"non-numeric counts in problem line: {line!r}",
                    line=line_no, source=source) from None
            if declared_vars < 0:
                raise ParseError(
                    f"negative variable count in problem line: {line!r}",
                    line=line_no, source=source)
            continue
        if line.startswith("%"):
            break
        for token in line.split():
            try:
                lit = int(token)
            except ValueError:
                raise ParseError(f"invalid literal {token!r}",
                                 line=line_no, source=source) from None
            if lit == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(lit)
    if pending:
        cnf.add_clause(pending)
    cnf.reserve(declared_vars)
    return cnf


def parse_dimacs_string(text: str) -> CNF:
    """Parse a DIMACS CNF formula from a string."""
    return parse_dimacs(io.StringIO(text), source="<string>")


def parse_dimacs_file(path: str) -> CNF:
    """Parse a DIMACS CNF formula from the file at ``path``."""
    with open(path, "r", encoding="ascii") as handle:
        return parse_dimacs(handle, source=path)
