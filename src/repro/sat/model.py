"""Satisfying assignments (models) returned by the SAT solvers."""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .cnf import CNF
from .literals import var_of
from .status import SolveReport, SolveStatus


class Model:
    """A total truth assignment over variables ``1..num_vars``.

    The solvers extend partial satisfying assignments to total ones (unset
    variables default to False), so downstream decoding never has to deal
    with "unknown" values.
    """

    def __init__(self, values: Sequence[bool]) -> None:
        # values[0] is a placeholder so that values[v] is variable v.
        self._values: List[bool] = [False] + list(values)

    @classmethod
    def from_true_vars(cls, true_vars: Iterable[int], num_vars: int) -> "Model":
        """Build a model from the set of variables assigned True."""
        values = [False] * num_vars
        for v in true_vars:
            if not 1 <= v <= num_vars:
                raise ValueError(f"variable {v} out of range 1..{num_vars}")
            values[v - 1] = True
        return cls(values)

    @property
    def num_vars(self) -> int:
        return len(self._values) - 1

    def value(self, var: int) -> bool:
        """Return the truth value of variable ``var``."""
        if not 1 <= var <= self.num_vars:
            raise ValueError(f"variable {var} out of range 1..{self.num_vars}")
        return self._values[var]

    def satisfies_literal(self, lit: int) -> bool:
        """Return True if this model makes the literal true."""
        return self._values[var_of(lit)] == (lit > 0)

    def satisfies_clause(self, clause: Iterable[int]) -> bool:
        """Return True if this model satisfies the clause."""
        return any(self.satisfies_literal(lit) for lit in clause)

    def satisfies(self, cnf: CNF) -> bool:
        """Return True if this model satisfies every clause of ``cnf``."""
        return all(self.satisfies_clause(clause) for clause in cnf)

    def true_vars(self) -> List[int]:
        """Return the sorted list of variables assigned True."""
        return [v for v in range(1, self.num_vars + 1) if self._values[v]]

    def as_dict(self) -> Dict[int, bool]:
        """Return the assignment as a ``{var: bool}`` dict."""
        return {v: self._values[v] for v in range(1, self.num_vars + 1)}

    def __getitem__(self, var: int) -> bool:
        return self.value(var)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Model):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(tuple(self._values))

    def __repr__(self) -> str:
        return f"Model(num_vars={self.num_vars})"


class SolveResult:
    """Outcome of a solver run: a :class:`~repro.sat.status.SolveStatus`
    plus a model (iff SAT) and the solver's statistics.

    The boolean conveniences from the pre-status era are **deprecated**
    (since 1.6; see the migration table in ``docs/api.md``): passing a
    bare ``True``/``False`` as ``status``, and reading the
    ``satisfiable`` attribute.  Use :class:`SolveStatus` members and the
    :attr:`is_sat` shorthand — a TIMEOUT or BUDGET_EXHAUSTED result is
    *not* SAT, but neither is it UNSAT; check ``status.decided`` before
    treating a non-SAT answer as a refutation.
    """

    def __init__(self, status: Union[SolveStatus, bool],
                 model: Optional[Model] = None,
                 stats: Optional[Dict[str, float]] = None) -> None:
        if isinstance(status, bool):  # legacy satisfiable-flag convention
            warnings.warn(
                "SolveResult(bool, ...) is deprecated; pass a SolveStatus "
                "member (docs/api.md has the migration table)",
                DeprecationWarning, stacklevel=2)
            status = SolveStatus.SAT if status else SolveStatus.UNSAT
        if status is SolveStatus.SAT and model is None:
            raise ValueError("a satisfiable result requires a model")
        if status is not SolveStatus.SAT and model is not None:
            raise ValueError(f"a {status} result cannot carry a model")
        self.status = status
        self.model = model
        self.stats: Dict[str, float] = dict(stats or {})

    @property
    def is_sat(self) -> bool:
        """True iff ``status is SolveStatus.SAT`` (see class docstring)."""
        return self.status is SolveStatus.SAT

    @property
    def satisfiable(self) -> bool:
        """Deprecated alias of :attr:`is_sat` (since 1.6)."""
        warnings.warn(
            "SolveResult.satisfiable is deprecated; check `status is "
            "SolveStatus.SAT` or the `is_sat` shorthand (docs/api.md "
            "has the migration table)", DeprecationWarning, stacklevel=2)
        return self.status is SolveStatus.SAT

    def report(self, detail: str = "") -> SolveReport:
        """This result as the shared :class:`SolveReport` shape."""
        return SolveReport.from_stats(self.status, self.stats, detail=detail)

    def __bool__(self) -> bool:
        return self.status is SolveStatus.SAT

    def __repr__(self) -> str:
        return f"SolveResult({self.status})"
