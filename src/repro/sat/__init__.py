"""SAT substrate: CNF formulas, DIMACS I/O, models, and solvers.

This package stands in for the external SAT tooling the paper used
(``siege_v4``, ``MiniSat``, DIMACS CNF files); see DESIGN.md §2.
"""

from .cnf import CNF, Clause, parse_dimacs, parse_dimacs_file, parse_dimacs_string
from .literals import (clause_to_codes, code_to_lit, is_positive, lit_to_code,
                       max_var, negate, var_of)
from .bdd import BDDLimitExceeded, BDDManager, cnf_to_bdd, solve_bdd
from .model import Model, SolveResult
from .status import CancelToken, SolveLimits, SolveReport, SolveStatus
from .proof import (ProofCheckResult, ProofError, check_rup_proof,
                    solve_with_proof, verify_rup_proof)
from .simplify import Simplification, simplify, solve_simplified
from .solver import (BudgetExceeded, CDCLSolver, DPLLSolver, LegacyCDCLSolver,
                     PackedCDCLSolver, SolverConfig, minisat_like, preset,
                     siege_like, solve, solve_by_enumeration, solve_dpll)

__all__ = [
    "CNF", "Clause", "parse_dimacs", "parse_dimacs_file", "parse_dimacs_string",
    "clause_to_codes", "code_to_lit", "is_positive", "lit_to_code",
    "max_var", "negate", "var_of",
    "BDDLimitExceeded", "BDDManager", "cnf_to_bdd", "solve_bdd",
    "Model", "SolveResult",
    "CancelToken", "SolveLimits", "SolveReport", "SolveStatus",
    "ProofCheckResult", "ProofError", "check_rup_proof", "solve_with_proof",
    "verify_rup_proof",
    "Simplification", "simplify", "solve_simplified",
    "BudgetExceeded", "CDCLSolver", "DPLLSolver", "LegacyCDCLSolver",
    "PackedCDCLSolver", "SolverConfig", "minisat_like", "preset",
    "siege_like", "solve", "solve_by_enumeration", "solve_dpll",
]
