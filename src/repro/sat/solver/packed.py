"""Array-packed variant of the arena CDCL engine.

Selected with ``SolverConfig(engine="packed")``.  Same search, same
clause arena, different *storage*: the per-variable and per-clause state
lives in :mod:`array` typed arrays instead of Python object lists, and
each watch list is a flat ``array('l')`` of interleaved
``(watcher record, blocker literal)`` pairs — the blocker travels inline
with the record, so the hot skip test touches one contiguous buffer
instead of chasing a second list (``_wother``).

Two deliberate differences from the parent engine:

* **Inline, possibly stale blockers.**  The arena engine keeps its
  blocker cache *fresh* (a watch move writes the partner's ``_wother``
  entry — an O(1) side-table update).  With blockers inline in
  per-literal lists the partner's pair lives in some other list at an
  unknown position, so freshness would cost a linear search per watch
  move; instead blockers are allowed to go stale, exactly as in
  MiniSat.  Staleness is *sound* (a blocker is always some literal of
  the clause, so "blocker true" still implies "clause satisfied") but
  it is **not trajectory-neutral**: a stale-but-true blocker skips a
  visit where the fresh-blocker engine would have moved a watch, after
  which the two engines' watch lists — and eventually their decision
  sequences — differ.  The packed engine is therefore deterministic
  (same seed, same search) and always agrees on the *answer*, but its
  decision/conflict counts are its own; its fixtures are pinned
  separately from the arena/legacy pair, which do share a trajectory.
* **Typed-array state.**  ``_values`` is an ``array('b')``, trail /
  reason / level / arena / offsets are ``'l'``/``'i'`` arrays and the
  learnt flags a ``bytearray`` — 1–8 bytes per element instead of an
  8-byte pointer to a boxed object, roughly a 4–8x smaller working set.

This is a *locality experiment*: CPython re-boxes every element it
reads from an ``array``, so the smaller footprint is paid for with an
allocation per access, and on small instances the packed engine is
expected to lose to plain lists.  The point of shipping it behind a
flag is to measure exactly where the crossover sits
(``repro.bench.throughput`` races the three engines) — the FPGA-BCP
line of work (PAPERS.md) says layout, not logic, is the ceiling, and
this is the cheapest software probe of that claim we can run.

Everything above the two overridden methods — analysis, reduction,
inprocessing, decisions, the solve loop — is inherited unchanged from
:class:`~repro.sat.solver.cdcl.CDCLSolver`; typed arrays index and
slice like lists, which is what makes the sharing work.

Clause sharing (``SolverConfig.clause_channel``) is likewise inherited:
the export hook reads conflict-time levels through ``self._level`` and
the restart-time import path goes through *this* class's ``_attach``,
which wires fresh interleaved watch pairs — imported clauses never
interact with the stale-blocker subtlety above, because both their
watches start on unassigned (root-level) literals.  The packed engine
therefore shares clauses with arena peers over the same channel, and
``repro.dist`` treats the two engines as interchangeable portfolio
members.
"""

from __future__ import annotations

import heapq
import random
from array import array
from typing import List, Optional

from ..cnf import CNF
from .cdcl import CDCLSolver, _FALSE, _TRUE, _UNDEF
from .config import SolverConfig


class PackedCDCLSolver(CDCLSolver):
    """The arena engine on typed-array storage (see module docstring)."""

    _engine_site = "packed"

    def __init__(self, cnf: CNF,
                 config: Optional[SolverConfig] = None) -> None:
        # Mirrors CDCLSolver.__init__ with packed containers.  It cannot
        # delegate: the parent would build list-backed state and then
        # _ingest through *our* overrides, which need the arrays.
        self.config = config or SolverConfig()
        self.num_vars = cnf.num_vars
        self._rng = random.Random(self.config.seed)

        n = self.num_vars
        self._values = array("b", bytes(2 * n + 2))
        self._level = array("i", [0]) * (n + 1)
        self._reason = array("l", [-1]) * (n + 1)
        self._trail = array("l")
        self._trail_lim: List[int] = []
        self._qhead = 0

        self._activity: List[float] = [0.0] * (n + 1)
        self._var_inc = 1.0
        self._heap: List = [(0.0, v) for v in range(1, n + 1)]
        heapq.heapify(self._heap)
        if self.config.default_phase == "true":
            self._saved_phase = bytearray([1]) * (n + 1)
        elif self.config.default_phase == "random":
            self._saved_phase = bytearray(
                self._rng.random() < 0.5 for _ in range(n + 1))
        else:
            self._saved_phase = bytearray(n + 1)

        self._arena = array("l")
        self._coff = array("l")
        self._clen = array("i")
        self._learnt = bytearray()
        self._clause_act: List[float] = []
        self._arena_dead = 0
        self._clause_inc = 1.0
        self._num_original = 0
        self._num_learned_live = 0
        # Watch lists: per-literal flat arrays of interleaved
        # (watcher record, blocker) pairs; no _wother side table.
        self._watches = [array("l") for _ in range(2 * n + 2)]
        self._wother: List[int] = []  # unused; parent attribute kept
        self._seen = bytearray(n + 1)
        self._lbd: List[int] = []
        self._used_at: List[int] = []
        self._tier_on = self.config.reduce_policy == "tier"
        self._last_reduce_conflicts = 0
        self._tier_reductions = 0
        self._eliminated = bytearray(n + 1)
        self._inpro = None

        self._ok = True
        self.proof: List[tuple] = []
        self.stats = {
            "conflicts": 0, "decisions": 0, "propagations": 0,
            "restarts": 0, "learned_clauses": 0, "deleted_clauses": 0,
            "minimized_literals": 0,
            "watch_inspections": 0, "blocker_hits": 0,
            "arena_compactions": 0,
        }
        self._ingest(cnf)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _attach(self, codes: List[int], learnt: bool) -> int:
        ref = len(self._coff)
        self._coff.append(len(self._arena))
        self._clen.append(len(codes))
        self._arena.extend(codes)
        self._learnt.append(1 if learnt else 0)
        self._clause_act.append(0.0)
        self._lbd.append(0)
        self._used_at.append(0)
        # Pair layout: record first, blocker (the other watch) second.
        self._watches[codes[0]].extend((2 * ref, codes[1]))
        self._watches[codes[1]].extend((2 * ref + 1, codes[0]))
        if learnt:
            self._num_learned_live += 1
        else:
            self._num_original += 1
        return ref

    def _clause_codes(self, ref: int) -> List[int]:
        off = self._coff[ref]
        return list(self._arena[off:off + self._clen[ref]])

    # ------------------------------------------------------------------
    # Unit propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> int:
        """Packed-layout twin of :meth:`CDCLSolver._propagate`.

        The control flow is the parent's; the differences are mechanical
        (pair-stepped iteration, blocker read from the adjacent slot,
        ``other`` recovered from the normalised arena slots instead of
        the fresh ``_wother`` cache) plus the satisfied-after-deref
        keep path, which the fresh-blocker parent can never reach but a
        stale blocker makes possible (see module docstring).
        """
        values = self._values
        watches = self._watches
        arena = self._arena
        coff = self._coff
        clen = self._clen
        trail = self._trail
        level = self._level
        reason = self._reason
        level_num = len(self._trail_lim)
        qhead = self._qhead
        trail_len = len(trail)
        props = 0
        inspections = 0
        derefs = 0
        conflict = -1
        while qhead < trail_len:
            propagated = trail[qhead]
            qhead += 1
            props += 1
            false_code = propagated ^ 1
            watchers = watches[false_code]
            count = len(watchers)
            if not count:
                continue
            inspections += count >> 1
            i = 0
            j = 0
            removed = False
            while i < count:
                e = watchers[i]
                blocker = watchers[i + 1]
                i += 2
                if values[blocker] == 1:  # blocker true: satisfied
                    if removed:
                        watchers[j] = e
                        watchers[j + 1] = blocker
                    j += 2
                    continue
                derefs += 1
                ci = e >> 1
                length = clen[ci]
                if length == 0:  # deleted: drop the pair
                    removed = True
                    continue
                off = coff[ci]
                c0 = arena[off]
                other = arena[off + 1] if c0 == false_code else c0
                value = values[other]
                if value == 1:
                    # Stale blocker, satisfied clause: keep the pair
                    # and refresh the blocker in place (MiniSat's
                    # satisfied-after-dereference case).
                    if removed:
                        watchers[j] = e
                        watchers[j + 1] = other
                    else:
                        watchers[i - 1] = other
                    j += 2
                    continue
                if length == 2:
                    arena[off] = other  # normalise slots for _analyze
                    arena[off + 1] = false_code
                elif length == 3:
                    code = arena[off + 2]
                    if values[code] != -1:
                        if c0 == false_code:
                            arena[off] = other
                        arena[off + 1] = code
                        arena[off + 2] = false_code
                        watches[code].extend((e, other))
                        removed = True
                        continue
                    arena[off] = other
                    arena[off + 1] = false_code
                else:
                    if c0 == false_code:
                        arena[off] = other
                        arena[off + 1] = false_code
                    moved = False
                    for k in range(off + 2, off + length):
                        code = arena[k]
                        if values[code] != -1:
                            arena[off + 1] = code
                            arena[k] = false_code
                            watches[code].extend((e, other))
                            moved = True
                            break
                    if moved:
                        removed = True
                        continue
                # Unit or conflict: the pair stays (blocker refreshed).
                if removed:
                    watchers[j] = e
                    watchers[j + 1] = other
                else:
                    watchers[i - 1] = other
                j += 2
                if value == 0:
                    # Unit: inlined _enqueue.
                    values[other] = 1
                    values[other ^ 1] = -1
                    var = other >> 1
                    level[var] = level_num
                    reason[var] = ci
                    trail.append(other)
                    trail_len += 1
                    continue
                # Conflict.  Pairs after this one were pre-counted as
                # inspected but never scanned — undo that, then (only
                # when compacting) shift the rest left and stop.
                inspections -= (count - i) >> 1
                if removed:
                    while i < count:
                        watchers[j] = watchers[i]
                        watchers[j + 1] = watchers[i + 1]
                        i += 2
                        j += 2
                qhead = trail_len
                conflict = ci
                break
            if removed:
                del watchers[j:]
            if conflict != -1:
                break
        self._qhead = qhead
        stats = self.stats
        stats["propagations"] += props
        stats["watch_inspections"] += inspections
        stats["blocker_hits"] += inspections - derefs
        return conflict

    # ------------------------------------------------------------------
    # Arena maintenance
    # ------------------------------------------------------------------

    def _compact_arena(self) -> None:
        arena = self._arena
        coff = self._coff
        clen = self._clen
        compacted = array("l")
        for ref in range(len(coff)):
            length = clen[ref]
            if length == 0:
                continue
            off = coff[ref]
            coff[ref] = len(compacted)
            compacted.extend(arena[off:off + length])
        self._arena = compacted
        self._arena_dead = 0
        self.stats["arena_compactions"] += 1
