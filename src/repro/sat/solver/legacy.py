"""The pre-arena CDCL engine, kept as a measurable baseline.

This is the original clause-object implementation of the solver: each
clause is its own Python list and watch lists hold bare clause indices.
:mod:`repro.sat.solver.cdcl` superseded it with a flat clause arena and
blocker-literal watch pairs; this copy is retained behind
``SolverConfig(engine="legacy")`` so the benchmark harness can measure
the BCP speedup of the arena engine against it *in the same run*
(``repro.bench.throughput``), and so search-behavior regressions can be
cross-checked against the original trajectory.

Apart from routing the DIMACS-literal↔code conversion through
:mod:`repro.sat.literals`, the algorithm is byte-for-byte the seed
solver: same propagation order, same learning, same restarts — the two
engines produce identical decision/conflict counts on every instance.
"""

from __future__ import annotations

import heapq
import random
import time
from typing import Dict, List, Optional

from ..cnf import CNF
from ..literals import clause_to_codes, lit_to_code, var_of
from ..model import Model, SolveResult
from ..status import CancelToken, SolveStatus
from .cdcl import BudgetExceeded, CDCLSolver
from .config import SolverConfig
from .luby import luby

_UNDEF = 0
_TRUE = 1
_FALSE = -1

_RESCALE_LIMIT = 1e100
_RESCALE_FACTOR = 1e-100


class LegacyCDCLSolver:
    """The clause-object CDCL engine (see module docstring).

    Drop-in API-compatible with
    :class:`repro.sat.solver.cdcl.CDCLSolver`; the arena-only stats
    counters (``blocker_hits``, ``watch_inspections``,
    ``arena_compactions``) are simply absent from ``stats``.
    """

    def __init__(self, cnf: CNF, config: Optional[SolverConfig] = None) -> None:
        self.config = config or SolverConfig()
        self.num_vars = cnf.num_vars
        self._rng = random.Random(self.config.seed)

        n = self.num_vars
        # values is indexed by literal code; entry 0/1 are padding.
        self._values: List[int] = [_UNDEF] * (2 * n + 2)
        self._level: List[int] = [0] * (n + 1)
        self._reason: List[int] = [-1] * (n + 1)  # clause index, -1 = none
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0

        self._activity: List[float] = [0.0] * (n + 1)
        self._var_inc = 1.0
        self._heap: List = [(0.0, v) for v in range(1, n + 1)]
        heapq.heapify(self._heap)
        if self.config.default_phase == "true":
            self._saved_phase = [True] * (n + 1)
        elif self.config.default_phase == "random":
            self._saved_phase = [self._rng.random() < 0.5 for _ in range(n + 1)]
        else:
            self._saved_phase = [False] * (n + 1)

        self._clauses: List[Optional[List[int]]] = []
        self._learnt: List[bool] = []
        self._clause_act: List[float] = []
        self._clause_inc = 1.0
        self._num_original = 0
        self._num_learned_live = 0
        self._watches: List[List[int]] = [[] for _ in range(2 * n + 2)]
        self._seen = bytearray(n + 1)

        self._ok = True  # False once root-level unsatisfiability is known
        #: DRUP-style clausal proof: every learned clause in DIMACS
        #: literals, in derivation order, terminated by () on UNSAT.
        #: Populated only when config.proof_log is set.
        self.proof: List[tuple] = []
        self.stats: Dict[str, float] = {
            "conflicts": 0, "decisions": 0, "propagations": 0,
            "restarts": 0, "learned_clauses": 0, "deleted_clauses": 0,
            "minimized_literals": 0,
        }
        self._ingest(cnf)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _ingest(self, cnf: CNF) -> None:
        for clause in cnf:
            if not self._ok:
                return
            codes = clause_to_codes(clause)
            if codes is None:  # tautology
                continue
            if not codes:
                self._ok = False
                return
            if len(codes) == 1:
                value = self._values[codes[0]]
                if value == _FALSE:
                    self._ok = False
                elif value == _UNDEF:
                    self._enqueue(codes[0], -1)
            else:
                self._attach(codes, learnt=False)
        if self._ok and self._propagate() != -1:
            self._ok = False

    def _attach(self, codes: List[int], learnt: bool) -> int:
        index = len(self._clauses)
        self._clauses.append(codes)
        self._learnt.append(learnt)
        self._clause_act.append(0.0)
        self._watches[codes[0]].append(index)
        self._watches[codes[1]].append(index)
        if learnt:
            self._num_learned_live += 1
        else:
            self._num_original += 1
        return index

    # ------------------------------------------------------------------
    # Assignment / trail
    # ------------------------------------------------------------------

    def _enqueue(self, code: int, reason: int) -> None:
        self._values[code] = _TRUE
        self._values[code ^ 1] = _FALSE
        var = code >> 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(code)

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        values = self._values
        saved = self._saved_phase
        heap = self._heap
        activity = self._activity
        for code in reversed(self._trail[limit:]):
            var = code >> 1
            saved[var] = not (code & 1)
            values[code] = _UNDEF
            values[code ^ 1] = _UNDEF
            self._reason[var] = -1
            heapq.heappush(heap, (-activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Unit propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> int:
        """Propagate all enqueued assignments.

        Returns the index of a conflicting clause, or -1 if none.
        """
        values = self._values
        watches = self._watches
        clauses = self._clauses
        trail = self._trail
        conflict = -1
        while self._qhead < len(trail):
            propagated = trail[self._qhead]
            self._qhead += 1
            self.stats["propagations"] += 1
            false_code = propagated ^ 1
            watchers = watches[false_code]
            i = 0
            j = 0
            count = len(watchers)
            while i < count:
                ci = watchers[i]
                i += 1
                lits = clauses[ci]
                if lits is None:
                    continue  # deleted clause: drop from this watch list
                if lits[0] == false_code:
                    lits[0] = lits[1]
                    lits[1] = false_code
                first = lits[0]
                if values[first] == _TRUE:
                    watchers[j] = ci
                    j += 1
                    continue
                found = False
                for k in range(2, len(lits)):
                    code = lits[k]
                    if values[code] != _FALSE:
                        lits[1] = code
                        lits[k] = false_code
                        watches[code].append(ci)
                        found = True
                        break
                if found:
                    continue
                watchers[j] = ci
                j += 1
                if values[first] == _FALSE:
                    # Conflict: keep remaining watchers and stop.
                    while i < count:
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    self._qhead = len(trail)
                    conflict = ci
                else:
                    self._enqueue(first, ci)
            del watchers[j:]
            if conflict != -1:
                return conflict
        return -1

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > _RESCALE_LIMIT:
            self._rescale_activities()
        if self._values[2 * var] == _UNDEF:
            heapq.heappush(self._heap, (-self._activity[var], var))

    def _rescale_activities(self) -> None:
        for var in range(1, self.num_vars + 1):
            self._activity[var] *= _RESCALE_FACTOR
        self._var_inc *= _RESCALE_FACTOR
        values = self._values
        self._heap = [(-self._activity[v], v) for v in range(1, self.num_vars + 1)
                      if values[2 * v] == _UNDEF]
        heapq.heapify(self._heap)

    def _bump_clause(self, index: int) -> None:
        self._clause_act[index] += self._clause_inc
        if self._clause_act[index] > _RESCALE_LIMIT:
            for i in range(len(self._clause_act)):
                self._clause_act[i] *= _RESCALE_FACTOR
            self._clause_inc *= _RESCALE_FACTOR

    def _analyze(self, conflict: int) -> (List[int], int):
        """First-UIP analysis.  Returns (learnt clause codes, backtrack level)
        with the asserting literal in position 0."""
        learnt: List[int] = [0]
        seen = self._seen
        trail = self._trail
        level = self._level
        current_level = len(self._trail_lim)
        to_clear: List[int] = []
        counter = 0
        p = -1
        index = len(trail) - 1
        clause = conflict
        while True:
            lits = self._clauses[clause]
            if self._learnt[clause]:
                self._bump_clause(clause)
            for q in (lits if p == -1 else lits[1:]):
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    to_clear.append(var)
                    self._bump_var(var)
                    if level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            var = p >> 1
            clause = self._reason[var]
            seen[var] = 0
            counter -= 1
            index -= 1
            if counter <= 0:
                break
        learnt[0] = p ^ 1

        # Local minimisation: drop a literal whose reason clause is entirely
        # covered by the rest of the learnt clause (or by root assignments).
        if len(learnt) > 2:
            kept = [learnt[0]]
            for q in learnt[1:]:
                reason = self._reason[q >> 1]
                if reason == -1:
                    kept.append(q)
                    continue
                redundant = True
                for other in self._clauses[reason]:
                    var = other >> 1
                    if var == q >> 1:
                        continue
                    if not seen[var] and level[var] > 0:
                        redundant = False
                        break
                if redundant:
                    self.stats["minimized_literals"] += 1
                else:
                    kept.append(q)
            learnt = kept

        for var in to_clear:
            seen[var] = 0

        if len(learnt) == 1:
            return learnt, 0
        # Move a literal from the highest remaining level to position 1.
        best = 1
        for k in range(2, len(learnt)):
            if level[learnt[k] >> 1] > level[learnt[best] >> 1]:
                best = k
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, level[learnt[1] >> 1]

    # ------------------------------------------------------------------
    # Learned-clause database reduction
    # ------------------------------------------------------------------

    def _reduce_db(self) -> None:
        # Clauses currently acting as reason for a trail literal must
        # survive the reduction *unconditionally* — deleting one would
        # leave a dangling _reason index for _analyze.  An explicit set
        # over the trail replaces the old slot-0 heuristic, so the
        # guarantee no longer depends on watch normalisation.
        reason = self._reason
        protected = {reason[code >> 1] for code in self._trail}
        protected.discard(-1)
        candidates = [i for i in range(len(self._clauses))
                      if self._learnt[i] and self._clauses[i] is not None
                      and len(self._clauses[i]) > 2 and i not in protected]
        candidates.sort(key=lambda i: self._clause_act[i])
        for i in candidates[:len(candidates) // 2]:
            self._clauses[i] = None
            self._num_learned_live -= 1
            self.stats["deleted_clauses"] += 1

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _pick_branch_var(self) -> int:
        values = self._values
        if (self.config.random_decision_freq > 0.0
                and self._rng.random() < self.config.random_decision_freq):
            for _ in range(10):
                var = self._rng.randint(1, self.num_vars)
                if values[2 * var] == _UNDEF:
                    return var
        heap = self._heap
        while heap:
            _, var = heapq.heappop(heap)
            if values[2 * var] == _UNDEF:
                return var
        for var in range(1, self.num_vars + 1):
            if values[2 * var] == _UNDEF:
                return var
        return 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def solve(self, assumptions: Optional[List[int]] = None,
              cancel: Optional[CancelToken] = None) -> SolveResult:
        """Run the CDCL search and return the result.

        ``assumptions`` is an optional list of DIMACS literals assumed
        true for this call only.  An UNSAT result under assumptions does
        not mean the formula itself is unsatisfiable
        (``stats["assumption_failed"]`` distinguishes the two).

        Soft budgets and the ``cancel`` token behave exactly as in the
        arena engine (see :meth:`CDCLSolver.solve`): checked on conflict
        and decision boundaries, ending the call with a
        TIMEOUT / BUDGET_EXHAUSTED status instead of an exception.
        """
        start = time.perf_counter()
        # Chaos hook, shared with the arena engine (see
        # CDCLSolver._fault_injector); None on the normal path.
        injector = self._injector = self._fault_injector()
        if injector is not None:
            injector.maybe_hang()
            injector.maybe_crash()
        self._props_at_start = self.stats["propagations"]
        self._cancel_until(0)  # fresh call on a reused solver
        self.stats.pop("assumption_failed", None)
        self.stats.pop("stop_reason", None)
        assumed = []
        for lit in (assumptions or []):
            var = var_of(lit)
            if not 1 <= var <= self.num_vars:
                raise ValueError(f"assumption {lit} outside variables "
                                 f"1..{self.num_vars}")
            assumed.append(lit_to_code(lit))
        if not self._ok:
            return self._finish(SolveStatus.UNSAT, start)
        if self.num_vars == 0:
            return self._finish(SolveStatus.SAT, start)

        config = self.config
        conflict_budget = config.conflict_budget
        propagation_budget = config.propagation_budget
        deadline = (None if config.wall_clock_limit is None
                    else start + config.wall_clock_limit)
        conflicts_before = self.stats["conflicts"]
        bounded = (conflict_budget is not None
                   or propagation_budget is not None
                   or deadline is not None or cancel is not None)
        restart_index = 1
        if config.restart_policy == "luby":
            restart_limit = luby(restart_index) * config.restart_base
        else:
            restart_limit = config.restart_base
        conflicts_since_restart = 0
        max_learnts = max(100.0, config.max_learnts_factor * max(1, self._num_original))

        while True:
            conflict = self._propagate()
            if conflict != -1:
                self.stats["conflicts"] += 1
                conflicts_since_restart += 1
                if injector is not None:
                    delay = injector.slowdown_delay()
                    if delay > 0.0:
                        time.sleep(delay)
                if bounded:
                    stop = self._budget_stop(
                        cancel, deadline, conflict_budget,
                        propagation_budget, conflicts_before)
                    if stop is not None:
                        return self._finish(stop, start)
                if config.max_conflicts is not None \
                        and self.stats["conflicts"] > config.max_conflicts:
                    raise BudgetExceeded(
                        f"conflict budget {config.max_conflicts} exhausted")
                if not self._trail_lim:
                    return self._finish(SolveStatus.UNSAT, start)
                learnt, back_level = self._analyze(conflict)
                if config.proof_log:
                    self.proof.append(tuple(
                        code >> 1 if not code & 1 else -(code >> 1)
                        for code in learnt))
                self._cancel_until(back_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], -1)
                else:
                    index = self._attach(learnt, learnt=True)
                    self._bump_clause(index)
                    self._enqueue(learnt[0], index)
                self.stats["learned_clauses"] += 1
                self._var_inc /= config.var_decay
                self._clause_inc /= config.clause_decay
            else:
                if bounded:
                    # Decision boundary: re-check the external bounds.
                    if cancel is not None and cancel.cancelled:
                        self.stats["stop_reason"] = "cancelled"
                        return self._finish(SolveStatus.TIMEOUT, start)
                    if deadline is not None \
                            and time.perf_counter() >= deadline:
                        self.stats["stop_reason"] = "wall-clock limit"
                        return self._finish(SolveStatus.TIMEOUT, start)
                if conflicts_since_restart >= restart_limit:
                    self.stats["restarts"] += 1
                    conflicts_since_restart = 0
                    restart_index += 1
                    if config.restart_policy == "luby":
                        restart_limit = luby(restart_index) * config.restart_base
                    else:
                        restart_limit *= config.restart_factor
                    max_learnts *= config.max_learnts_growth
                    self._cancel_until(0)
                    continue
                if self._num_learned_live - len(self._trail) > max_learnts:
                    self._reduce_db()
                # Assumptions are consumed as pseudo-decisions, one level
                # each, before any free decision (MiniSat style).
                code = 0
                while len(self._trail_lim) < len(assumed):
                    assumption = assumed[len(self._trail_lim)]
                    value = self._values[assumption]
                    if value == _TRUE:
                        self._trail_lim.append(len(self._trail))
                        continue
                    if value == _FALSE:
                        self.stats["assumption_failed"] = 1
                        return self._finish(SolveStatus.UNSAT, start)
                    code = assumption
                    break
                if code == 0:
                    var = self._pick_branch_var()
                    if var == 0:
                        return self._finish(SolveStatus.SAT, start)
                    self.stats["decisions"] += 1
                    if config.max_decisions is not None \
                            and self.stats["decisions"] > config.max_decisions:
                        raise BudgetExceeded(
                            f"decision budget {config.max_decisions} "
                            f"exhausted")
                    code = 2 * var if self._saved_phase[var] else 2 * var + 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(code, -1)

    def _budget_stop(self, cancel, deadline, conflict_budget,
                     propagation_budget, conflicts_before):
        """Status to stop with at a conflict boundary, or None to go on
        (same per-call semantics as the arena engine)."""
        if cancel is not None and cancel.cancelled:
            self.stats["stop_reason"] = "cancelled"
            return SolveStatus.TIMEOUT
        if deadline is not None and time.perf_counter() >= deadline:
            self.stats["stop_reason"] = "wall-clock limit"
            return SolveStatus.TIMEOUT
        if conflict_budget is not None and \
                self.stats["conflicts"] - conflicts_before >= conflict_budget:
            self.stats["stop_reason"] = \
                f"conflict budget {conflict_budget}"
            return SolveStatus.BUDGET_EXHAUSTED
        if propagation_budget is not None and \
                self.stats["propagations"] - self._props_at_start \
                >= propagation_budget:
            self.stats["stop_reason"] = \
                f"propagation budget {propagation_budget}"
            return SolveStatus.BUDGET_EXHAUSTED
        return None

    # Fault-injection resolution is identical to the arena engine's;
    # only the engine-specific site name differs.
    _fault_injector = CDCLSolver._fault_injector
    _engine_site = "legacy"
    # Observability hook (metrics absorb + solve-finish span event) is
    # shared with the arena engine; the site name distinguishes them.
    _observe = CDCLSolver._observe

    def _finish(self, status: SolveStatus, start: float) -> SolveResult:
        elapsed = time.perf_counter() - start
        self.stats["solve_time"] = elapsed
        self.stats["solver"] = self.config.name
        injector = getattr(self, "_injector", None)
        if status is not SolveStatus.SAT:
            if status is SolveStatus.UNSAT and self.config.proof_log:
                self.proof.append(())
                if injector is not None:
                    cut = injector.truncated_proof_length(len(self.proof))
                    if cut is not None:
                        del self.proof[cut:]
            if injector is not None and injector.log:
                self.stats["injected_faults"] = ",".join(injector.log)
            self._observe(status, elapsed)
            return SolveResult(status, stats=self.stats)
        values = [self._values[2 * v] == _TRUE for v in range(1, self.num_vars + 1)]
        if injector is not None:
            flip = injector.wrong_model_var(self.num_vars)
            if flip is not None:
                values[flip - 1] = not values[flip - 1]
            if injector.log:
                self.stats["injected_faults"] = ",".join(injector.log)
        # Observe after fault application so an injected wrong_model /
        # truncated_proof shows up in the fault.injected event.
        self._observe(status, elapsed)
        return SolveResult(SolveStatus.SAT, Model(values), stats=self.stats)


