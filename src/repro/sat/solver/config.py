"""Solver configuration and the two presets used in the experiments.

The paper solved its CNF instances with two off-the-shelf CDCL solvers,
``siege_v4`` and ``MiniSat``, and reports that siege was at least 2x faster
on the (hard) unsatisfiable instances while MiniSat had a small edge on the
(easy) satisfiable ones.  We reproduce the *two-solver* methodology with two
presets of our own CDCL core that differ in restart policy, polarity policy
and randomisation — the axes along which siege and MiniSat actually
differed — rather than shipping two separate engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class SolverConfig:
    """Tunable parameters of the CDCL solver.

    Attributes
    ----------
    var_decay:
        Multiplicative VSIDS decay applied after each conflict (the
        activity *increment* is divided by this, MiniSat-style).
    clause_decay:
        Decay for learned-clause activities used by DB reduction.
    restart_policy:
        ``"luby"`` (MiniSat 2.x) or ``"geometric"`` (early MiniSat/siege).
    restart_base:
        Conflicts per Luby unit, or the first geometric interval.
    restart_factor:
        Growth factor for the geometric policy.
    default_phase:
        Polarity for never-before-assigned variables: ``"false"``,
        ``"true"`` or ``"random"``.  Previously assigned variables always
        reuse their saved phase.
    random_decision_freq:
        Probability that a decision picks a uniformly random unassigned
        variable instead of the VSIDS maximum (siege-style diversification).
    seed:
        Seed for the solver's private RNG (decisions are deterministic
        given the seed).
    max_learnts_factor:
        Initial learned-clause limit as a fraction of original clauses.
    max_learnts_growth:
        Growth factor applied to the learned-clause limit at each restart.
    max_conflicts:
        Optional *hard* conflict budget; exceeding it raises
        :class:`~repro.sat.solver.cdcl.BudgetExceeded`.  Prefer
        ``conflict_budget`` for the non-raising, status-based variant.
    max_decisions:
        Optional hard decision budget, enforced the same way.
    conflict_budget:
        Soft per-call conflict budget: after this many conflicts within
        one ``solve()`` call the solver stops and returns a result with
        ``status=SolveStatus.BUDGET_EXHAUSTED`` and valid partial
        stats.  Checked on conflict boundaries only, so the hot BCP
        path is untouched and an unbudgeted run is bit-identical.
    propagation_budget:
        Soft per-call propagation budget, same semantics (checked on
        conflict boundaries).
    wall_clock_limit:
        Soft per-call deadline in seconds; exceeding it returns
        ``status=SolveStatus.TIMEOUT``.  Checked on conflict and
        decision boundaries.
    fault_plan:
        Fault-injection control (see :mod:`repro.reliability.faults`):
        ``None`` (default) activates only faults configured via the
        ``REPRO_FAULTS`` environment variable, a
        :class:`~repro.reliability.faults.FaultPlan` adds explicit
        faults on top, and ``False`` disables injection entirely (used
        by the audit layer so its re-solves cannot be faulted).  With
        no plan active the solver takes the exact same code path as
        before this field existed.
    clause_channel:
        Clause-sharing channel (see :mod:`repro.dist.sharing`): ``None``
        (default) disables sharing and keeps the solver's trajectory
        bit-identical to an unshared run; otherwise an object with the
        channel protocol (``export_max_length`` / ``export_max_lbd``
        attributes plus ``export(lits, lbd)`` and ``take()``).  Short
        learned clauses are exported after conflict analysis and peer
        clauses imported at restart boundaries (the solver is at root
        level there, so imports need no backtracking bookkeeping).
    proof_log:
        When True, the solver records every learned clause (a DRUP-style
        clausal proof).  On UNSAT the recorded sequence, terminated by the
        empty clause, can be independently verified with
        :func:`repro.sat.proof.check_rup_proof` — turning "provably
        unroutable" into a checkable certificate.
    engine:
        ``"arena"`` (default) selects the flat clause-arena BCP engine;
        ``"legacy"`` selects the pre-arena clause-object engine kept as a
        performance baseline; ``"packed"`` selects the array-packed
        variant of the arena engine (typed-array trail/reason/value
        state, watch lists as flat ``array`` pairs with the blocker
        literal inline).  ``arena`` and ``legacy`` follow the exact
        same search trajectory (identical decision/conflict counts);
        ``packed`` is deterministic and answer-equivalent but its
        inline blockers may go stale (MiniSat-style), so its
        trajectory — pinned by its own fixtures — can diverge.
    inprocessing:
        Master switch for inter-restart inprocessing (off by default so
        unflagged trajectories stay bit-identical).  When on, the solver
        runs a :class:`repro.sat.inprocess.Inprocessor` pass at the
        start of the search and again every ``inprocess_interval``
        restarts: clause subsumption + self-subsuming resolution,
        clause vivification, and bounded variable elimination, each
        individually gated by the ``inprocess_*`` flags below.
        Trajectories change (that is the point); results stay
        equisatisfiable, models are extended back over eliminated
        variables, and with ``proof_log`` every derived clause is
        recorded so UNSAT proofs still replay.
    inprocess_subsume:
        Enable the subsumption / self-subsuming-resolution phase of an
        inprocessing pass.
    inprocess_vivify:
        Enable the vivification phase (propagation-based clause
        shortening).
    inprocess_bve:
        Enable bounded variable elimination.  Eliminated variables may
        not appear in later ``solve(assumptions=...)`` calls.
    inprocess_interval:
        Restarts between inprocessing passes (a pass also runs once
        before the first conflict of a search).
    inprocess_ticks:
        Work budget per pass, counted in occurrence-list visits — the
        knob that keeps a pass a bounded slice of the search, in the
        same spirit as the ``SolveLimits`` budgets (which inprocessing
        also respects: its propagations count toward
        ``propagation_budget`` and the wall-clock deadline is checked
        between phases).
    reduce_policy:
        ``"activity"`` (default) reduces the learned-clause DB by
        activity alone, keeping the most recently useful half;
        ``"tier"`` uses Glucose-style literal-block-distance tiers:
        *core* clauses (``lbd <= tier_core_lbd``) are never deleted,
        *mid* clauses (``lbd <= tier_mid_lbd``) survive a reduction if
        they were used since the previous one, and *local* clauses
        compete by activity.  Either policy never deletes a clause that
        is currently the reason of a trail literal.
    tier_core_lbd:
        Inclusive LBD bound of the core tier (``reduce_policy="tier"``).
    tier_mid_lbd:
        Inclusive LBD bound of the mid tier.
    phase_timing:
        Record a per-phase wall-time split (``time_propagate``,
        ``time_analyze``, ``time_reduce``, ``time_inprocess`` in
        ``stats``).  Off by default: the checks cost a few percent but
        never change the trajectory.
    name:
        Human-readable preset name, reported in statistics.
    """

    var_decay: float = 0.95
    clause_decay: float = 0.999
    restart_policy: str = "luby"
    restart_base: int = 100
    restart_factor: float = 1.5
    default_phase: str = "false"
    random_decision_freq: float = 0.0
    seed: int = 0
    max_learnts_factor: float = 0.33
    max_learnts_growth: float = 1.1
    max_conflicts: Optional[int] = None
    max_decisions: Optional[int] = None
    conflict_budget: Optional[int] = None
    propagation_budget: Optional[int] = None
    wall_clock_limit: Optional[float] = None
    proof_log: bool = False
    engine: str = "arena"
    inprocessing: bool = False
    inprocess_subsume: bool = True
    inprocess_vivify: bool = True
    inprocess_bve: bool = True
    inprocess_interval: int = 4
    inprocess_ticks: int = 200_000
    reduce_policy: str = "activity"
    tier_core_lbd: int = 3
    tier_mid_lbd: int = 6
    phase_timing: bool = False
    name: str = "cdcl"
    #: None = env-configured faults only; FaultPlan = add these faults;
    #: False = injection disabled (audit re-solves).  ``object`` rather
    #: than an Optional[FaultPlan] annotation keeps this module free of
    #: reliability imports (the engines resolve it lazily).
    fault_plan: object = None
    #: None = no clause sharing (the default, trajectory-neutral);
    #: otherwise a channel endpoint from :mod:`repro.dist.sharing`.
    #: ``object`` for the same reason as ``fault_plan``: the solver
    #: package must not import the dist layer.
    clause_channel: object = None

    def __post_init__(self) -> None:
        if self.engine not in ("arena", "legacy", "packed"):
            raise ValueError(f"unknown solver engine {self.engine!r}")
        if self.reduce_policy not in ("activity", "tier"):
            raise ValueError(f"unknown reduce policy {self.reduce_policy!r}")
        if self.inprocess_interval < 1:
            raise ValueError("inprocess_interval must be positive")
        if self.inprocess_ticks < 1:
            raise ValueError("inprocess_ticks must be positive")
        if not 1 <= self.tier_core_lbd <= self.tier_mid_lbd:
            raise ValueError("need 1 <= tier_core_lbd <= tier_mid_lbd")
        if self.restart_policy not in ("luby", "geometric"):
            raise ValueError(f"unknown restart policy {self.restart_policy!r}")
        if self.default_phase not in ("false", "true", "random"):
            raise ValueError(f"unknown default phase {self.default_phase!r}")
        if not 0.0 <= self.random_decision_freq <= 1.0:
            raise ValueError("random_decision_freq must be in [0, 1]")
        if not 0.0 < self.var_decay <= 1.0:
            raise ValueError("var_decay must be in (0, 1]")
        for name in ("conflict_budget", "propagation_budget"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.wall_clock_limit is not None and self.wall_clock_limit <= 0:
            raise ValueError("wall_clock_limit must be positive")

    @property
    def budgeted(self) -> bool:
        """True when any soft budget (status-returning) is configured."""
        return (self.conflict_budget is not None
                or self.propagation_budget is not None
                or self.wall_clock_limit is not None)


def minisat_like(seed: int = 0, **overrides) -> SolverConfig:
    """MiniSat-flavoured preset: Luby restarts, saved phases, no randomness."""
    params = dict(var_decay=0.95, restart_policy="luby", restart_base=100,
                  default_phase="false", random_decision_freq=0.0,
                  seed=seed, name="minisat_like")
    params.update(overrides)
    return SolverConfig(**params)


def siege_like(seed: int = 0, **overrides) -> SolverConfig:
    """Siege-flavoured preset: aggressive geometric restarts plus a small
    random-decision rate, which on our instances (as in the paper) pays off
    on hard unsatisfiable formulas."""
    params = dict(var_decay=0.90, restart_policy="geometric",
                  restart_base=120, restart_factor=1.2,
                  default_phase="false", random_decision_freq=0.02,
                  seed=seed, name="siege_like")
    params.update(overrides)
    return SolverConfig(**params)


PRESETS = {
    "minisat_like": minisat_like,
    "siege_like": siege_like,
}


def preset(name: str, seed: int = 0, **overrides) -> SolverConfig:
    """Look up a preset by name (``minisat_like`` or ``siege_like``)."""
    try:
        factory = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ValueError(f"unknown solver preset {name!r} (known: {known})") from None
    return factory(seed=seed, **overrides)
