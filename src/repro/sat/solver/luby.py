"""The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...).

Used by the CDCL solver's ``luby`` restart policy, mirroring MiniSat.
"""

from __future__ import annotations

from typing import List


def luby(index: int) -> int:
    """Return the ``index``-th element (1-based) of the Luby sequence.

    Follows MiniSat's formulation: find the finite subsequence that
    contains the index, then recurse into it.
    """
    if index < 1:
        raise ValueError("Luby sequence is 1-based")
    x = index - 1
    size = 1
    sequence = 0
    while size < x + 1:
        sequence += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        sequence -= 1
        x = x % size
    return 2 ** sequence


def luby_prefix(count: int) -> List[int]:
    """Return the first ``count`` elements of the Luby sequence."""
    return [luby(i) for i in range(1, count + 1)]
