"""A plain DPLL solver (no learning) used as a baseline and cross-check.

This mirrors the pre-Chaff generation of SAT solvers the paper's
introduction contrasts against: chronological backtracking, unit
propagation and a most-occurrences branching rule.  It is intentionally
simple; its role in the reproduction is (a) an independent oracle for the
CDCL solver on small instances and (b) a baseline showing why modern CDCL
matters for the unroutable (UNSAT) routing formulas.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..cnf import CNF
from ..model import Model, SolveResult
from ..status import SolveStatus


class DPLLSolver:
    """Recursive DPLL over an explicit clause list."""

    def __init__(self, cnf: CNF, max_decisions: Optional[int] = None) -> None:
        self.num_vars = cnf.num_vars
        self.max_decisions = max_decisions
        self._clauses: List[List[int]] = [list(c) for c in cnf]
        self.stats: Dict[str, float] = {"decisions": 0, "propagations": 0}

    def solve(self) -> SolveResult:
        """Run the search and return a :class:`SolveResult`."""
        start = time.perf_counter()
        assignment: Dict[int, bool] = {}
        satisfiable = self._search(self._clauses, assignment)
        self.stats["solve_time"] = time.perf_counter() - start
        self.stats["solver"] = "dpll"
        if not satisfiable:
            return SolveResult(SolveStatus.UNSAT, stats=self.stats)
        values = [assignment.get(v, False) for v in range(1, self.num_vars + 1)]
        return SolveResult(SolveStatus.SAT, Model(values), stats=self.stats)

    def _search(self, clauses: List[List[int]], assignment: Dict[int, bool]) -> bool:
        clauses = self._unit_propagate(clauses, assignment)
        if clauses is None:
            return False
        if not clauses:
            return True
        if self.max_decisions is not None \
                and self.stats["decisions"] >= self.max_decisions:
            raise RuntimeError("DPLL decision budget exhausted")
        self.stats["decisions"] += 1
        lit = self._choose_literal(clauses)
        for choice in (lit, -lit):
            trial = dict(assignment)
            trial[abs(choice)] = choice > 0
            reduced = self._assign(clauses, choice)
            if reduced is not None and self._search(reduced, trial):
                assignment.clear()
                assignment.update(trial)
                return True
        return False

    def _unit_propagate(self, clauses: List[List[int]],
                        assignment: Dict[int, bool]) -> Optional[List[List[int]]]:
        while True:
            unit = None
            for clause in clauses:
                if not clause:
                    return None
                if len(clause) == 1:
                    unit = clause[0]
                    break
            if unit is None:
                return clauses
            self.stats["propagations"] += 1
            assignment[abs(unit)] = unit > 0
            clauses = self._assign(clauses, unit)
            if clauses is None:
                return None

    @staticmethod
    def _assign(clauses: List[List[int]], lit: int) -> Optional[List[List[int]]]:
        """Simplify ``clauses`` under ``lit := true``; None on empty clause."""
        result = []
        for clause in clauses:
            if lit in clause:
                continue
            if -lit in clause:
                reduced = [x for x in clause if x != -lit]
                if not reduced:
                    return None
                result.append(reduced)
            else:
                result.append(clause)
        return result

    @staticmethod
    def _choose_literal(clauses: List[List[int]]) -> int:
        counts: Dict[int, int] = {}
        for clause in clauses:
            for lit in clause:
                counts[lit] = counts.get(lit, 0) + 1
        return max(counts, key=lambda lit: (counts[lit], -abs(lit)))


def solve_dpll(cnf: CNF, max_decisions: Optional[int] = None) -> SolveResult:
    """Convenience wrapper around :class:`DPLLSolver`."""
    return DPLLSolver(cnf, max_decisions=max_decisions).solve()
