"""A conflict-driven clause-learning (CDCL) SAT solver.

This is the substrate that stands in for the ``siege_v4`` / ``MiniSat``
binaries used in the paper.  It implements the standard modern CDCL
architecture:

* two-literal watching for unit propagation,
* first-UIP conflict analysis with local (reason-based) clause
  minimisation,
* VSIDS variable activities with phase saving,
* Luby or geometric restarts,
* activity-driven learned-clause database reduction.

Literals are handled internally as *codes* (``2*v`` for ``v``, ``2*v + 1``
for ``-v``), so negation is ``code ^ 1`` and codes index flat arrays.

Clause storage — the flat arena
-------------------------------

BCP dominates CDCL runtime, so the clause database is laid out for the
propagation loop rather than for object-at-a-time convenience:

* **Arena.**  All clause literals live in one flat list
  (``self._arena``); clause *ref* ``i`` owns the slice
  ``arena[_coff[i] : _coff[i] + _clen[i]]``.  Refs are stable for the
  solver's lifetime (headers are append-only), so reason pointers and
  watch lists never need fixing up; deleting a clause just zeroes its
  length, and :meth:`_compact_arena` squeezes the dead literals out once
  they exceed half the arena.
* **Blocker literals.**  Watch lists hold *watcher records*, two per
  clause: record ``e`` belongs to clause ``e >> 1``, its partner is
  ``e ^ 1``, and ``self._wother[e]`` caches the clause's *other*
  watched literal — its blocker.  When the blocker is true at a visit,
  the clause is already satisfied and the loop skips it without
  touching the clause at all — the MiniSat blocker-literal
  optimisation, and the single most common case on real instances
  (``stats["blocker_hits"] / stats["watch_inspections"]``).

  Unlike MiniSat's per-watcher blocker copies, which are allowed to go
  stale when the partner watch moves, the cache here is kept *fresh*:
  a watch move performs one extra write (``_wother[e ^ 1] = new``) so
  the partner record always names the current other watch.  Freshness
  is what makes the skip exact — it fires precisely when the reference
  engine's "first watched literal is true" keep would, so the search
  trajectory is unchanged, and a failed test means the clause is
  genuinely unit, conflicting, deleted, or must move its watch (the
  "satisfied after dereference" case cannot occur).
* **Write-free scanning.**  Each watch list is first walked by a plain
  ``for`` loop (C-level list iteration) that does not write the list
  back while entries are merely skipped or kept; only after the first
  genuine removal (a moved watch or a deleted clause) does an indexed
  compacting scan shift the remaining entries.  Passes without a
  removal — the common case — leave the list object untouched.

The arena is a representation change only: the engine visits clauses in
the same order and picks the same watches as the pre-arena engine
(:mod:`repro.sat.solver.legacy`, kept behind
``SolverConfig(engine="legacy")``), so both produce identical
decision/conflict counts — the determinism fixture suite pins this.
"""

from __future__ import annotations

import heapq
import os
import random
import time
from typing import Dict, List, Optional

from ...obs import metrics as obs_metrics
from ...obs import trace as obs_trace
from ..cnf import CNF
from ..literals import clause_to_codes, lit_to_code, var_of
from ..model import Model, SolveResult
from ..status import CancelToken, SolveStatus
from .config import SolverConfig
from .luby import luby

_UNDEF = 0
_TRUE = 1
_FALSE = -1

_RESCALE_LIMIT = 1e100
_RESCALE_FACTOR = 1e-100


class BudgetExceeded(Exception):
    """Raised when a configured conflict/decision budget is exhausted."""


class CDCLSolver:
    """Solve one CNF formula, optionally under assumptions.

    ``solve()`` may be called repeatedly with different assumption sets;
    learned clauses persist across calls (incremental solving), which is
    what makes the channel-width sweep in
    :mod:`repro.core.incremental` cheap.

    Constructing with ``SolverConfig(engine="legacy")`` returns the
    pre-arena :class:`~repro.sat.solver.legacy.LegacyCDCLSolver`
    instead — same API, same search trajectory, original clause-object
    storage — so the two BCP implementations can be raced against each
    other (see :mod:`repro.bench.throughput`).

    Parameters
    ----------
    cnf:
        The formula to solve.
    config:
        Solver parameters; defaults to a MiniSat-like configuration.
    """

    #: Glucose reduction cadence for ``reduce_policy="tier"``:
    #: reduce every ``base + step * reductions_so_far`` conflicts.
    #: Class-level so experiments (and tests) can tune it without
    #: touching the per-run :class:`SolverConfig` surface.  (1000, 150)
    #: measured ~25% fewer watch inspections than Glucose's classic
    #: (2000, 300) on the conflict-heavy suite at equal conflict counts.
    _tier_cadence = (1000, 150)

    def __new__(cls, cnf: CNF, config: Optional[SolverConfig] = None):
        if cls is CDCLSolver and config is not None:
            if config.engine == "legacy":
                from .legacy import LegacyCDCLSolver
                return LegacyCDCLSolver(cnf, config)
            if config.engine == "packed":
                from .packed import PackedCDCLSolver
                return super().__new__(PackedCDCLSolver)
        return super().__new__(cls)

    def __init__(self, cnf: CNF, config: Optional[SolverConfig] = None) -> None:
        self.config = config or SolverConfig()
        self.num_vars = cnf.num_vars
        self._rng = random.Random(self.config.seed)

        n = self.num_vars
        # values is indexed by literal code; entry 0/1 are padding.
        self._values: List[int] = [_UNDEF] * (2 * n + 2)
        self._level: List[int] = [0] * (n + 1)
        self._reason: List[int] = [-1] * (n + 1)  # clause ref, -1 = none
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0

        self._activity: List[float] = [0.0] * (n + 1)
        self._var_inc = 1.0
        self._heap: List = [(0.0, v) for v in range(1, n + 1)]
        heapq.heapify(self._heap)
        if self.config.default_phase == "true":
            self._saved_phase = [True] * (n + 1)
        elif self.config.default_phase == "random":
            self._saved_phase = [self._rng.random() < 0.5 for _ in range(n + 1)]
        else:
            self._saved_phase = [False] * (n + 1)

        # Flat clause arena (see module docstring): literals of clause
        # ref i are arena[_coff[i] : _coff[i] + _clen[i]]; _clen[i] == 0
        # marks a deleted clause whose literals are dead arena space.
        self._arena: List[int] = []
        self._coff: List[int] = []
        self._clen: List[int] = []
        self._learnt: List[bool] = []
        self._clause_act: List[float] = []
        self._arena_dead = 0
        self._clause_inc = 1.0
        self._num_original = 0
        self._num_learned_live = 0
        self._watches: List[List[int]] = [[] for _ in range(2 * n + 2)]
        # Watcher records: clause ref R owns entries 2*R and 2*R + 1,
        # one per watched literal; entry e caches the clause's *other*
        # watched literal in _wother[e] (its blocker), and e ^ 1 is the
        # partner entry.  See _propagate.
        self._wother: List[int] = []
        self._seen = bytearray(n + 1)
        # Per-clause LBD (conflict-time literal-block distance, 0 =
        # unknown) and last-used conflict stamp; only consulted when
        # reduce_policy == "tier" but always allocated so _attach stays
        # branch-free.
        self._lbd: List[int] = []
        self._used_at: List[int] = []
        self._tier_on = self.config.reduce_policy == "tier"
        self._last_reduce_conflicts = 0
        self._tier_reductions = 0
        # Variables resolved away by inprocessing BVE (all zeros — and
        # therefore trajectory-neutral — until a pass eliminates one).
        self._eliminated = bytearray(n + 1)
        self._inpro = None  # lazily built Inprocessor

        self._ok = True  # False once root-level unsatisfiability is known
        #: DRUP-style clausal proof: every learned clause in DIMACS
        #: literals, in derivation order, terminated by () on UNSAT.
        #: Populated only when config.proof_log is set.
        self.proof: List[tuple] = []
        self.stats: Dict[str, float] = {
            "conflicts": 0, "decisions": 0, "propagations": 0,
            "restarts": 0, "learned_clauses": 0, "deleted_clauses": 0,
            "minimized_literals": 0,
            "watch_inspections": 0, "blocker_hits": 0,
            "arena_compactions": 0,
        }
        self._ingest(cnf)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _ingest(self, cnf: CNF) -> None:
        for clause in cnf:
            if not self._ok:
                return
            codes = clause_to_codes(clause)
            if codes is None:  # tautology
                continue
            if not codes:
                self._ok = False
                return
            if len(codes) == 1:
                value = self._values[codes[0]]
                if value == _FALSE:
                    self._ok = False
                elif value == _UNDEF:
                    self._enqueue(codes[0], -1)
            else:
                self._attach(codes, learnt=False)
        if self._ok and self._propagate() != -1:
            self._ok = False

    def _attach(self, codes: List[int], learnt: bool) -> int:
        ref = len(self._coff)
        self._coff.append(len(self._arena))
        self._clen.append(len(codes))
        self._arena.extend(codes)
        self._learnt.append(learnt)
        self._clause_act.append(0.0)
        self._lbd.append(0)
        self._used_at.append(0)
        # Watcher records 2*ref and 2*ref + 1, each caching the other
        # watch as its blocker (kept fresh by _propagate on every move).
        self._wother.extend((codes[1], codes[0]))
        self._watches[codes[0]].append(2 * ref)
        self._watches[codes[1]].append(2 * ref + 1)
        if learnt:
            self._num_learned_live += 1
        else:
            self._num_original += 1
        return ref

    def _clause_codes(self, ref: int) -> List[int]:
        """The literal codes of clause ``ref`` (a copy; test/debug hook)."""
        off = self._coff[ref]
        return self._arena[off:off + self._clen[ref]]

    # ------------------------------------------------------------------
    # Assignment / trail
    # ------------------------------------------------------------------

    def _enqueue(self, code: int, reason: int) -> None:
        self._values[code] = _TRUE
        self._values[code ^ 1] = _FALSE
        var = code >> 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(code)

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        values = self._values
        saved = self._saved_phase
        heap = self._heap
        activity = self._activity
        reason = self._reason
        heappush = heapq.heappush
        for code in reversed(self._trail[limit:]):
            var = code >> 1
            saved[var] = not (code & 1)
            values[code] = _UNDEF
            values[code ^ 1] = _UNDEF
            reason[var] = -1
            heappush(heap, (-activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Unit propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> int:
        """Propagate all enqueued assignments.

        Returns the ref of a conflicting clause, or -1 if none.

        This is the solver's hot loop and it is written accordingly:

        * every attribute is localised and the enqueue is inlined;
        * watch entry ``e`` is a *watcher record*: clause ref
          ``e >> 1``, partner record ``e ^ 1``, and cached blocker
          ``_wother[e]`` — the clause's other watched literal, updated
          on the partner record whenever a watch moves, so it is never
          stale.  The skip test ``values[_wother[e]] == 1`` therefore
          fires exactly when the reference engine's "first watched
          literal is true" keep would, and a failed test means the
          clause is genuinely unit, conflicting, deleted, or must move
          its watch — the "satisfied after dereference" case cannot
          occur;
        * each watch list is first walked by a *write-free* ``for``
          scan (C-level list iteration, no index arithmetic) — skips
          and keeps do not rewrite the list.  Only once an entry must
          actually be removed (a moved watch or a deleted clause) does
          an indexed compacting scan take over, locating the removal
          point with ``list.index`` (entries are unique within a list).

        Stats are accumulated in locals and flushed once on exit.
        """
        values = self._values
        watches = self._watches
        arena = self._arena
        coff = self._coff
        clen = self._clen
        wother = self._wother
        trail = self._trail
        level = self._level
        reason = self._reason
        level_num = len(self._trail_lim)
        qhead = self._qhead
        trail_len = len(trail)
        props = 0
        inspections = 0
        derefs = 0
        conflict = -1
        while qhead < trail_len:
            propagated = trail[qhead]
            qhead += 1
            props += 1
            false_code = propagated ^ 1
            watchers = watches[false_code]
            if not watchers:
                continue
            inspections += len(watchers)
            removed_at = -1
            for e in watchers:
                if values[wother[e]] == 1:  # blocker true: satisfied
                    continue
                derefs += 1
                other = wother[e]
                value = values[other]
                # Freshness means `other` IS the clause's other watched
                # literal, so nothing below re-reads it from the arena.
                ci = e >> 1
                length = clen[ci]
                if length == 2:
                    off = coff[ci]
                    arena[off] = other  # normalise slots for _analyze
                    arena[off + 1] = false_code
                elif length == 3:
                    off = coff[ci]
                    code = arena[off + 2]
                    if values[code] != -1:
                        if arena[off] == false_code:
                            arena[off] = other
                        arena[off + 1] = code
                        arena[off + 2] = false_code
                        watches[code].append(e)
                        wother[e ^ 1] = code
                        removed_at = watchers.index(e)
                        break
                    arena[off] = other
                    arena[off + 1] = false_code
                elif length == 0:  # deleted: entry must be dropped
                    removed_at = watchers.index(e)
                    break
                else:
                    off = coff[ci]
                    if arena[off] == false_code:
                        arena[off] = other
                        arena[off + 1] = false_code
                    moved = False
                    for k in range(off + 2, off + length):
                        code = arena[k]
                        if values[code] != -1:
                            arena[off + 1] = code
                            arena[k] = false_code
                            watches[code].append(e)
                            wother[e ^ 1] = code
                            moved = True
                            break
                    if moved:
                        removed_at = watchers.index(e)
                        break
                if value == 0:
                    # Unit: inlined _enqueue.
                    values[other] = 1
                    values[other ^ 1] = -1
                    var = other >> 1
                    level[var] = level_num
                    reason[var] = ci
                    trail.append(other)
                    trail_len += 1
                    continue
                # Conflict; list untouched so far.  Slots after `e` were
                # pre-counted as inspected but never scanned — undo that.
                inspections -= len(watchers) - watchers.index(e) - 1
                qhead = trail_len
                conflict = ci
                break
            if removed_at >= 0:
                # Compacting scan: an entry was removed above, so every
                # kept entry from here on is shifted left by the gap.
                j = removed_at
                i = removed_at + 1
                count = len(watchers)
                while i < count:
                    e = watchers[i]
                    i += 1
                    if values[wother[e]] == 1:  # blocker true: satisfied
                        watchers[j] = e
                        j += 1
                        continue
                    derefs += 1
                    other = wother[e]
                    value = values[other]
                    ci = e >> 1
                    length = clen[ci]
                    if length == 2:
                        off = coff[ci]
                        arena[off] = other
                        arena[off + 1] = false_code
                    elif length == 3:
                        off = coff[ci]
                        code = arena[off + 2]
                        if values[code] != -1:
                            if arena[off] == false_code:
                                arena[off] = other
                            arena[off + 1] = code
                            arena[off + 2] = false_code
                            watches[code].append(e)
                            wother[e ^ 1] = code
                            continue
                        arena[off] = other
                        arena[off + 1] = false_code
                    elif length == 0:
                        continue  # deleted: drop
                    else:
                        off = coff[ci]
                        if arena[off] == false_code:
                            arena[off] = other
                            arena[off + 1] = false_code
                        moved = False
                        for k in range(off + 2, off + length):
                            code = arena[k]
                            if values[code] != -1:
                                arena[off + 1] = code
                                arena[k] = false_code
                                watches[code].append(e)
                                wother[e ^ 1] = code
                                moved = True
                                break
                        if moved:
                            continue
                    watchers[j] = e
                    j += 1
                    if value == 0:
                        values[other] = 1
                        values[other ^ 1] = -1
                        var = other >> 1
                        level[var] = level_num
                        reason[var] = ci
                        trail.append(other)
                        trail_len += 1
                        continue
                    inspections -= count - i  # rest kept unscanned
                    while i < count:  # conflict: keep the rest
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    qhead = trail_len
                    conflict = ci
                    break
                del watchers[j:]
            if conflict != -1:
                break
        self._qhead = qhead
        stats = self.stats
        stats["propagations"] += props
        stats["watch_inspections"] += inspections
        # Every inspected slot either passed the blocker test (hit) or
        # fell through to a clause dereference — hits are the difference,
        # which keeps the hot skip path free of counter updates.
        stats["blocker_hits"] += inspections - derefs
        return conflict

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > _RESCALE_LIMIT:
            self._rescale_activities()
        if self._values[2 * var] == _UNDEF:
            heapq.heappush(self._heap, (-self._activity[var], var))

    def _rescale_activities(self) -> None:
        for var in range(1, self.num_vars + 1):
            self._activity[var] *= _RESCALE_FACTOR
        self._var_inc *= _RESCALE_FACTOR
        values = self._values
        self._heap = [(-self._activity[v], v) for v in range(1, self.num_vars + 1)
                      if values[2 * v] == _UNDEF]
        heapq.heapify(self._heap)

    def _bump_clause(self, ref: int) -> None:
        self._clause_act[ref] += self._clause_inc
        if self._clause_act[ref] > _RESCALE_LIMIT:
            self._rescale_clause_acts()

    def _rescale_clause_acts(self) -> None:
        clause_act = self._clause_act
        for i in range(len(clause_act)):
            clause_act[i] *= _RESCALE_FACTOR
        self._clause_inc *= _RESCALE_FACTOR

    def _analyze(self, conflict: int) -> (List[int], int):
        """First-UIP analysis.  Returns (learnt clause codes, backtrack level)
        with the asserting literal in position 0."""
        learnt: List[int] = [0]
        seen = self._seen
        trail = self._trail
        level = self._level
        reason = self._reason
        arena = self._arena
        coff = self._coff
        clen = self._clen
        learnt_flags = self._learnt
        activity = self._activity
        values = self._values
        heap = self._heap
        heappush = heapq.heappush
        clause_act = self._clause_act
        clause_inc = self._clause_inc
        current_level = len(self._trail_lim)
        # Tier policy: stamp every learned clause visited during
        # analysis as "used", so the mid tier can keep recently useful
        # clauses through a reduction.  None (the default policy) keeps
        # the loop branch cost to one comparison.
        used_at = self._used_at if self._tier_on else None
        now = self.stats["conflicts"]
        to_clear: List[int] = []
        counter = 0
        p = -1
        index = len(trail) - 1
        clause = conflict
        while True:
            if learnt_flags[clause]:
                # Inlined _bump_clause.
                act = clause_act[clause] + clause_inc
                clause_act[clause] = act
                if act > _RESCALE_LIMIT:
                    self._rescale_clause_acts()
                    clause_inc = self._clause_inc
                if used_at is not None:
                    used_at[clause] = now
            off = coff[clause]
            var_inc = self._var_inc
            # Slice, don't index: C-level iteration over the clause's
            # literals beats per-literal index arithmetic.
            for q in arena[off if p == -1 else off + 1:off + clen[clause]]:
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    to_clear.append(var)
                    # Inlined _bump_var.
                    act = activity[var] + var_inc
                    activity[var] = act
                    if act > _RESCALE_LIMIT:
                        self._rescale_activities()
                        var_inc = self._var_inc
                        heap = self._heap
                        act = activity[var]
                    if values[var << 1] == 0:
                        heappush(heap, (-act, var))
                    if level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            var = p >> 1
            clause = reason[var]
            seen[var] = 0
            counter -= 1
            index -= 1
            if counter <= 0:
                break
        learnt[0] = p ^ 1

        # Local minimisation: drop a literal whose reason clause is entirely
        # covered by the rest of the learnt clause (or by root assignments).
        if len(learnt) > 2:
            kept = [learnt[0]]
            minimized = 0
            for q in learnt[1:]:
                ref = reason[q >> 1]
                if ref == -1:
                    kept.append(q)
                    continue
                redundant = True
                qvar = q >> 1
                off = coff[ref]
                for code in arena[off:off + clen[ref]]:
                    var = code >> 1
                    if var == qvar:
                        continue
                    if not seen[var] and level[var] > 0:
                        redundant = False
                        break
                if redundant:
                    minimized += 1
                else:
                    kept.append(q)
            learnt = kept
            if minimized:
                self.stats["minimized_literals"] += minimized

        for var in to_clear:
            seen[var] = 0

        if len(learnt) == 1:
            return learnt, 0
        # Move a literal from the highest remaining level to position 1.
        best = 1
        for k in range(2, len(learnt)):
            if level[learnt[k] >> 1] > level[learnt[best] >> 1]:
                best = k
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, level[learnt[1] >> 1]

    # ------------------------------------------------------------------
    # Learned-clause database reduction
    # ------------------------------------------------------------------

    def _delete_clause(self, ref: int) -> None:
        """Delete clause ``ref``: zero its length (its watch-list
        entries drop lazily in _propagate, its literals stay as dead
        arena space until the next compaction)."""
        length = self._clen[ref]
        if length == 0:
            return
        self._arena_dead += length
        self._clen[ref] = 0
        if self._learnt[ref]:
            self._num_learned_live -= 1
        else:
            self._num_original -= 1
        self.stats["deleted_clauses"] += 1

    def _protected_refs(self) -> set:
        """Refs of clauses currently acting as reason for a trail
        literal.  Deleting one would leave ``_reason`` dangling, so DB
        reduction must skip them *unconditionally* — not via any
        heuristic on watch slots or activities."""
        reason = self._reason
        protected = {reason[code >> 1] for code in self._trail}
        protected.discard(-1)
        return protected

    def _reduce_db(self) -> None:
        if self._tier_on:
            self._reduce_db_tier(self._protected_refs())
        else:
            self._reduce_db_activity(self._protected_refs())
        # Watch-list entries of deleted clauses are dropped lazily by
        # _propagate; the arena itself is compacted once most of it is dead.
        if self._arena_dead * 2 > len(self._arena):
            self._compact_arena()

    def _reduce_db_activity(self, protected: set) -> None:
        """Classic MiniSat policy: drop the less active half."""
        learnt = self._learnt
        clen = self._clen
        candidates = [i for i in range(len(clen))
                      if learnt[i] and clen[i] > 2 and i not in protected]
        candidates.sort(key=self._clause_act.__getitem__)
        for i in candidates[:len(candidates) // 2]:
            self._delete_clause(i)

    def _reduce_db_tier(self, protected: set) -> None:
        """Glucose-style tiers keyed on conflict-time LBD.

        *core* (``lbd <= tier_core_lbd``) clauses are never deleted;
        *mid* (``lbd <= tier_mid_lbd``) clauses survive if conflict
        analysis touched them since the previous reduction, else they
        compete with the *local* tier, which is halved worst-first
        (highest LBD, then lowest activity).  Unknown LBD (0 — e.g.
        clauses learned before the policy was switched on) competes as
        worst.
        """
        with obs_trace.span("reduce.tier") as span:
            learnt = self._learnt
            clen = self._clen
            lbd = self._lbd
            used_at = self._used_at
            act = self._clause_act
            core = self.config.tier_core_lbd
            mid = self.config.tier_mid_lbd
            last = self._last_reduce_conflicts
            unknown = 1 << 30
            pool: List[int] = []
            kept_mid = 0
            for i in range(len(clen)):
                if not learnt[i] or clen[i] <= 2 or i in protected:
                    continue
                d = lbd[i] or unknown
                if d <= core:
                    continue
                if d <= mid and used_at[i] > last:
                    kept_mid += 1
                    continue
                pool.append(i)
            pool.sort(key=lambda i: (-(lbd[i] or unknown), act[i]))
            for i in pool[:len(pool) // 2]:
                self._delete_clause(i)
            self._last_reduce_conflicts = self.stats["conflicts"]
            self._tier_reductions += 1
            span.set("deleted", len(pool) // 2)
            span.set("kept_mid", kept_mid)

    def _compact_arena(self) -> None:
        """Squeeze deleted clauses' literals out of the arena.

        Clause refs are indices into the header lists, not arena
        offsets, so only the offsets change — watch lists and reason
        pointers stay valid untouched.
        """
        arena = self._arena
        coff = self._coff
        clen = self._clen
        compacted: List[int] = []
        for ref in range(len(coff)):
            length = clen[ref]
            if length == 0:
                continue
            off = coff[ref]
            coff[ref] = len(compacted)
            compacted.extend(arena[off:off + length])
        self._arena = compacted
        self._arena_dead = 0
        self.stats["arena_compactions"] += 1

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _pick_branch_var(self) -> int:
        values = self._values
        eliminated = self._eliminated
        if (self.config.random_decision_freq > 0.0
                and self._rng.random() < self.config.random_decision_freq):
            for _ in range(10):
                var = self._rng.randint(1, self.num_vars)
                if values[2 * var] == _UNDEF and not eliminated[var]:
                    return var
        heap = self._heap
        while heap:
            _, var = heapq.heappop(heap)
            if values[2 * var] == _UNDEF and not eliminated[var]:
                return var
        for var in range(1, self.num_vars + 1):
            if values[2 * var] == _UNDEF and not eliminated[var]:
                return var
        return 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def solve(self, assumptions: Optional[List[int]] = None,
              cancel: Optional[CancelToken] = None) -> SolveResult:
        """Run the CDCL search and return the result.

        ``assumptions`` is an optional list of DIMACS literals assumed
        true for this call only.  An UNSAT result under assumptions does
        not mean the formula itself is unsatisfiable
        (``stats["assumption_failed"]`` distinguishes the two).

        The search runs to completion unless bounded: soft budgets on
        the config (``conflict_budget``, ``propagation_budget``,
        ``wall_clock_limit``) and the cooperative ``cancel`` token are
        checked on conflict boundaries (the wall clock and token also on
        decision boundaries), ending the call with a
        TIMEOUT / BUDGET_EXHAUSTED status and valid partial stats
        instead of an exception.  With no budget and no token the search
        trajectory is bit-identical to an unbounded run.  The solver
        stays usable after a bounded stop — a later call resumes from
        the root with everything learned so far.
        """
        start = time.perf_counter()
        # Chaos hook: with a fault plan active (config.fault_plan or the
        # REPRO_FAULTS environment variable) build the injector for this
        # call; `None` on the normal path keeps the loop untouched.
        injector = self._injector = self._fault_injector()
        if injector is not None:
            injector.maybe_hang()
            injector.maybe_crash()
        if self.config.clause_channel is not None:
            # Sharing counters exist whenever a channel is configured,
            # even on calls that end before the main loop.
            for key in ("shared_exported", "shared_imported",
                        "shared_discarded"):
                self.stats.setdefault(key, 0)
        self._props_at_start = self.stats["propagations"]
        self._cancel_until(0)  # fresh call on a reused solver
        self.stats.pop("assumption_failed", None)
        self.stats.pop("stop_reason", None)
        assumed = []
        for lit in (assumptions or []):
            var = var_of(lit)
            if not 1 <= var <= self.num_vars:
                raise ValueError(f"assumption {lit} outside variables "
                                 f"1..{self.num_vars}")
            if self._eliminated[var]:
                raise ValueError(
                    f"assumption {lit} is on variable {var}, which was "
                    f"eliminated by inprocessing BVE in an earlier call; "
                    f"set inprocess_bve=False for incremental use with "
                    f"assumptions on arbitrary variables")
            assumed.append(lit_to_code(lit))
        if not self._ok:
            return self._finish(SolveStatus.UNSAT, start)
        if self.num_vars == 0:
            return self._finish(SolveStatus.SAT, start)

        config = self.config
        # Soft budgets: per-call counters, checked only at conflict and
        # decision boundaries so the hot BCP loop stays untouched.  With
        # no budget and no cancel token `bounded` is False and the main
        # loop below is exactly the unbudgeted one.
        conflict_budget = config.conflict_budget
        propagation_budget = config.propagation_budget
        deadline = (None if config.wall_clock_limit is None
                    else start + config.wall_clock_limit)
        conflicts_before = self.stats["conflicts"]
        bounded = (conflict_budget is not None
                   or propagation_budget is not None
                   or deadline is not None or cancel is not None)
        # Clause sharing: with a channel configured, short learned
        # clauses are exported after conflict analysis and peer clauses
        # imported at restart boundaries.  `share is None` on the normal
        # path — every hook below is guarded on it, so an unshared run
        # keeps a bit-identical trajectory.
        share = config.clause_channel
        restart_index = 1
        if config.restart_policy == "luby":
            restart_limit = luby(restart_index) * config.restart_base
        else:
            restart_limit = config.restart_base
        conflicts_since_restart = 0
        # Inprocessing: build the (per-solver, persistent) Inprocessor
        # lazily and run an initial pass before the first decision.  The
        # current call's assumption variables are frozen — BVE must not
        # resolve away a variable the caller is about to assume.
        inpro = None
        frozen: set = set()
        if config.inprocessing:
            if self._inpro is None:
                from ..inprocess import Inprocessor
                self._inpro = Inprocessor(self)
            inpro = self._inpro
            frozen = {code >> 1 for code in assumed}
        timing = config.phase_timing
        if timing:
            for key in ("time_propagate", "time_analyze", "time_reduce",
                        "time_inprocess"):
                self.stats.setdefault(key, 0.0)
        if inpro is not None:
            self._run_inprocess(frozen, deadline)
            if not self._ok:
                return self._finish(SolveStatus.UNSAT, start)
        max_learnts = max(100.0, config.max_learnts_factor * max(1, self._num_original))

        while True:
            if timing:
                t0 = time.perf_counter()
                conflict = self._propagate()
                self.stats["time_propagate"] += time.perf_counter() - t0
            else:
                conflict = self._propagate()
            if conflict != -1:
                self.stats["conflicts"] += 1
                conflicts_since_restart += 1
                if injector is not None:
                    delay = injector.slowdown_delay()
                    if delay > 0.0:
                        time.sleep(delay)
                if bounded:
                    stop = self._budget_stop(
                        cancel, deadline, conflict_budget,
                        propagation_budget, conflicts_before)
                    if stop is not None:
                        return self._finish(stop, start)
                if config.max_conflicts is not None \
                        and self.stats["conflicts"] > config.max_conflicts:
                    raise BudgetExceeded(
                        f"conflict budget {config.max_conflicts} exhausted")
                if not self._trail_lim:
                    return self._finish(SolveStatus.UNSAT, start)
                if timing:
                    t0 = time.perf_counter()
                    learnt, back_level = self._analyze(conflict)
                    self.stats["time_analyze"] += time.perf_counter() - t0
                else:
                    learnt, back_level = self._analyze(conflict)
                if config.proof_log:
                    self.proof.append(tuple(
                        code >> 1 if not code & 1 else -(code >> 1)
                        for code in learnt))
                self._cancel_until(back_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], -1)
                else:
                    ref = self._attach(learnt, learnt=True)
                    if self._tier_on:
                        # Conflict-time LBD: _cancel_until never
                        # rewrites _level entries, so the levels read
                        # here are the pre-backtrack ones.
                        level = self._level
                        self._lbd[ref] = len({level[q >> 1]
                                              for q in learnt})
                    self._bump_clause(ref)
                    self._enqueue(learnt[0], ref)
                self.stats["learned_clauses"] += 1
                if share is not None:
                    self._share_export(share, learnt)
                self._var_inc /= config.var_decay
                self._clause_inc /= config.clause_decay
            else:
                if bounded:
                    # Decision boundary: only the externally imposed
                    # bounds (deadline, cancellation) are re-checked, so
                    # conflict-free stretches cannot overrun them.
                    if cancel is not None and cancel.cancelled:
                        self.stats["stop_reason"] = "cancelled"
                        return self._finish(SolveStatus.TIMEOUT, start)
                    if deadline is not None \
                            and time.perf_counter() >= deadline:
                        self.stats["stop_reason"] = "wall-clock limit"
                        return self._finish(SolveStatus.TIMEOUT, start)
                if conflicts_since_restart >= restart_limit:
                    self.stats["restarts"] += 1
                    conflicts_since_restart = 0
                    restart_index += 1
                    if config.restart_policy == "luby":
                        restart_limit = luby(restart_index) * config.restart_base
                    else:
                        restart_limit *= config.restart_factor
                    max_learnts *= config.max_learnts_growth
                    self._cancel_until(0)
                    if share is not None and not self._import_shared(share):
                        return self._finish(SolveStatus.UNSAT, start)
                    if inpro is not None and self.stats["restarts"] \
                            % config.inprocess_interval == 0:
                        self._run_inprocess(frozen, deadline)
                        if not self._ok:
                            return self._finish(SolveStatus.UNSAT, start)
                    continue
                # The MiniSat size trigger, plus — tier policy only —
                # the Glucose cadence: reduce every base + step·k
                # conflicts regardless of DB size.  On conflict-heavy
                # instances the size trigger alone can simply never
                # fire, leaving propagation to wade through an
                # ever-growing learned DB; the cadence is what makes
                # the tier policy a *policy* rather than dead code.
                cadence_base, cadence_step = self._tier_cadence
                if (self._num_learned_live - len(self._trail) > max_learnts
                        or (self._tier_on
                            and self.stats["conflicts"]
                            - self._last_reduce_conflicts
                            >= cadence_base
                            + cadence_step * self._tier_reductions)):
                    if timing:
                        t0 = time.perf_counter()
                        self._reduce_db()
                        self.stats["time_reduce"] += \
                            time.perf_counter() - t0
                    else:
                        self._reduce_db()
                # Assumptions are consumed as pseudo-decisions, one level
                # each, before any free decision (MiniSat style).
                code = 0
                while len(self._trail_lim) < len(assumed):
                    assumption = assumed[len(self._trail_lim)]
                    value = self._values[assumption]
                    if value == _TRUE:
                        self._trail_lim.append(len(self._trail))
                        continue
                    if value == _FALSE:
                        self.stats["assumption_failed"] = 1
                        return self._finish(SolveStatus.UNSAT, start)
                    code = assumption
                    break
                if code == 0:
                    var = self._pick_branch_var()
                    if var == 0:
                        return self._finish(SolveStatus.SAT, start)
                    self.stats["decisions"] += 1
                    if config.max_decisions is not None \
                            and self.stats["decisions"] > config.max_decisions:
                        raise BudgetExceeded(
                            f"decision budget {config.max_decisions} "
                            f"exhausted")
                    code = 2 * var if self._saved_phase[var] else 2 * var + 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(code, -1)

    def _share_export(self, share, learnt) -> None:
        """Offer the just-learned clause to the sharing channel.

        Called with the conflict-time literal codes, *before* any decay
        bookkeeping, while ``self._level`` still holds the pre-backtrack
        levels (same window the tier policy reads its LBD from).  Only
        short, low-LBD clauses cross the channel — those carry the most
        pruning power per byte and keep peers' databases small.
        """
        if len(learnt) > share.export_max_length:
            return
        if len(learnt) == 1:
            lbd = 1
        else:
            level = self._level
            lbd = len({level[q >> 1] for q in learnt})
            if lbd > share.export_max_lbd:
                return
        lits = tuple(q >> 1 if not q & 1 else -(q >> 1) for q in learnt)
        if share.export(lits, lbd):
            self.stats["shared_exported"] += 1

    def _import_shared(self, share) -> bool:
        """Adopt peer-learned clauses from the sharing channel.

        Called at restart boundaries, where the solver sits at the root
        level, so imported clauses can be simplified against root-level
        assignments: satisfied clauses are skipped, root-false literals
        dropped, units enqueued directly, and an all-false clause
        refutes the formula (returns False → UNSAT).  Clauses touching
        BVE-eliminated variables are rejected — the local formula no
        longer constrains those variables, so attaching such a clause
        would be unsound after model extension.  Shared clauses are
        consequences of the common formula (1UIP analysis never resolves
        on assumption pseudo-decisions), so imports are sound even
        between solvers running under different assumption cubes.
        """
        values = self._values
        eliminated = self._eliminated
        imported = discarded = 0
        ok = True
        for lits, lbd in share.take():
            codes = []
            satisfied = False
            usable = True
            for lit in lits:
                var = lit if lit > 0 else -lit
                if not 1 <= var <= self.num_vars or eliminated[var]:
                    usable = False
                    break
                code = 2 * var if lit > 0 else 2 * var + 1
                value = values[code]
                if value == _TRUE:
                    satisfied = True
                    break
                if value == _FALSE:
                    continue  # root-falsified literal: drop it
                codes.append(code)
            if not usable or satisfied:
                discarded += 1
                continue
            imported += 1
            if not codes:
                # Every literal is root-false: the shared clause closes
                # the formula.  (Reachable when two peers export
                # contradictory units.)
                self._ok = False
                ok = False
                break
            if len(codes) == 1:
                self._enqueue(codes[0], -1)
            else:
                ref = self._attach(codes, learnt=True)
                if self._tier_on:
                    self._lbd[ref] = min(lbd, len(codes))
                self._bump_clause(ref)
        self.stats["shared_imported"] += imported
        self.stats["shared_discarded"] += discarded
        return ok

    def _run_inprocess(self, frozen: set, deadline) -> None:
        """One inprocessing pass at the root level (timed when
        ``phase_timing`` is on)."""
        t0 = time.perf_counter()
        self._inpro.run(frozen=frozen, deadline=deadline)
        if self.config.phase_timing:
            self.stats["time_inprocess"] += time.perf_counter() - t0

    def _budget_stop(self, cancel, deadline, conflict_budget,
                     propagation_budget, conflicts_before):
        """Status to stop with at a conflict boundary, or None to go on.

        Conflict/propagation budgets are per-call: counted against the
        stats at the start of this ``solve()`` call, so an incremental
        solver gets a fresh budget for every query.
        """
        if cancel is not None and cancel.cancelled:
            self.stats["stop_reason"] = "cancelled"
            return SolveStatus.TIMEOUT
        if deadline is not None and time.perf_counter() >= deadline:
            self.stats["stop_reason"] = "wall-clock limit"
            return SolveStatus.TIMEOUT
        if conflict_budget is not None and \
                self.stats["conflicts"] - conflicts_before >= conflict_budget:
            self.stats["stop_reason"] = \
                f"conflict budget {conflict_budget}"
            return SolveStatus.BUDGET_EXHAUSTED
        if propagation_budget is not None and \
                self.stats["propagations"] - self._props_at_start \
                >= propagation_budget:
            self.stats["stop_reason"] = \
                f"propagation budget {propagation_budget}"
            return SolveStatus.BUDGET_EXHAUSTED
        return None

    def _fault_injector(self):
        """The fault injector for this call, or None (the normal path).

        Resolution is lazy and guarded so that without a configured plan
        (explicitly or via ``REPRO_FAULTS``) no reliability module is
        even imported.
        """
        plan = self.config.fault_plan
        if plan is False:
            return None
        if plan is None and not os.environ.get("REPRO_FAULTS"):
            return None
        from ...reliability.faults import FaultInjector, FaultPlan
        resolved = FaultPlan.resolve(plan)
        if resolved is None or resolved.empty:
            return None
        return FaultInjector(resolved, label=self.config.name,
                             sites=("solver", self._engine_site,
                                    "inprocess"))

    #: Site name this engine answers to for engine-specific fault specs
    #: (``crash@arena`` vs ``crash@legacy``), used to test the batch
    #: runner's engine-fallback path.
    _engine_site = "arena"

    def _observe(self, status: SolveStatus, elapsed: float) -> None:
        """Report this call to the observability layer (metrics absorb
        + a span event), strictly outside the search loop.  One boolean
        check each on the disabled path; trajectories are untouched
        either way because nothing here feeds back into the search.
        """
        if obs_metrics.enabled():
            # Stats are cumulative across calls on a reused solver, so
            # the absorb is delta-based via the returned marker.
            self._obs_prev = obs_metrics.absorb_solver_stats(
                self.stats, engine=self._engine_site,
                prev=getattr(self, "_obs_prev", None))
        if obs_trace.enabled():
            obs_trace.event(
                "solver.finish", status=str(status),
                engine=self._engine_site, solver=self.config.name,
                conflicts=int(self.stats["conflicts"]),
                decisions=int(self.stats["decisions"]),
                propagations=int(self.stats["propagations"]),
                solve_time=round(elapsed, 6))
            injector = getattr(self, "_injector", None)
            if injector is not None and injector.log:
                obs_trace.event("fault.injected",
                                site=self._engine_site,
                                faults=",".join(injector.log))

    def _finish(self, status: SolveStatus, start: float) -> SolveResult:
        elapsed = time.perf_counter() - start
        self.stats["solve_time"] = elapsed
        props = self.stats["propagations"] - getattr(self, "_props_at_start", 0)
        self.stats["props_per_sec"] = props / elapsed if elapsed > 0 else 0.0
        self.stats["solver"] = self.config.name
        injector = getattr(self, "_injector", None)
        if status is not SolveStatus.SAT:
            if status is SolveStatus.UNSAT and self.config.proof_log:
                self.proof.append(())
                if injector is not None:
                    cut = injector.truncated_proof_length(len(self.proof))
                    if cut is not None:
                        del self.proof[cut:]
            if injector is not None and injector.log:
                self.stats["injected_faults"] = ",".join(injector.log)
            self._observe(status, elapsed)
            return SolveResult(status, stats=self.stats)
        values = [self._values[2 * v] == _TRUE for v in range(1, self.num_vars + 1)]
        if self._inpro is not None and self._inpro.eliminated_count:
            # Extend the model of the BVE-reduced formula back over the
            # eliminated variables (before any injected model fault, so
            # a wrong_model flip stays visible to the audit layer).
            values = self._inpro.extend(values)
        if injector is not None:
            flip = injector.wrong_model_var(self.num_vars)
            if flip is not None:
                values[flip - 1] = not values[flip - 1]
            if injector.log:
                self.stats["injected_faults"] = ",".join(injector.log)
        # Observe after fault application so an injected wrong_model /
        # truncated_proof shows up in the fault.injected event.
        self._observe(status, elapsed)
        return SolveResult(SolveStatus.SAT, Model(values), stats=self.stats)


def solve(cnf: CNF, config: Optional[SolverConfig] = None) -> SolveResult:
    """Convenience wrapper: solve ``cnf`` with a fresh :class:`CDCLSolver`
    (or the legacy engine when ``config.engine == "legacy"``)."""
    return CDCLSolver(cnf, config).solve()
