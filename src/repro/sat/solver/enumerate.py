"""Brute-force model enumeration — the testing oracle for the real solvers.

Only usable for tiny formulas (the cost is ``O(2**num_vars)``), which is
exactly what the property-based tests need: an implementation so simple it
is obviously correct.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, List

from ..cnf import CNF
from ..model import Model, SolveResult
from ..status import SolveStatus

_MAX_ENUM_VARS = 24


def enumerate_models(cnf: CNF) -> Iterator[Model]:
    """Yield every satisfying total assignment of ``cnf``.

    Raises ``ValueError`` for formulas with more than 24 variables, where
    enumeration would be hopeless anyway.
    """
    if cnf.num_vars > _MAX_ENUM_VARS:
        raise ValueError(
            f"refusing to enumerate {cnf.num_vars} variables "
            f"(limit {_MAX_ENUM_VARS})")
    clauses = [list(c) for c in cnf]
    for bits in product((False, True), repeat=cnf.num_vars):
        model = Model(list(bits))
        if all(model.satisfies_clause(c) for c in clauses):
            yield model


def solve_by_enumeration(cnf: CNF) -> SolveResult:
    """Return SAT with the first model found, or UNSAT."""
    for model in enumerate_models(cnf):
        return SolveResult(SolveStatus.SAT, model)
    return SolveResult(SolveStatus.UNSAT)


def count_models(cnf: CNF) -> int:
    """Count the satisfying assignments of a tiny formula."""
    return sum(1 for _ in enumerate_models(cnf))


def all_models(cnf: CNF) -> List[Model]:
    """Return every model of a tiny formula as a list."""
    return list(enumerate_models(cnf))
