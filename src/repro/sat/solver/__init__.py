"""SAT solving engines: CDCL (primary), DPLL (baseline), enumeration (oracle)."""

from ..status import CancelToken, SolveLimits, SolveReport, SolveStatus
from .cdcl import BudgetExceeded, CDCLSolver, solve
from .config import PRESETS, SolverConfig, minisat_like, preset, siege_like
from .dpll import DPLLSolver, solve_dpll
from .enumerate import (all_models, count_models, enumerate_models,
                        solve_by_enumeration)
from .legacy import LegacyCDCLSolver
from .luby import luby, luby_prefix
from .packed import PackedCDCLSolver

__all__ = [
    "BudgetExceeded", "CDCLSolver", "LegacyCDCLSolver",
    "PackedCDCLSolver", "solve",
    "CancelToken", "SolveLimits", "SolveReport", "SolveStatus",
    "PRESETS", "SolverConfig", "minisat_like", "preset", "siege_like",
    "DPLLSolver", "solve_dpll",
    "all_models", "count_models", "enumerate_models", "solve_by_enumeration",
    "luby", "luby_prefix",
]
