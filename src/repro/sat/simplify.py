"""CNF preprocessing: root unit propagation, pure-literal elimination,
duplicate/tautology removal, and (bounded) subsumption.

The paper's tool flow generates CNF mechanically from patterns, which
leaves easy simplifications on the table — e.g. symmetry breaking turns
pattern clauses into units that fix whole variable blocks.  Preprocessing
shrinks the formula before the CDCL search without changing
satisfiability, and remembers enough to extend a model of the simplified
formula back to the original variable space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .cnf import CNF
from .model import Model


@dataclass
class Simplification:
    """A simplified formula plus the bookkeeping to lift models back.

    Attributes
    ----------
    cnf:
        The simplified formula (same variable numbering as the original).
    forced:
        Variables fixed by root unit propagation (``{var: bool}``).
    pure:
        Variables eliminated as pure literals, with their satisfying
        polarity.
    contradiction:
        True when preprocessing alone refutes the formula.
    stats:
        Counters: units propagated, pure literals, clauses removed, ...
    """

    cnf: CNF
    forced: Dict[int, bool] = field(default_factory=dict)
    pure: Dict[int, bool] = field(default_factory=dict)
    contradiction: bool = False
    stats: Dict[str, int] = field(default_factory=dict)

    def extend_model(self, model: Model) -> Model:
        """Lift a model of the simplified formula to the original one.

        Forced and pure variables get their recorded values; everything
        else keeps the model's value.
        """
        values = [model.value(v) if v <= model.num_vars else False
                  for v in range(1, self.cnf.num_vars + 1)]
        for var, value in self.forced.items():
            values[var - 1] = value
        for var, value in self.pure.items():
            values[var - 1] = value
        return Model(values)


def _propagate_units(clauses: List[Tuple[int, ...]],
                     forced: Dict[int, bool]) -> Optional[List[Tuple[int, ...]]]:
    """Fixpoint unit propagation; returns None on contradiction."""
    changed = True
    while changed:
        changed = False
        remaining: List[Tuple[int, ...]] = []
        for clause in clauses:
            literals = []
            satisfied = False
            for lit in clause:
                value = forced.get(abs(lit))
                if value is None:
                    literals.append(lit)
                elif value == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                changed = True
                continue
            if not literals:
                return None
            if len(literals) == 1:
                lit = literals[0]
                var = abs(lit)
                want = lit > 0
                if forced.get(var, want) != want:
                    return None
                if var not in forced:
                    forced[var] = want
                    changed = True
                continue
            if len(literals) != len(clause):
                changed = True
            remaining.append(tuple(literals))
        clauses = remaining
    return clauses


def _eliminate_pure(clauses: List[Tuple[int, ...]],
                    pure: Dict[int, bool]) -> List[Tuple[int, ...]]:
    """Fixpoint pure-literal elimination."""
    while True:
        polarity: Dict[int, Set[bool]] = {}
        for clause in clauses:
            for lit in clause:
                polarity.setdefault(abs(lit), set()).add(lit > 0)
        new_pure = {var: polarities.pop()
                    for var, polarities in polarity.items()
                    if len(polarities) == 1}
        if not new_pure:
            return clauses
        pure.update(new_pure)
        clauses = [clause for clause in clauses
                   if not any(abs(lit) in new_pure for lit in clause)]


def _subsumption(clauses: List[Tuple[int, ...]],
                 max_clause_len: int = 8) -> Tuple[List[Tuple[int, ...]], int]:
    """Remove clauses subsumed by a (short) subset clause."""
    clause_sets = [frozenset(c) for c in clauses]
    by_literal: Dict[int, List[int]] = {}
    for index, literals in enumerate(clause_sets):
        for lit in literals:
            by_literal.setdefault(lit, []).append(index)
    removed = [False] * len(clauses)
    order = sorted(range(len(clauses)), key=lambda i: len(clause_sets[i]))
    for index in order:
        if removed[index]:
            continue
        literals = clause_sets[index]
        if not literals or len(literals) > max_clause_len:
            continue
        # Candidates must contain the rarest literal of this clause.
        rarest = min(literals, key=lambda lit: len(by_literal[lit]))
        for other in by_literal[rarest]:
            if other == index or removed[other]:
                continue
            if len(clause_sets[other]) > len(literals) \
                    and literals <= clause_sets[other]:
                removed[other] = True
    kept = [clauses[i] for i in range(len(clauses)) if not removed[i]]
    return kept, sum(removed)


def simplify(cnf: CNF, subsume: bool = True) -> Simplification:
    """Preprocess ``cnf``; the result is equisatisfiable and models lift
    back via :meth:`Simplification.extend_model`."""
    stats: Dict[str, int] = {"original_clauses": cnf.num_clauses}
    # Deduplicate and drop tautologies.
    seen: Set[frozenset] = set()
    clauses: List[Tuple[int, ...]] = []
    tautologies = 0
    duplicates = 0
    for clause in cnf:
        literals = frozenset(clause)
        if any(-lit in literals for lit in literals):
            tautologies += 1
            continue
        if literals in seen:
            duplicates += 1
            continue
        seen.add(literals)
        clauses.append(tuple(dict.fromkeys(clause)))
    stats["tautologies"] = tautologies
    stats["duplicates"] = duplicates

    forced: Dict[int, bool] = {}
    propagated = _propagate_units(clauses, forced)
    stats["forced_units"] = len(forced)
    if propagated is None:
        stats["final_clauses"] = 0
        return Simplification(cnf=CNF(num_vars=cnf.num_vars),
                              forced=forced, contradiction=True, stats=stats)

    pure: Dict[int, bool] = {}
    clauses = _eliminate_pure(propagated, pure)
    stats["pure_literals"] = len(pure)

    if subsume:
        clauses, subsumed = _subsumption(clauses)
        stats["subsumed"] = subsumed

    simplified = CNF(num_vars=cnf.num_vars)
    for clause in clauses:
        simplified.add_clause(clause)
    stats["final_clauses"] = simplified.num_clauses
    return Simplification(cnf=simplified, forced=forced, pure=pure,
                          stats=stats)


def solve_simplified(cnf: CNF, config=None):
    """Preprocess, solve, and lift the model back to the original formula.

    Drop-in alternative to :func:`repro.sat.solver.cdcl.solve`.
    """
    from .model import SolveResult
    from .status import SolveStatus
    from .solver.cdcl import solve as _solve

    simplification = simplify(cnf)
    if simplification.contradiction:
        return SolveResult(SolveStatus.UNSAT, stats={"preprocessed": 1})
    result = _solve(simplification.cnf, config)
    if not result.is_sat:
        # UNSAT, or an indeterminate (budget/timeout) status — either
        # way there is no model to lift, so pass the result through.
        return result
    model = simplification.extend_model(result.model)
    return SolveResult(SolveStatus.SAT, model, stats=result.stats)
