"""A small reduced-ordered BDD package.

Before the CDCL era, SAT-style routability questions were attacked with
Binary Decision Diagrams: the paper's related work (§1) credits Wood &
Rutenbar's BDD-based FPGA router and notes that "because of the limited
scalability of BDDs" it handled only one channel at a time.  This module
provides that baseline: enough of a BDD engine to decide routing CNFs on
small instances, hit its node-budget wall on larger ones, and thereby
reproduce the scalability contrast that motivated the move to CDCL.

The implementation is a classic strong-canonical-form manager: a unique
table keyed by ``(var, low, high)``, an ITE-based apply with a computed
table, natural variable order, model extraction and model counting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .cnf import CNF
from .model import Model, SolveResult
from .status import SolveStatus

#: Terminal node ids.
ZERO = 0
ONE = 1


class BDDLimitExceeded(Exception):
    """Raised when a node budget is exhausted (the expected failure mode
    of the BDD baseline on large routing instances)."""


class BDDManager:
    """A reduced, ordered BDD forest over variables ``1..num_vars``
    (natural order: smaller variable index closer to the root)."""

    def __init__(self, num_vars: int, node_limit: Optional[int] = None) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.node_limit = node_limit
        # nodes[i] = (var, low, high); entries 0/1 are terminal dummies.
        self._nodes: List[Tuple[int, int, int]] = [(num_vars + 1, 0, 0),
                                                   (num_vars + 1, 1, 1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def var_of(self, node: int) -> int:
        return self._nodes[node][0]

    def low(self, node: int) -> int:
        return self._nodes[node][1]

    def high(self, node: int) -> int:
        return self._nodes[node][2]

    def make_node(self, var: int, low: int, high: int) -> int:
        """Get-or-create the node ``(var, low, high)`` (reduced form)."""
        if not 1 <= var <= self.num_vars:
            raise ValueError(f"variable {var} out of range 1..{self.num_vars}")
        if low == high:
            return low
        key = (var, low, high)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        if self.node_limit is not None and len(self._nodes) >= self.node_limit:
            raise BDDLimitExceeded(
                f"BDD node limit {self.node_limit} exceeded")
        self._nodes.append(key)
        index = len(self._nodes) - 1
        self._unique[key] = index
        return index

    def literal(self, lit: int) -> int:
        """The BDD of a single DIMACS literal."""
        var = lit if lit > 0 else -lit
        if lit > 0:
            return self.make_node(var, ZERO, ONE)
        return self.make_node(var, ONE, ZERO)

    # ------------------------------------------------------------------
    # ITE and derived operations
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` (the universal BDD operation)."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self.var_of(f), self.var_of(g), self.var_of(h))
        f_low, f_high = self._cofactors(f, top)
        g_low, g_high = self._cofactors(g, top)
        h_low, h_high = self._cofactors(h, top)
        low = self.ite(f_low, g_low, h_low)
        high = self.ite(f_high, g_high, h_high)
        result = self.make_node(top, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, var: int) -> Tuple[int, int]:
        if node in (ZERO, ONE) or self.var_of(node) != var:
            return node, node
        return self.low(node), self.high(node)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, ZERO)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, ONE, g)

    def apply_not(self, f: int) -> int:
        return self.ite(f, ZERO, ONE)

    def clause(self, lits) -> int:
        """The BDD of a disjunction of DIMACS literals."""
        result = ZERO
        for lit in sorted(lits, key=lambda l: -abs(l)):
            result = self.apply_or(self.literal(lit), result)
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_satisfiable(self, node: int) -> bool:
        return node != ZERO

    def any_model(self, node: int) -> Optional[Model]:
        """Extract one satisfying assignment (unset variables -> False)."""
        if node == ZERO:
            return None
        values = [False] * self.num_vars
        current = node
        while current != ONE:
            var = self.var_of(current)
            if self.low(current) != ZERO:
                values[var - 1] = False
                current = self.low(current)
            else:
                values[var - 1] = True
                current = self.high(current)
        return Model(values)

    def count_models(self, node: int) -> int:
        """Number of satisfying assignments over all ``num_vars``."""
        cache: Dict[int, int] = {ZERO: 0, ONE: 1}

        def count(n: int) -> int:
            if n in cache:
                return cache[n]
            var = self.var_of(n)
            low_var = self.var_of(self.low(n)) if self.low(n) > ONE \
                else self.num_vars + 1
            high_var = self.var_of(self.high(n)) if self.high(n) > ONE \
                else self.num_vars + 1
            total = (count(self.low(n)) << (low_var - var - 1)) \
                + (count(self.high(n)) << (high_var - var - 1))
            cache[n] = total
            return total

        if node in (ZERO, ONE):
            return count(node) << self.num_vars
        return count(node) << (self.var_of(node) - 1)


def cnf_to_bdd(cnf: CNF, manager: Optional[BDDManager] = None,
               node_limit: Optional[int] = None) -> Tuple[BDDManager, int]:
    """Conjoin all clauses of ``cnf`` into one BDD.

    Raises :class:`BDDLimitExceeded` when the conjunction outgrows
    ``node_limit`` — on large routing instances this is the expected
    outcome and exactly the effect the paper's related work describes.
    """
    if manager is None:
        manager = BDDManager(cnf.num_vars, node_limit=node_limit)
    result = ONE
    # Conjoin short clauses first: keeps intermediate BDDs smaller.
    for clause in sorted(cnf, key=len):
        result = manager.apply_and(result, manager.clause(clause))
        if result == ZERO:
            break
    return manager, result


def solve_bdd(cnf: CNF, node_limit: Optional[int] = 500_000) -> SolveResult:
    """Decide ``cnf`` by BDD construction (the pre-CDCL baseline)."""
    manager, root = cnf_to_bdd(cnf, node_limit=node_limit)
    stats = {"bdd_nodes": manager.num_nodes, "solver": "bdd"}
    if root == ZERO:
        return SolveResult(SolveStatus.UNSAT, stats=stats)
    return SolveResult(SolveStatus.SAT, manager.any_model(root), stats=stats)
