"""The paper's contribution: encodings, symmetry breaking, strategies,
pipeline and portfolios."""

from .encodings import (ALL_ENCODINGS, EncodedProblem, Encoding,
                        MODERN_ENCODINGS, NEW_ENCODINGS, PREVIOUS_ENCODINGS,
                        REGISTRY_ENCODINGS, TABLE2_ENCODINGS,
                        encode_coloring, get_encoding, parse_encoding)
from .patterns import (Pattern, conflict_clause, negate_pattern,
                       pattern_holds, shift_pattern)
from .analysis import FormulaStats, GraphStats, compare_encodings, encoding_profile
from .incremental import (IncrementalColoringSolver,
                          minimum_colors_incremental)
from .pipeline import ColoringOutcome, minimum_colors, solve_coloring
from .portfolio import (PortfolioResult, portfolio_speedup, run_portfolio,
                        virtual_portfolio_time)
from .strategy import (BEST_SINGLE_STRATEGY, PORTFOLIO_2, PORTFOLIO_3,
                       Strategy)
from .symmetry import (apply_symmetry, b1_sequence, get_heuristic,
                       s1_sequence, symmetry_clauses)

__all__ = [
    "ALL_ENCODINGS", "EncodedProblem", "Encoding", "MODERN_ENCODINGS",
    "NEW_ENCODINGS", "PREVIOUS_ENCODINGS", "REGISTRY_ENCODINGS",
    "TABLE2_ENCODINGS", "encode_coloring",
    "get_encoding", "parse_encoding",
    "Pattern", "conflict_clause", "negate_pattern", "pattern_holds",
    "shift_pattern",
    "FormulaStats", "GraphStats", "compare_encodings", "encoding_profile",
    "IncrementalColoringSolver", "minimum_colors_incremental",
    "ColoringOutcome", "minimum_colors", "solve_coloring",
    "PortfolioResult", "portfolio_speedup", "run_portfolio",
    "virtual_portfolio_time",
    "BEST_SINGLE_STRATEGY", "PORTFOLIO_2", "PORTFOLIO_3", "Strategy",
    "apply_symmetry", "b1_sequence", "get_heuristic", "s1_sequence",
    "symmetry_clauses",
]
