"""Portfolios of parallel strategies (paper §6, last paragraphs).

Each strategy — an (encoding, symmetry heuristic) pair — runs on its own
core; the first to answer wins and the rest are terminated.  Two flavours:

* :func:`run_portfolio` — real ``multiprocessing`` execution, one process
  per strategy, first answer kills the others.  This is the deployable
  artifact.
* :func:`virtual_portfolio_time` — the analytical model: on an ideal
  multicore machine the portfolio's time on an instance is the *minimum*
  of the member strategies' times.  The paper's 1.84× / 2.30× figures are
  exactly this quantity computed from Table 2 measurements, and the
  benchmark harness reproduces them the same way.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from ..coloring.problem import ColoringProblem
from .pipeline import ColoringOutcome, solve_coloring
from .strategy import Strategy


@dataclass
class PortfolioResult:
    """Outcome of a first-to-finish portfolio run."""

    winner: Strategy
    outcome: ColoringOutcome
    wall_time: float
    num_strategies: int


def _worker(problem: ColoringProblem, strategy: Strategy, queue: "mp.Queue") -> None:
    try:
        outcome = solve_coloring(problem, strategy)
        queue.put((strategy, outcome, None))
    except Exception as error:  # surface failures instead of hanging
        queue.put((strategy, None, repr(error)))


def run_portfolio(problem: ColoringProblem, strategies: Sequence[Strategy],
                  timeout: Optional[float] = None) -> PortfolioResult:
    """Run every strategy in parallel; return the first finisher's result.

    Remaining processes are terminated as soon as one answers, matching the
    paper's proposed deployment on a multicore CPU.
    """
    if not strategies:
        raise ValueError("a portfolio needs at least one strategy")
    context = mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                             else "spawn")
    queue: "mp.Queue" = context.Queue()
    start = time.perf_counter()
    processes = [context.Process(target=_worker, args=(problem, strategy, queue),
                                 daemon=True)
                 for strategy in strategies]
    for process in processes:
        process.start()
    try:
        strategy, outcome, error = queue.get(timeout=timeout)
        wall_time = time.perf_counter() - start
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5)
    if error is not None:
        raise RuntimeError(f"portfolio member {strategy.label} failed: {error}")
    return PortfolioResult(winner=strategy, outcome=outcome,
                           wall_time=wall_time, num_strategies=len(strategies))


def virtual_portfolio_time(
        times: Mapping[str, Mapping[Strategy, float]],
        strategies: Sequence[Strategy]) -> Dict[str, float]:
    """Per-instance portfolio time = min over member strategies.

    ``times`` maps instance name → {strategy: measured time}.  Raises if a
    member strategy has no measurement for some instance.
    """
    result: Dict[str, float] = {}
    for instance, per_strategy in times.items():
        member_times = []
        for strategy in strategies:
            if strategy not in per_strategy:
                raise ValueError(
                    f"no measurement for {strategy.label} on {instance}")
            member_times.append(per_strategy[strategy])
        result[instance] = min(member_times)
    return result


def portfolio_speedup(times: Mapping[str, Mapping[Strategy, float]],
                      portfolio: Sequence[Strategy],
                      reference: Strategy) -> float:
    """Total-time speedup of a portfolio over a single reference strategy
    (how the paper reports 1.84× and 2.30×)."""
    portfolio_times = virtual_portfolio_time(times, portfolio)
    reference_total = sum(per_strategy[reference]
                          for per_strategy in times.values())
    portfolio_total = sum(portfolio_times.values())
    if portfolio_total <= 0:
        raise ValueError("portfolio total time is not positive")
    return reference_total / portfolio_total
