"""Portfolios of parallel strategies (paper §6, last paragraphs).

Each strategy — an (encoding, symmetry heuristic) pair — runs on its own
core; the first to answer wins and the rest are terminated.  Two flavours:

* :func:`run_portfolio` — real ``multiprocessing`` execution, one process
  per strategy, first *decided* answer wins.  Losers are stopped
  cooperatively: every worker shares a :class:`CancelToken`, which its
  solver observes at conflict boundaries, so a beaten member winds down
  and reports instead of being killed mid-propagation (hard termination
  remains as a backstop for workers stuck outside the solver, e.g. in
  encoding).  Deadlines are first-class: a portfolio where *every*
  member times out returns ``status=SolveStatus.TIMEOUT`` with each
  member's individual status, rather than raising.
* :func:`virtual_portfolio_time` — the analytical model: on an ideal
  multicore machine the portfolio's time on an instance is the *minimum*
  of the member strategies' times.  The paper's 1.84× / 2.30× figures are
  exactly this quantity computed from Table 2 measurements, and the
  benchmark harness reproduces them the same way.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from .. import obs
from ..coloring.problem import ColoringProblem
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..sat.status import CancelToken, SolveLimits, SolveReport, SolveStatus
from .pipeline import ColoringOutcome, solve_coloring
from .strategy import Strategy


@dataclass
class PortfolioResult:
    """Outcome of a first-to-finish portfolio run.

    ``status`` is the race's aggregate verdict: the winner's SAT/UNSAT
    when some member decided, TIMEOUT when every member hit the
    deadline, BUDGET_EXHAUSTED when budgets (not the clock) stopped them
    all, and ERROR when every member failed.  ``winner`` and ``outcome``
    are None unless the race was decided.
    """

    status: SolveStatus
    winner: Optional[Strategy]
    outcome: Optional[ColoringOutcome]
    wall_time: float
    num_strategies: int
    #: Per-member verdicts, by strategy label (ERROR for crashes).
    member_status: Dict[str, SolveStatus] = field(default_factory=dict)
    #: Failure details for members with status ERROR, by label.
    failures: Dict[str, str] = field(default_factory=dict)
    #: Audit reports per decided member, by label (``audit=True`` runs
    #: only).  A member whose answer failed its audit is demoted to
    #: ERROR and cannot win the race.
    audits: Dict[str, object] = field(default_factory=dict)

    @property
    def decided(self) -> bool:
        return self.status.decided

    @property
    def report(self) -> SolveReport:
        """The race as the shared :class:`SolveReport` shape (the
        winner's solver stats when decided)."""
        stats = self.outcome.solver_stats if self.outcome is not None else {}
        detail = (f"winner {self.winner.label}" if self.winner is not None
                  else "; ".join(f"{label}: {status}" for label, status
                                 in self.member_status.items()))
        report = SolveReport.from_stats(self.status, stats, detail=detail)
        report.wall_time = self.wall_time
        return report


def _worker_injector(faults, strategy: Strategy, extra_sites=()):
    """The worker-site fault injector for this process, or None.

    Worker-site faults (``crash@worker``, ``hang@worker``) fire *in the
    worker process, outside the solver* — a crash kills the process
    without a report, a hang ignores the cancel token — exercising the
    parent's liveness polling and hard-termination backstops.
    ``extra_sites`` lets other process-pool layers reuse this resolution
    (the distributed scheduler's shard workers answer to ``dist_shard``
    as well).
    """
    import os
    if faults is None and not os.environ.get("REPRO_FAULTS"):
        return None
    from ..reliability.faults import FaultInjector, FaultPlan
    plan = FaultPlan.resolve(faults)
    if plan is None:
        return None
    plan = plan.narrow(strategy.label)
    if plan.empty:
        return None
    return FaultInjector(plan, label=strategy.label,
                         sites=("worker",) + tuple(extra_sites))


def _worker(problem: ColoringProblem, strategy: Strategy, queue: "mp.Queue",
            cancel_event, limits: Optional[SolveLimits],
            faults=None, audit: bool = False, channel=None) -> None:
    # Fresh observability state for this process (fork inherits the
    # parent's buffers); the worker's spans and metrics travel back on
    # the result queue rather than being written here.
    obs.worker_begin()
    try:
        injector = _worker_injector(faults, strategy)
        if injector is not None:
            injector.maybe_exit()
            injector.maybe_hang()
        cancel = CancelToken(cancel_event) if cancel_event is not None else None
        # Only pass the reliability kwargs when they deviate from the
        # defaults, so test doubles with the historical solve_coloring
        # signature keep working.
        kwargs = {}
        if faults is not None:
            kwargs["faults"] = faults
        if audit:
            kwargs.update(keep_model=True, proof_log=True)
        if channel is not None:
            # Chaos faults on the channel itself (drop_share /
            # corrupt_share) activate on the worker's own endpoint.
            channel.bind_faults(faults, strategy.label)
            kwargs["clause_channel"] = channel
        outcome = solve_coloring(problem, strategy, limits=limits,
                                 cancel=cancel, **kwargs)
        queue.put((strategy, outcome, None, obs.drain_telemetry()))
    except Exception as error:  # surface failures instead of hanging
        queue.put((strategy, None, repr(error), obs.drain_telemetry()))


#: Queue-wait interval for the race loop: short enough that a crashed
#: worker is noticed promptly, long enough not to busy-wait.
_POLL_SECONDS = 0.05

#: Grace period granted to in-flight results after the last live worker
#: exits, before the race is declared lost (a child's queue feeder may
#: still be flushing its answer through the pipe when it dies).
_DRAIN_SECONDS = 0.5

#: After the cancel token is set (a winner emerged or the deadline
#: passed), how long cooperative members get to wind down and report
#: before the stragglers are hard-terminated.  Covers workers stuck
#: outside the solver loop (e.g. still encoding), which cannot observe
#: the token.
_CANCEL_GRACE_SECONDS = 2.0


def run_portfolio(problem: ColoringProblem, strategies: Sequence[Strategy],
                  timeout: Optional[float] = None,
                  limits: Optional[SolveLimits] = None,
                  audit: bool = False, faults=None,
                  share=None) -> PortfolioResult:
    """Run every strategy in parallel; the first decided answer wins.

    ``timeout`` is the race deadline in seconds (shorthand for — and
    merged into — ``limits.wall_clock_limit``); ``limits`` bounds every
    member individually.  On a winner, the shared cancel token is set
    and the losers stop at their next conflict boundary; a worker that
    ignores the token past a grace period is terminated.

    The race is robust to sick members: a strategy that raises is
    recorded with status ERROR (its failure cannot win the race while
    healthy members are still solving), and a worker that dies without
    reporting — killed, crashed interpreter, out-of-memory — is detected
    by liveness polling rather than waited on forever.  Every outcome is
    representable: all members timing out yields ``status=TIMEOUT``, all
    failing yields ``status=ERROR`` (with per-member details in
    ``failures``) — no exception is raised either way.

    With ``audit=True`` every decided answer is re-verified in the
    parent (:func:`repro.reliability.audit.audit_outcome` — the model
    against a re-encoding, the coloring against the problem, UNSAT via
    proof replay) before it may win; an answer that fails its audit is
    demoted to ERROR and the race continues with the remaining members.
    ``faults`` injects faults into the members (see
    :mod:`repro.reliability.faults`): None activates only the
    ``REPRO_FAULTS`` environment plan, a ``FaultPlan`` is used as
    given, ``False`` disables injection.

    ``share`` upgrades the race to a *cooperative* portfolio: members
    exchange short learned clauses through a bounded channel
    (:mod:`repro.dist.sharing`), so the eventual winner benefits from
    every loser's conflict analysis instead of discarding it.  Pass
    True for the default :class:`~repro.dist.sharing.ShareConfig` or a
    config instance to tune the caps.  Sharing is only sound between
    members solving the *same* CNF, so every strategy must agree on
    (encoding, symmetry); mixed portfolios must race uncooperatively.
    With ``share=None`` (the default) nothing here changes and member
    trajectories are bit-identical to the pre-sharing racer.
    """
    if not strategies:
        raise ValueError("a portfolio needs at least one strategy")
    hub = None
    if share is not None and share is not False and len(strategies) > 1:
        shapes = {(s.encoding, s.symmetry) for s in strategies}
        if len(shapes) > 1:
            raise ValueError(
                "clause sharing needs a uniform (encoding, symmetry) "
                f"across members, got {sorted(shapes)}; run mixed "
                "portfolios with share=None")
        from ..dist.sharing import ClauseHub, ShareConfig
        config = share if isinstance(share, ShareConfig) else None
        hub = ClauseHub([s.label for s in strategies], config=config)
    with trace.span("portfolio.race", members=len(strategies),
                    strategies=",".join(s.label for s in strategies),
                    audit=audit, sharing=hub is not None) as race_span:
        try:
            result = _race_in_span(race_span, problem, strategies, timeout,
                                   limits, audit, faults, hub)
        finally:
            if hub is not None:
                hub.close()
        race_span.set("status", str(result.status))
        if result.winner is not None:
            race_span.set("winner", result.winner.label)
        if obs_metrics.enabled():
            registry = obs_metrics.registry()
            registry.inc("portfolio.races")
            registry.inc("portfolio.decided" if result.decided
                         else "portfolio.undecided")
            registry.observe("portfolio.wall_time", result.wall_time)
        return result


def _race_in_span(race_span, problem: ColoringProblem,
                  strategies: Sequence[Strategy],
                  timeout: Optional[float], limits: Optional[SolveLimits],
                  audit: bool, faults, hub=None) -> PortfolioResult:
    """:func:`run_portfolio` body, inside its already-open race span.

    Every lifecycle transition of the race — members launched, answers
    reported, the winner emerging, audit demotions, deadline expiry,
    cooperative cancellation and hard termination of stragglers —
    becomes a span event, and the telemetry each worker ships back on
    the result queue (its own span tree plus a metrics snapshot) is
    grafted under this span, so ``repro trace`` renders the whole race
    as one tree.
    """
    member_limits = (limits or SolveLimits()).with_wall_clock(timeout)
    context = mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                             else "spawn")
    queue: "mp.Queue" = context.Queue()
    cancel_event = context.Event()
    start = time.perf_counter()
    deadline = None if timeout is None else start + timeout
    hard_deadline: Optional[float] = None
    processes: Dict[str, "mp.Process"] = {}
    for strategy in strategies:
        channel = hub.endpoint(strategy.label) if hub is not None else None
        processes[strategy.label] = context.Process(
            target=_worker,
            args=(problem, strategy, queue, cancel_event, member_limits,
                  faults, audit, channel),
            daemon=True)
    for process in processes.values():
        process.start()
    trace.event("race.started", members=len(processes))

    member_status: Dict[str, SolveStatus] = {}
    failures: Dict[str, str] = {}
    audits: Dict[str, object] = {}
    winner: Optional[Strategy] = None
    outcome: Optional[ColoringOutcome] = None

    def _record(strategy: Strategy, result: Optional[ColoringOutcome],
                error: Optional[str], telemetry=None) -> None:
        nonlocal winner, outcome
        label = strategy.label
        obs.ingest_telemetry(telemetry, race_span.span_id)
        if error is not None:
            member_status[label] = SolveStatus.ERROR
            failures[label] = error
            trace.event("member.failed", label=label, error=error)
            return
        if audit and result.status.decided:
            from ..reliability.audit import audit_outcome
            report = audit_outcome(problem, result)
            audits[label] = report
            if report.failed:
                # A wrong answer must not win: demote the member and
                # let the rest of the race continue.
                member_status[label] = SolveStatus.ERROR
                failures[label] = "audit failed: " + "; ".join(
                    f"{check.name} ({check.detail})"
                    for check in report.failures)
                trace.event("member.demoted", label=label,
                            reason=failures[label])
                return
        if result.status.decided and winner is None:
            winner, outcome = strategy, result
            trace.event("member.won", label=label,
                        status=str(result.status))
        else:
            trace.event("member.reported", label=label,
                        status=str(result.status))
        member_status[label] = result.status

    try:
        while winner is None and len(member_status) < len(processes):
            if hub is not None:
                # Fan exported clauses out to peer inboxes; bounded per
                # iteration so the poll cadence is unaffected.
                hub.pump()
            now = time.perf_counter()
            if deadline is not None and now >= deadline \
                    and not cancel_event.is_set():
                # Deadline: ask everyone still running to wind down and
                # report (cooperatively — their TIMEOUT results carry
                # partial stats), with a hard stop as backstop.
                cancel_event.set()
                hard_deadline = now + _CANCEL_GRACE_SECONDS
                trace.event("race.deadline", timeout=timeout)
            if hard_deadline is not None and now >= hard_deadline:
                for label, process in processes.items():
                    if label not in member_status:
                        if process.is_alive():
                            process.terminate()
                            trace.event("member.terminated", label=label,
                                        reason="ignored cancel past grace")
                        member_status[label] = SolveStatus.TIMEOUT
                break
            try:
                item = queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                # A worker that died before reporting can never answer;
                # record it so the race is not held hostage by a corpse.
                for label, process in processes.items():
                    if label not in member_status and not process.is_alive():
                        process.join()
                        # One last drain: its answer may still be in
                        # the pipe from the child's queue feeder.
                        try:
                            item = queue.get(timeout=_DRAIN_SECONDS)
                        except queue_module.Empty:
                            member_status[label] = SolveStatus.ERROR
                            failures[label] = (
                                f"worker died without reporting "
                                f"(exit code {process.exitcode})")
                            trace.event("member.died", label=label,
                                        exit_code=process.exitcode)
                        else:
                            _record(*_unpack(item))
                        break
                continue
            _record(*_unpack(item))
        wall_time = time.perf_counter() - start
    finally:
        # Stop the losers: cooperative first, terminate stragglers.
        if winner is not None:
            trace.event("race.cancel_losers", winner=winner.label)
        cancel_event.set()
        grace_until = time.perf_counter() + _CANCEL_GRACE_SECONDS
        for process in processes.values():
            remaining = grace_until - time.perf_counter()
            if remaining > 0:
                process.join(timeout=remaining)
        for label, process in processes.items():
            if process.is_alive():
                process.terminate()
                trace.event("member.terminated", label=label,
                            reason="straggler after race end")
        for process in processes.values():
            process.join(timeout=5)
        # Losers that wound down cooperatively after the winner emerged
        # may still have telemetry (and results) in the pipe: drain it
        # so their spans are not lost, without changing the verdict.
        while True:
            try:
                item = queue.get_nowait()
            except queue_module.Empty:
                break
            strategy, result, error, telemetry = _unpack(item)
            obs.ingest_telemetry(telemetry, race_span.span_id)
            label = strategy.label
            if label not in member_status and error is None \
                    and result is not None:
                member_status[label] = result.status
                trace.event("member.reported", label=label,
                            status=str(result.status))

    if winner is not None:
        status = outcome.status
    elif any(s is SolveStatus.TIMEOUT for s in member_status.values()):
        status = SolveStatus.TIMEOUT
    elif any(s is SolveStatus.BUDGET_EXHAUSTED
             for s in member_status.values()):
        status = SolveStatus.BUDGET_EXHAUSTED
    else:
        status = SolveStatus.ERROR
    return PortfolioResult(status=status, winner=winner, outcome=outcome,
                           wall_time=wall_time,
                           num_strategies=len(strategies),
                           member_status=member_status, failures=failures,
                           audits=audits)


def _unpack(item):
    """Unpack a result-queue item: ``(strategy, outcome, error)`` from
    historical senders (test doubles), plus the telemetry slot the
    current workers append."""
    strategy, result, error = item[0], item[1], item[2]
    telemetry = item[3] if len(item) > 3 else None
    return strategy, result, error, telemetry


def virtual_portfolio_time(
        times: Mapping[str, Mapping[Strategy, float]],
        strategies: Sequence[Strategy]) -> Dict[str, float]:
    """Per-instance portfolio time = min over member strategies.

    ``times`` maps instance name → {strategy: measured time}.  Raises if a
    member strategy has no measurement for some instance.
    """
    result: Dict[str, float] = {}
    for instance, per_strategy in times.items():
        member_times = []
        for strategy in strategies:
            if strategy not in per_strategy:
                raise ValueError(
                    f"no measurement for {strategy.label} on {instance}")
            member_times.append(per_strategy[strategy])
        result[instance] = min(member_times)
    return result


def portfolio_speedup(times: Mapping[str, Mapping[Strategy, float]],
                      portfolio: Sequence[Strategy],
                      reference: Strategy) -> float:
    """Total-time speedup of a portfolio over a single reference strategy
    (how the paper reports 1.84× and 2.30×)."""
    portfolio_times = virtual_portfolio_time(times, portfolio)
    reference_total = sum(per_strategy[reference]
                          for per_strategy in times.values())
    portfolio_total = sum(portfolio_times.values())
    if portfolio_total <= 0:
        raise ValueError("portfolio total time is not positive")
    return reference_total / portfolio_total
