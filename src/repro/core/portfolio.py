"""Portfolios of parallel strategies (paper §6, last paragraphs).

Each strategy — an (encoding, symmetry heuristic) pair — runs on its own
core; the first to answer wins and the rest are terminated.  Two flavours:

* :func:`run_portfolio` — real ``multiprocessing`` execution, one process
  per strategy, first answer kills the others.  This is the deployable
  artifact.
* :func:`virtual_portfolio_time` — the analytical model: on an ideal
  multicore machine the portfolio's time on an instance is the *minimum*
  of the member strategies' times.  The paper's 1.84× / 2.30× figures are
  exactly this quantity computed from Table 2 measurements, and the
  benchmark harness reproduces them the same way.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from ..coloring.problem import ColoringProblem
from .pipeline import ColoringOutcome, solve_coloring
from .strategy import Strategy


@dataclass
class PortfolioResult:
    """Outcome of a first-to-finish portfolio run."""

    winner: Strategy
    outcome: ColoringOutcome
    wall_time: float
    num_strategies: int


def _worker(problem: ColoringProblem, strategy: Strategy, queue: "mp.Queue") -> None:
    try:
        outcome = solve_coloring(problem, strategy)
        queue.put((strategy, outcome, None))
    except Exception as error:  # surface failures instead of hanging
        queue.put((strategy, None, repr(error)))


#: Poll interval for the race loop: short enough that a crashed worker is
#: noticed promptly, long enough not to busy-wait.
_POLL_SECONDS = 0.05

#: Grace period granted to in-flight results after the last live worker
#: exits, before the race is declared lost (a child's queue feeder may
#: still be flushing its answer through the pipe when it dies).
_DRAIN_SECONDS = 0.5


def run_portfolio(problem: ColoringProblem, strategies: Sequence[Strategy],
                  timeout: Optional[float] = None) -> PortfolioResult:
    """Run every strategy in parallel; return the first finisher's result.

    Remaining processes are terminated as soon as one answers, matching the
    paper's proposed deployment on a multicore CPU.

    The race is robust to sick members: a strategy that raises is recorded
    and dropped (its failure cannot win the race while healthy members are
    still solving), and a worker that dies without reporting — killed,
    crashed interpreter, out-of-memory — is detected by liveness polling
    rather than waited on forever.  Only when *every* member has failed
    does the portfolio raise :class:`RuntimeError`, listing each member's
    failure; exceeding ``timeout`` raises :class:`TimeoutError`.
    """
    if not strategies:
        raise ValueError("a portfolio needs at least one strategy")
    context = mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                             else "spawn")
    queue: "mp.Queue" = context.Queue()
    start = time.perf_counter()
    deadline = None if timeout is None else start + timeout
    processes: Dict[str, "mp.Process"] = {}
    for strategy in strategies:
        processes[strategy.label] = context.Process(
            target=_worker, args=(problem, strategy, queue), daemon=True)
    for process in processes.values():
        process.start()

    failures: Dict[str, str] = {}
    winner: Optional[Strategy] = None
    outcome: Optional[ColoringOutcome] = None
    try:
        while winner is None:
            if len(failures) == len(processes):
                # Every member failed or died.  One last drain in case a
                # "dead" worker's answer was still in the pipe when its
                # liveness check fired.
                try:
                    strategy, result, error = queue.get(
                        timeout=_DRAIN_SECONDS)
                except queue_module.Empty:
                    summary = "; ".join(f"{label}: {reason}"
                                        for label, reason in failures.items())
                    raise RuntimeError(
                        f"all {len(processes)} portfolio members failed "
                        f"({summary})") from None
                if error is None:
                    winner, outcome = strategy, result
                    break
                failures[strategy.label] = error
                continue
            if deadline is not None and time.perf_counter() >= deadline:
                raise TimeoutError(
                    f"portfolio timed out after {timeout:.3f}s "
                    f"({len(failures)}/{len(processes)} members had failed)")
            try:
                strategy, result, error = queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                # A worker that died before reporting can never answer;
                # record it so the race is not held hostage by a corpse.
                for label, process in processes.items():
                    if label not in failures and not process.is_alive():
                        process.join()
                        failures[label] = (f"worker died without reporting "
                                           f"(exit code {process.exitcode})")
                continue
            if error is None:
                winner, outcome = strategy, result
            else:
                failures[strategy.label] = error
        wall_time = time.perf_counter() - start
    finally:
        for process in processes.values():
            if process.is_alive():
                process.terminate()
        for process in processes.values():
            process.join(timeout=5)
    return PortfolioResult(winner=winner, outcome=outcome,
                           wall_time=wall_time, num_strategies=len(strategies))


def virtual_portfolio_time(
        times: Mapping[str, Mapping[Strategy, float]],
        strategies: Sequence[Strategy]) -> Dict[str, float]:
    """Per-instance portfolio time = min over member strategies.

    ``times`` maps instance name → {strategy: measured time}.  Raises if a
    member strategy has no measurement for some instance.
    """
    result: Dict[str, float] = {}
    for instance, per_strategy in times.items():
        member_times = []
        for strategy in strategies:
            if strategy not in per_strategy:
                raise ValueError(
                    f"no measurement for {strategy.label} on {instance}")
            member_times.append(per_strategy[strategy])
        result[instance] = min(member_times)
    return result


def portfolio_speedup(times: Mapping[str, Mapping[Strategy, float]],
                      portfolio: Sequence[Strategy],
                      reference: Strategy) -> float:
    """Total-time speedup of a portfolio over a single reference strategy
    (how the paper reports 1.84× and 2.30×)."""
    portfolio_times = virtual_portfolio_time(times, portfolio)
    reference_total = sum(per_strategy[reference]
                          for per_strategy in times.values())
    portfolio_total = sum(portfolio_times.values())
    if portfolio_total <= 0:
        raise ValueError("portfolio total time is not positive")
    return reference_total / portfolio_total
