"""The coloring half of the tool flow: problem → CNF → solve → decode.

Timing is split the way Table 2 reports it — time to generate the
graph-coloring problem (owned by the caller, e.g. the FPGA layer), time to
translate it to CNF, and time to SAT-solve — so the benchmark harness can
print the same "total CPU time" rows as the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..coloring.problem import ColoringProblem
from ..sat.solver.cdcl import CDCLSolver
from ..sat.status import CancelToken, SolveLimits, SolveReport, SolveStatus
from .encodings.registry import get_encoding
from .strategy import Strategy
from .symmetry.clauses import apply_symmetry


@dataclass
class ColoringOutcome:
    """Result of solving one coloring problem with one strategy.

    ``status`` is the five-way :class:`SolveStatus`; the historical
    ``satisfiable`` flag remains readable as a property and is True
    exactly for SAT (check ``status.decided`` before treating False as
    a proof of uncolorability — a budgeted run may be TIMEOUT or
    BUDGET_EXHAUSTED instead).
    """

    strategy: Strategy
    status: SolveStatus
    coloring: Optional[Dict[int, int]]
    encode_time: float
    solve_time: float
    num_vars: int
    num_clauses: int
    solver_stats: Dict[str, float] = field(default_factory=dict)
    graph_time: float = 0.0  # time to produce the coloring problem, if known
    #: CNF-generation split of encode_time: translating the coloring
    #: problem to clauses vs generating symmetry-breaking clauses.
    cnf_time: float = 0.0
    symmetry_time: float = 0.0

    @property
    def satisfiable(self) -> bool:
        """Compatibility shim: True iff ``status`` is SAT."""
        return self.status is SolveStatus.SAT

    @property
    def total_time(self) -> float:
        """Graph generation + CNF translation + SAT solving (Table 2)."""
        return self.graph_time + self.encode_time + self.solve_time

    @property
    def report(self) -> SolveReport:
        """This outcome as the shared :class:`SolveReport` shape."""
        report = SolveReport.from_stats(self.status, self.solver_stats)
        report.wall_time = self.total_time
        return report


def solve_coloring(problem: ColoringProblem, strategy: Strategy,
                   graph_time: float = 0.0,
                   limits: Optional[SolveLimits] = None,
                   cancel: Optional[CancelToken] = None) -> ColoringOutcome:
    """Encode ``problem`` per ``strategy``, solve, decode and validate.

    When the formula is satisfiable the decoded coloring is checked against
    the problem before being returned — a wrong coloring is an encoding
    bug, not a user error, hence the hard failure.

    ``limits`` bounds the run: the wall clock covers encoding *and*
    solving (the solver gets whatever remains after CNF generation), so
    a caller-imposed deadline holds end to end.  ``cancel`` is observed
    by the solver at conflict/decision boundaries.  A bounded run that
    stops early returns an outcome whose ``status`` is TIMEOUT or
    BUDGET_EXHAUSTED, with ``coloring=None`` and valid partial stats.
    """
    start = time.perf_counter()
    encoded = get_encoding(strategy.encoding).encode(problem)
    cnf_done = time.perf_counter()
    apply_symmetry(encoded, strategy.symmetry)
    encode_done = time.perf_counter()
    cnf_time = cnf_done - start
    symmetry_time = encode_done - cnf_done
    encode_time = encode_done - start

    if limits is not None and limits.wall_clock_limit is not None:
        remaining = limits.wall_clock_limit - encode_time
        if remaining <= 0 or (cancel is not None and cancel.cancelled):
            # The deadline elapsed during encoding: report TIMEOUT
            # without starting the search.
            return ColoringOutcome(
                strategy=strategy, status=SolveStatus.TIMEOUT,
                coloring=None, encode_time=encode_time, solve_time=0.0,
                num_vars=encoded.cnf.num_vars,
                num_clauses=encoded.cnf.num_clauses,
                solver_stats={"stop_reason": "wall-clock limit "
                                             "(during encoding)"},
                graph_time=graph_time, cnf_time=cnf_time,
                symmetry_time=symmetry_time)
        limits = limits.with_wall_clock(remaining)

    solver = CDCLSolver(encoded.cnf, strategy.solver_config(limits))
    result = solver.solve(cancel=cancel)

    coloring = None
    if result.satisfiable:
        coloring = encoded.decode(result.model)
        if not problem.is_valid_coloring(coloring):
            raise AssertionError(
                f"encoding {strategy.encoding!r} decoded an invalid coloring")
    return ColoringOutcome(
        strategy=strategy,
        status=result.status,
        coloring=coloring,
        encode_time=encode_time,
        solve_time=result.stats.get("solve_time", 0.0),
        num_vars=encoded.cnf.num_vars,
        num_clauses=encoded.cnf.num_clauses,
        solver_stats=result.stats,
        graph_time=graph_time,
        cnf_time=cnf_time,
        symmetry_time=symmetry_time,
    )


def minimum_colors(problem: ColoringProblem, strategy: Strategy,
                   lower: int = 1, upper: Optional[int] = None) -> int:
    """Smallest K for which the graph is K-colorable, by SAT search.

    This is how the routing harness finds the minimum channel width W: the
    configuration with W-1 tracks is then provably unroutable, the paper's
    optimality guarantee (§1).
    """
    graph = problem.graph
    if graph.num_vertices == 0:
        return 0
    if upper is None:
        from ..coloring.greedy import greedy_num_colors
        upper = max(1, greedy_num_colors(graph))
    if lower < 1:
        lower = 1
    # The greedy bound is constructive, so `upper` is always colorable.
    while lower < upper:
        middle = (lower + upper) // 2
        outcome = solve_coloring(problem.with_colors(middle), strategy)
        if outcome.satisfiable:
            upper = middle
        else:
            lower = middle + 1
    return lower
