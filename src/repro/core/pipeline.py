"""The coloring half of the tool flow: problem → CNF → solve → decode.

Timing is split the way Table 2 reports it — time to generate the
graph-coloring problem (owned by the caller, e.g. the FPGA layer), time to
translate it to CNF, and time to SAT-solve — so the benchmark harness can
print the same "total CPU time" rows as the paper.

The split is measured with :mod:`repro.obs` trace spans
(``coloring.solve`` → ``encode`` → ``encode.cnf`` / ``encode.symmetry``,
then ``solve``): the span objects always time their phase, and when
tracing is enabled (``--trace`` / ``REPRO_TRACE``) the same spans are
additionally recorded into the run's JSONL trace, with fault injections
and the solver's finish line as span events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..coloring.problem import ColoringProblem
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..sat.model import Model
from ..sat.solver.cdcl import BudgetExceeded, CDCLSolver
from ..sat.status import CancelToken, SolveLimits, SolveReport, SolveStatus
from .encodings.registry import get_encoding
from .strategy import Strategy
from .symmetry.clauses import apply_symmetry


@dataclass
class ColoringOutcome:
    """Result of solving one coloring problem with one strategy.

    ``status`` is the five-way :class:`SolveStatus`; :attr:`is_sat` is
    the boolean shorthand (check ``status.decided`` before treating
    False as a proof of uncolorability — a budgeted run may be TIMEOUT
    or BUDGET_EXHAUSTED instead).  The historical ``satisfiable``
    property is deprecated since 1.6 (see ``docs/api.md``).
    """

    strategy: Strategy
    status: SolveStatus
    coloring: Optional[Dict[int, int]]
    encode_time: float
    solve_time: float
    num_vars: int
    num_clauses: int
    solver_stats: Dict[str, float] = field(default_factory=dict)
    graph_time: float = 0.0  # time to produce the coloring problem, if known
    #: CNF-generation split of encode_time: translating the coloring
    #: problem to clauses vs generating symmetry-breaking clauses.
    cnf_time: float = 0.0
    symmetry_time: float = 0.0
    #: The raw SAT assignment, retained only when ``solve_coloring`` was
    #: called with ``keep_model=True`` (the audit layer re-checks it
    #: against a re-encoding of the problem).
    model: Optional[Model] = None
    #: The recorded DRUP proof of an UNSAT answer, retained only under
    #: ``proof_log=True`` (replayable with the independent RUP checker).
    proof: Optional[List[Tuple[int, ...]]] = None

    @property
    def is_sat(self) -> bool:
        """True iff ``status is SolveStatus.SAT``."""
        return self.status is SolveStatus.SAT

    @property
    def satisfiable(self) -> bool:
        """Deprecated alias of :attr:`is_sat` (since 1.6)."""
        import warnings
        warnings.warn(
            "ColoringOutcome.satisfiable is deprecated; check `status is "
            "SolveStatus.SAT` or the `is_sat` shorthand (docs/api.md has "
            "the migration table)", DeprecationWarning, stacklevel=2)
        return self.status is SolveStatus.SAT

    @property
    def total_time(self) -> float:
        """Graph generation + CNF translation + SAT solving (Table 2)."""
        return self.graph_time + self.encode_time + self.solve_time

    @property
    def report(self) -> SolveReport:
        """This outcome as the shared :class:`SolveReport` shape."""
        report = SolveReport.from_stats(self.status, self.solver_stats)
        report.wall_time = self.total_time
        return report


def _resolve_fault_plan(faults, strategy: Strategy):
    """The narrowed fault plan for this run, or None (the normal path).

    ``faults`` is None (``REPRO_FAULTS`` environment plan only), a
    :class:`~repro.reliability.faults.FaultPlan`, or ``False`` to
    disable injection (the audit layer's sentinel).  Guarded so the
    reliability package is only imported when a plan might be active.
    """
    import os
    if faults is None and not os.environ.get("REPRO_FAULTS"):
        return None
    from ..reliability.faults import FaultPlan
    plan = FaultPlan.resolve(faults)
    if plan is None:
        return None
    plan = plan.narrow(strategy.label)
    return None if plan.empty else plan


def solve_coloring(problem: ColoringProblem, strategy: Strategy,
                   graph_time: float = 0.0,
                   limits: Optional[SolveLimits] = None,
                   cancel: Optional[CancelToken] = None, *,
                   faults=None, keep_model: bool = False,
                   proof_log: bool = False,
                   clause_channel=None) -> ColoringOutcome:
    """Encode ``problem`` per ``strategy``, solve, decode and validate.

    When the formula is satisfiable the decoded coloring is checked
    against the problem before being returned — a model that fails to
    decode, or decodes to an improper coloring (an encoding bug or an
    injected ``wrong_model`` fault), degrades to an outcome with
    ``status=SolveStatus.ERROR`` and a diagnostic ``stop_reason``
    instead of an exception, so orchestration layers always get a
    structured answer.

    ``limits`` bounds the run: the wall clock covers encoding *and*
    solving (the solver gets whatever remains after CNF generation), so
    a caller-imposed deadline holds end to end.  ``cancel`` is observed
    by the solver at conflict/decision boundaries.  A bounded run that
    stops early returns an outcome whose ``status`` is TIMEOUT or
    BUDGET_EXHAUSTED, with ``coloring=None`` and valid partial stats.

    ``faults`` activates fault injection (see
    :mod:`repro.reliability.faults`): None uses only the
    ``REPRO_FAULTS`` environment plan, a ``FaultPlan`` is used as given,
    and ``False`` disables injection even if the environment configures
    it.  ``keep_model`` retains the raw SAT assignment on the outcome
    and ``proof_log`` the recorded UNSAT proof — both are what the
    audit layer (:mod:`repro.reliability.audit`) re-checks.

    ``clause_channel`` plugs this run into a clause-sharing channel
    (:mod:`repro.dist.sharing`) — cooperative portfolio / cube workers
    pass their endpoint here.  Applies to the arena and packed engines
    (the legacy engine ignores it); None keeps the solve bit-identical
    to an unshared run.
    """
    with trace.span("coloring.solve", strategy=strategy.label,
                    encoding=strategy.encoding,
                    symmetry=strategy.symmetry,
                    engine=getattr(strategy, "engine", "arena")) as run_span:
        return _solve_coloring_in_span(
            run_span, problem, strategy, graph_time, limits, cancel,
            faults=faults, keep_model=keep_model, proof_log=proof_log,
            clause_channel=clause_channel)


def _solve_coloring_in_span(run_span, problem: ColoringProblem,
                            strategy: Strategy, graph_time: float,
                            limits: Optional[SolveLimits],
                            cancel: Optional[CancelToken], *,
                            faults, keep_model: bool,
                            proof_log: bool,
                            clause_channel=None) -> ColoringOutcome:
    """:func:`solve_coloring` body, inside its already-open span.

    The encode/cnf/symmetry/solve time split reported on the outcome is
    read from the child spans' wall clocks — spans measure whether or
    not tracing records them, so the Table-2 numbers never depend on
    observability being switched on.
    """
    plan = _resolve_fault_plan(faults, strategy)
    with trace.span("encode", encoding=strategy.encoding) as encode_span:
        with trace.span("encode.cnf") as cnf_span:
            encoded = get_encoding(strategy.encoding).encode(problem)
        with trace.span("encode.symmetry",
                        heuristic=strategy.symmetry) as symmetry_span:
            apply_symmetry(encoded, strategy.symmetry)
        injected = None
        if plan is not None:
            from ..reliability.faults import FaultInjector
            injected = FaultInjector(plan, label=strategy.label,
                                     sites=("encode",)).corrupt_cnf(
                                         encoded.cnf)
            if injected:
                trace.event("fault.injected",
                            kind=injected.split(":", 1)[0],
                            site="encode", strategy=strategy.label)
        encode_span.set("num_vars", encoded.cnf.num_vars)
        encode_span.set("num_clauses", encoded.cnf.num_clauses)
    cnf_time = cnf_span.wall
    symmetry_time = symmetry_span.wall
    encode_time = encode_span.wall
    if obs_metrics.enabled():
        registry = obs_metrics.registry()
        registry.inc("pipeline.solves")
        registry.observe("pipeline.encode_time", encode_time)
        registry.observe("pipeline.cnf_vars", encoded.cnf.num_vars)
        registry.observe("pipeline.cnf_clauses", encoded.cnf.num_clauses)

    def stopped(status: SolveStatus, stats: Dict[str, float],
                solve_time: float = 0.0) -> ColoringOutcome:
        run_span.set("status", str(status))
        if obs_metrics.enabled():
            obs_metrics.registry().inc(f"pipeline.status.{status}")
        return ColoringOutcome(
            strategy=strategy, status=status, coloring=None,
            encode_time=encode_time, solve_time=solve_time,
            num_vars=encoded.cnf.num_vars,
            num_clauses=encoded.cnf.num_clauses,
            solver_stats=stats, graph_time=graph_time,
            cnf_time=cnf_time, symmetry_time=symmetry_time)

    if limits is not None and limits.wall_clock_limit is not None:
        remaining = limits.wall_clock_limit - encode_time
        if remaining <= 0 or (cancel is not None and cancel.cancelled):
            # The deadline elapsed during encoding: report TIMEOUT
            # without starting the search.
            return stopped(SolveStatus.TIMEOUT,
                           {"stop_reason": "wall-clock limit "
                                           "(during encoding)"})
        limits = limits.with_wall_clock(remaining)

    config = strategy.solver_config(limits)
    # Hand the already-resolved plan down (False stops the engine from
    # re-reading the environment — resolution happens exactly once).
    config.fault_plan = plan if plan is not None else False
    if proof_log:
        config.proof_log = True
    if clause_channel is not None:
        config.clause_channel = clause_channel

    solver = CDCLSolver(encoded.cnf, config)
    try:
        with trace.span("solve", engine=getattr(strategy, "engine",
                                                "arena"),
                        solver=config.name) as solve_span:
            result = solver.solve(cancel=cancel)
    except BudgetExceeded:
        raise  # an explicitly requested hard budget, not a failure
    except Exception as error:  # crash fault or engine bug: degrade
        return stopped(SolveStatus.ERROR,
                       {"stop_reason": f"solver crashed: "
                                       f"{type(error).__name__}: {error}"},
                       solve_time=solve_span.wall)
    if injected:
        result.stats["injected_faults"] = ",".join(
            filter(None, [str(result.stats.get("injected_faults", "")),
                          f"{injected.split(':', 1)[0]}@encode"]))

    coloring = None
    if result.is_sat:
        try:
            coloring = encoded.decode(result.model)
        except Exception as error:
            result.stats["stop_reason"] = (
                f"model failed to decode: {type(error).__name__}: {error}")
            return stopped(SolveStatus.ERROR, result.stats,
                           solve_time=result.stats.get("solve_time", 0.0))
        if not problem.is_valid_coloring(coloring):
            result.stats["stop_reason"] = (
                f"encoding {strategy.encoding!r} decoded an invalid "
                f"coloring (wrong model or encoding bug)")
            return stopped(SolveStatus.ERROR, result.stats,
                           solve_time=result.stats.get("solve_time", 0.0))
    run_span.set("status", str(result.status))
    if obs_metrics.enabled():
        obs_metrics.registry().inc(f"pipeline.status.{result.status}")
    return ColoringOutcome(
        strategy=strategy,
        status=result.status,
        coloring=coloring,
        encode_time=encode_time,
        solve_time=result.stats.get("solve_time", 0.0),
        num_vars=encoded.cnf.num_vars,
        num_clauses=encoded.cnf.num_clauses,
        solver_stats=result.stats,
        graph_time=graph_time,
        cnf_time=cnf_time,
        symmetry_time=symmetry_time,
        model=result.model if keep_model else None,
        proof=(list(solver.proof)
               if proof_log and result.status is SolveStatus.UNSAT
               else None),
    )


def minimum_colors(problem: ColoringProblem, strategy: Strategy,
                   lower: int = 1, upper: Optional[int] = None) -> int:
    """Smallest K for which the graph is K-colorable, by SAT search.

    This is how the routing harness finds the minimum channel width W: the
    configuration with W-1 tracks is then provably unroutable, the paper's
    optimality guarantee (§1).
    """
    graph = problem.graph
    if graph.num_vertices == 0:
        return 0
    if upper is None:
        from ..coloring.greedy import greedy_num_colors
        upper = max(1, greedy_num_colors(graph))
    if lower < 1:
        lower = 1
    # The greedy bound is constructive, so `upper` is always colorable.
    while lower < upper:
        middle = (lower + upper) // 2
        outcome = solve_coloring(problem.with_colors(middle), strategy)
        if outcome.is_sat:
            upper = middle
        else:
            lower = middle + 1
    return lower
