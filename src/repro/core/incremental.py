"""Incremental channel-width / color-count search.

The plain pipeline re-encodes and re-solves from scratch for every
candidate K.  The incremental variant encodes **once** at an upper bound
``K_max`` with one *enable* variable per color, adds the implication
``value c selected → enable_c``, and then answers each "is the graph
K-colorable?" query with assumptions (``enable_0..K-1`` true, the rest
false) against a **single persistent CDCL solver** — so clauses learned
while refuting K=5 keep pruning the search at K=6.

Symmetry breaking composes safely: a ``K_max``-based b1/s1 sequence
constrains the i-th vertex to colors ≤ i, which stays sound for every
K ≤ K_max (the color-permutation argument never needs colors above
K-1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..coloring.greedy import clique_lower_bound, greedy_num_colors
from ..coloring.problem import ColoringProblem
from ..sat.solver.cdcl import BudgetExceeded, CDCLSolver
from ..sat.status import CancelToken, SolveLimits, SolveReport, SolveStatus
from .encodings.registry import get_encoding
from .strategy import Strategy
from .symmetry.clauses import apply_symmetry


@dataclass
class IncrementalStats:
    """Bookkeeping across the incremental queries."""

    queries: int = 0
    conflicts_per_query: List[int] = field(default_factory=list)
    #: Decided queries only: K -> was the graph K-colorable?
    results: Dict[int, bool] = field(default_factory=dict)
    #: Every query's outcome, including TIMEOUT / BUDGET_EXHAUSTED.
    statuses: Dict[int, SolveStatus] = field(default_factory=dict)


class IncrementalColoringSolver:
    """Answer K-colorability queries for one graph, sharing learned
    clauses across all of them.

    ``limits`` (applied *per query* — budgets are counted per solve
    call) and ``cancel`` make long width sweeps boundable: an
    over-budget query surfaces as a non-decided
    :class:`SolveStatus` from :meth:`query`, or as
    :class:`BudgetExceeded` from the boolean convenience wrappers.
    """

    def __init__(self, problem: ColoringProblem, strategy: Strategy,
                 max_colors: Optional[int] = None,
                 limits: Optional[SolveLimits] = None,
                 cancel: Optional[CancelToken] = None) -> None:
        graph = problem.graph
        if max_colors is None:
            max_colors = max(1, greedy_num_colors(graph))
        if max_colors < 1:
            raise ValueError("max_colors must be at least 1")
        self.max_colors = max_colors
        self.strategy = strategy
        self.problem = problem.with_colors(max_colors)
        self._encoded = get_encoding(strategy.encoding).encode(self.problem)
        apply_symmetry(self._encoded, strategy.symmetry)
        # Enable variables, one per color, appended after vertex blocks.
        self._enable = self._encoded.cnf.new_vars(max_colors)
        for vertex in range(self.problem.num_vertices):
            for color in range(max_colors):
                clause = list(self._encoded.forbid_color_clause(vertex, color))
                clause.append(self._enable[color])
                self._encoded.cnf.add_clause(clause)
        self._solver = CDCLSolver(self._encoded.cnf,
                                  strategy.solver_config(limits))
        self._cancel = cancel
        self.stats = IncrementalStats()

    @property
    def cnf_size(self) -> Dict[str, int]:
        return {"vars": self._encoded.cnf.num_vars,
                "clauses": self._encoded.cnf.num_clauses}

    def query(self, num_colors: int) -> SolveReport:
        """SAT query: does a coloring with the first ``num_colors`` colors
        exist?  Reuses everything learned by earlier queries.

        Returns the full :class:`SolveReport`; ``status`` is SAT/UNSAT
        when decided, or TIMEOUT / BUDGET_EXHAUSTED when this query hit
        its per-query budget (the solver remains usable — everything
        learned so far is retained for the next query).
        """
        if not 1 <= num_colors <= self.max_colors:
            raise ValueError(
                f"num_colors must be within 1..{self.max_colors}")
        assumptions = [self._enable[c] for c in range(num_colors)]
        assumptions += [-self._enable[c]
                        for c in range(num_colors, self.max_colors)]
        before = self._solver.stats["conflicts"]
        result = self._solver.solve(assumptions, cancel=self._cancel)
        self.stats.queries += 1
        self.stats.conflicts_per_query.append(
            int(self._solver.stats["conflicts"] - before))
        self.stats.statuses[num_colors] = result.status
        if result.status.decided:
            self.stats.results[num_colors] = result.is_sat
        if result.is_sat:
            self._last_model = result.model
        return result.report()

    def is_colorable(self, num_colors: int) -> bool:
        """Boolean convenience wrapper around :meth:`query`.

        Raises :class:`BudgetExceeded` when the query stopped on a
        budget or deadline — an undecided answer must not masquerade as
        "not colorable"."""
        report = self.query(num_colors)
        if not report.status.decided:
            raise BudgetExceeded(
                f"K={num_colors} query stopped: {report.status}"
                + (f" ({report.detail})" if report.detail else ""))
        return report.status is SolveStatus.SAT

    def coloring(self, num_colors: int) -> Dict[int, int]:
        """Query at ``num_colors`` and decode the resulting coloring."""
        if not self.is_colorable(num_colors):
            raise ValueError(f"graph is not {num_colors}-colorable")
        coloring = self._encoded.decode(self._last_model)
        if not self.problem.with_colors(num_colors).is_valid_coloring(coloring):
            raise AssertionError("incremental decode produced an invalid "
                                 "coloring")
        return coloring

    def minimum_colors(self, lower: Optional[int] = None) -> int:
        """Binary-search the chromatic number within 1..max_colors."""
        if self.problem.num_vertices == 0:
            return 0
        low = lower if lower is not None \
            else max(1, clique_lower_bound(self.problem.graph))
        high = self.max_colors  # greedy bound: always colorable
        while low < high:
            middle = (low + high) // 2
            if self.is_colorable(middle):
                high = middle
            else:
                low = middle + 1
        return low


class AssumptionJobSolver:
    """Persistent assumption-query solver over one encoded problem —
    the cube-and-conquer worker core (:mod:`repro.dist.cubes`).

    Where :class:`IncrementalColoringSolver` varies the *color count*
    across queries, this varies the *assumption cube*: each call to
    :meth:`solve_cube` asks "is the formula satisfiable under these
    literals?" against a single persistent CDCL solver, so refuting one
    cube keeps pruning the next (everything learned at the root
    carries over — that work reduction, not core count, is where
    cube-and-conquer wins on hard UNSAT instances).

    Cube assumptions land on arbitrary encoding variables, so
    inprocessing BVE is disabled (the solver refuses assumptions on
    eliminated variables); the rest of the strategy's solver config —
    engine, restarts, tier reduction — applies unchanged.  A clause
    channel plugs the worker into cross-process sharing with its
    sibling cube workers.
    """

    def __init__(self, problem: ColoringProblem, strategy: Strategy,
                 limits: Optional[SolveLimits] = None,
                 cancel: Optional[CancelToken] = None,
                 clause_channel=None, encoded=None) -> None:
        self.problem = problem
        self.strategy = strategy
        if encoded is None:
            encoded = get_encoding(strategy.encoding).encode(problem)
            apply_symmetry(encoded, strategy.symmetry)
        self.encoded = encoded
        config = strategy.solver_config(limits)
        if config.inprocessing:
            config.inprocess_bve = False
        if clause_channel is not None:
            config.clause_channel = clause_channel
        self._solver = CDCLSolver(self.encoded.cnf, config)
        self._cancel = cancel
        self.queries = 0

    @property
    def stats(self) -> Dict[str, float]:
        return self._solver.stats

    def solve_cube(self, assumptions) -> SolveReport:
        """One cube as an assumption query (budgets are per call)."""
        result = self._solver.solve(list(assumptions), cancel=self._cancel)
        self.queries += 1
        report = result.report()
        if result.is_sat:
            self._last_model = result.model
        return report

    def decode(self) -> Dict[int, int]:
        """The coloring decoded from the last SAT cube's model."""
        coloring = self.encoded.decode(self._last_model)
        if not self.problem.is_valid_coloring(coloring):
            raise AssertionError("cube decode produced an invalid coloring")
        return coloring


def minimum_colors_incremental(problem: ColoringProblem,
                               strategy: Strategy) -> int:
    """One-call incremental chromatic-number search."""
    return IncrementalColoringSolver(problem, strategy).minimum_colors()
