"""Hierarchical composition of level schemes (paper §4).

An upper level partitions the domain into subdomains; lower levels select
within them.  Following the paper:

* subdomains of one level do not overlap and are as equal in size as
  possible (for a domain of K values split m ways, the first ``K mod m``
  subdomains get ``⌈K/m⌉`` values and the rest ``⌊K/m⌋`` — with muldirect-n
  on top, the bottom level therefore uses ``⌈K/n⌉`` variables, the formula
  given in §4);
* all subdomains at one level share a single set of Boolean variables;
* a value's indexing pattern is the conjunction of its subdomain's pattern
  at every upper level with its position's pattern at the lowest level;
* undersized subdomains use *smaller versions of the ITE trees* when the
  level below is an ITE scheme, and otherwise get excluded-illegal-value
  clauses preventing the selection of non-existent values.

The composition is fully general (any scheme at any level, any depth), as
the paper emphasises in contrast with Kwon & Klieber's direct-i+direct.
"""

from __future__ import annotations

from typing import List, Sequence

from ..patterns import negate_pattern, shift_clause, shift_pattern
from .base import Level, VertexEncoding


def split_sizes(total: int, parts: int) -> List[int]:
    """Split ``total`` values into ``parts`` near-equal subdomain sizes."""
    if parts < 1:
        raise ValueError("parts must be at least 1")
    if total < parts:
        raise ValueError("cannot split fewer values than parts")
    base, remainder = divmod(total, parts)
    return [base + 1 if i < remainder else base for i in range(parts)]


def build_vertex_encoding(num_values: int, levels: Sequence[Level]) -> VertexEncoding:
    """Compose ``levels`` into the encoding of one ``num_values`` domain.

    All levels except the last must carry an explicit ``num_vars``; the
    last is sized by whatever subdomain size reaches it.
    """
    if num_values < 1:
        raise ValueError("domain must have at least one value")
    if not levels:
        raise ValueError("at least one level is required")
    for level in levels[:-1]:
        if level.num_vars is None:
            raise ValueError(
                f"upper level {level.scheme.name!r} needs an explicit "
                f"variable count")
    if levels[-1].num_vars is not None:
        raise ValueError("the final level must not fix a variable count")
    encoding = _build(num_values, list(levels))
    # Every composed block is validated before any CNF is generated from
    # it: auxiliary-variable schemes (and future ones) cannot leak
    # literals outside the block or alias pattern variables.
    encoding.validate()
    return encoding


def _build(num_values: int, levels: List[Level]) -> VertexEncoding:
    if len(levels) == 1:
        scheme = levels[0].scheme
        return VertexEncoding(
            num_values=num_values,
            num_vars=scheme.num_vars(num_values),
            patterns=scheme.patterns(num_values),
            clauses=scheme.structural_clauses(num_values))

    top = levels[0]
    declared = top.scheme.num_subdomains(top.num_vars)
    # A domain smaller than the declared fan-out simply uses fewer
    # subdomains (and thereby fewer top variables).
    parts = min(declared, num_values)
    sizes = split_sizes(num_values, parts)
    max_size = sizes[0]
    top_patterns = top.scheme.patterns(parts)
    top_vars = top.scheme.num_vars(parts)
    clauses = list(top.scheme.structural_clauses(parts))

    rest = levels[1:]
    bottom_is_single_ite = len(rest) == 1 and rest[0].scheme.is_ite

    patterns = []
    if bottom_is_single_ite:
        # Paper §4: "in the case of ITE-tree encodings we can use smaller
        # versions of the ITE-trees for the smaller domains" — the smaller
        # tree reuses a prefix of the shared bottom variables and no
        # exclusion clauses are needed.
        scheme = rest[0].scheme
        bottom_vars = scheme.num_vars(max_size)
        for subdomain, size in enumerate(sizes):
            for position_pattern in scheme.patterns(size):
                patterns.append(top_patterns[subdomain]
                                + shift_pattern(position_pattern, top_vars))
    else:
        sub = _build(max_size, rest)
        bottom_vars = sub.num_vars
        for clause in sub.clauses:
            clauses.append(shift_clause(clause, top_vars))
        for subdomain, size in enumerate(sizes):
            for position in range(size):
                patterns.append(top_patterns[subdomain]
                                + shift_pattern(sub.patterns[position], top_vars))
            # Excluded-illegal-value clauses: this subdomain must not
            # select a position beyond its size (paper §4).
            for position in range(size, max_size):
                clauses.append(
                    negate_pattern(top_patterns[subdomain])
                    + negate_pattern(shift_pattern(sub.patterns[position],
                                                   top_vars)))

    return VertexEncoding(num_values=num_values,
                          num_vars=top_vars + bottom_vars,
                          patterns=patterns,
                          clauses=clauses)
