"""Reusable at-most-one / at-most-k clause builders (Zhou's AMK survey).

The paper's direct encoding pays the pairwise quadratic price for its
at-most-one constraint; modern SAT practice offers a family of
auxiliary-variable alternatives with linear (or near-linear) clause
counts.  This module is the registry's cardinality toolbox:

* **pairwise** — the textbook O(n²) binomial encoding, no auxiliaries;
* **sequential** (Sinz 2005) — the n-1-variable ladder, 3n-4 clauses;
* **commander** (Klieber & Kwon 2007) — recursive group commanders with
  a configurable group size;
* **bimander** (Hölldobler & Nguyen 2013) — pairwise groups crossed
  with a binary group index;
* **product** (Chen 2010) — a 2-D grid of row/column selectors;
* **sequential counter / totalizer at-most-k** (Sinz 2005; Bailleux &
  Boilleau 2003) — the general ≤k forms of the ladder and of a
  balanced unary counting tree.

Every builder emits plain clauses over local literals, so the output
flows through :class:`~.base.EncodedProblem` (and from there into the
solvers and the DRUP proof logger) exactly like any hand-written
structural clause — there is no special clause kind to account for.
Auxiliary variables come from an :class:`AuxAllocator`, which *enforces*
freshness: handing out an index twice, or an index that collides with a
value variable, raises immediately instead of silently merging two
constraint groups (the classic aux-reuse bug this layer is tested
against).

The size formulas next to each builder are asserted literally by
``tests/test_cardinality.py``, which also checks every builder by
exhaustive enumeration: on small n the satisfying assignments, projected
onto the value variables, are exactly the ≤1-true (or ≤k-true) vectors.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..patterns import LocalClause
from .base import LevelScheme


class DuplicateAuxVarError(ValueError):
    """An encoding tried to reuse a variable index as an auxiliary."""


class AuxAllocator:
    """Hands out fresh auxiliary variable indices for one constraint block.

    ``first_free`` is the first index available for auxiliaries (one past
    the value variables); ``reserved`` is the set of indices that must
    never be handed out (the value variables themselves).  Allocation is
    strictly increasing, so two builders sharing one allocator can never
    collide — and a builder handed a *misconfigured* allocator (one whose
    range overlaps the reserved block) fails loudly instead of producing
    a subtly wrong CNF.
    """

    def __init__(self, first_free: int, *,
                 reserved: Sequence[int] = ()) -> None:
        if first_free < 1:
            raise ValueError("variable indices are 1-based")
        self._next = first_free
        self._reserved = frozenset(reserved)
        self._count = 0

    def fresh(self) -> int:
        """Allocate one fresh auxiliary variable index."""
        var = self._next
        if var in self._reserved:
            raise DuplicateAuxVarError(
                f"auxiliary variable {var} collides with a reserved "
                f"(value) variable — constraint groups would overlap")
        self._next = var + 1
        self._count += 1
        return var

    def fresh_block(self, count: int) -> List[int]:
        """Allocate ``count`` consecutive fresh auxiliaries."""
        return [self.fresh() for _ in range(count)]

    @property
    def count(self) -> int:
        """How many auxiliaries have been allocated so far."""
        return self._count

    @property
    def next_free(self) -> int:
        return self._next


# ---------------------------------------------------------------------------
# At-most-one builders.  Each takes the value *literals* (usually the
# positive value variables) and returns the clause list; builders that
# need auxiliaries take the shared allocator.
# ---------------------------------------------------------------------------

def amo_pairwise(lits: Sequence[int]) -> List[LocalClause]:
    """Binomial at-most-one: ¬x_i ∨ ¬x_j for every pair.

    0 auxiliaries, n(n-1)/2 clauses.
    """
    clauses: List[LocalClause] = []
    for i in range(len(lits)):
        for j in range(i + 1, len(lits)):
            clauses.append((-lits[i], -lits[j]))
    return clauses


def amo_sequential(lits: Sequence[int],
                   alloc: AuxAllocator) -> List[LocalClause]:
    """Sinz's sequential (ladder) at-most-one.

    Ladder variable ``s_i`` reads "some x_{≤i} is selected"; clauses
    x_i → s_i, s_{i-1} → s_i, x_i → ¬s_{i-1}.  For n ≥ 3: n-1
    auxiliaries and 3n-4 clauses; degenerates to pairwise below that.
    """
    n = len(lits)
    if n <= 1:
        return []
    if n == 2:
        return amo_pairwise(lits)
    ladder = alloc.fresh_block(n - 1)
    clauses: List[LocalClause] = [(-lits[0], ladder[0])]
    for i in range(1, n - 1):
        clauses.append((-lits[i], ladder[i]))
        clauses.append((-ladder[i - 1], ladder[i]))
        clauses.append((-lits[i], -ladder[i - 1]))
    clauses.append((-lits[n - 1], -ladder[n - 2]))
    return clauses


def commander_groups(lits: Sequence[int],
                     group_size: int) -> List[List[int]]:
    """Partition ``lits`` into consecutive commander groups.

    Exposed as a seam so tests can substitute a *broken* grouping (e.g.
    overlapping groups) and prove the differential harness catches it.
    """
    return [list(lits[i:i + group_size])
            for i in range(0, len(lits), group_size)]


def amo_commander(lits: Sequence[int], alloc: AuxAllocator,
                  group_size: int = 3, *,
                  groups_fn=commander_groups) -> List[LocalClause]:
    """Recursive commander at-most-one (Klieber & Kwon).

    Each group gets a pairwise AMO plus a commander variable c with
    x → c for every group member and c → ∨group; the commanders then
    recurse until one group remains.  ⌈n/g⌉ + ⌈n/g²⌉ + … auxiliaries.
    """
    if group_size < 2:
        raise ValueError("commander group size must be at least 2")
    level = list(lits)
    clauses: List[LocalClause] = []
    while len(level) > group_size:
        commanders: List[int] = []
        for group in groups_fn(level, group_size):
            clauses.extend(amo_pairwise(group))
            commander = alloc.fresh()
            commanders.append(commander)
            for lit in group:
                clauses.append((-lit, commander))
            clauses.append((-commander,) + tuple(group))
        level = commanders
    clauses.extend(amo_pairwise(level))
    return clauses


def amo_bimander(lits: Sequence[int], alloc: AuxAllocator,
                 group_size: int = 2) -> List[LocalClause]:
    """Bimander at-most-one (Hölldobler & Nguyen).

    Pairwise AMO inside each of the m = ⌈n/g⌉ groups, plus ⌈log₂m⌉
    binary group-index variables: every member of group j implies the
    bit pattern of j, so two true variables in different groups force
    contradictory index bits.
    """
    if group_size < 1:
        raise ValueError("bimander group size must be at least 1")
    n = len(lits)
    if n <= 1:
        return []
    groups = [list(lits[i:i + group_size])
              for i in range(0, n, group_size)]
    num_bits = (len(groups) - 1).bit_length()
    bits = alloc.fresh_block(num_bits)
    clauses: List[LocalClause] = []
    for index, group in enumerate(groups):
        clauses.extend(amo_pairwise(group))
        for lit in group:
            for b, bit_var in enumerate(bits):
                bit_lit = bit_var if (index >> b) & 1 else -bit_var
                clauses.append((-lit, bit_lit))
    return clauses


def product_grid(n: int) -> Tuple[int, int]:
    """The ⌈√n⌉ × ⌈n/⌈√n⌉⌉ grid the product encoding arranges n in."""
    rows = math.isqrt(n - 1) + 1 if n > 1 else 1
    cols = -(-n // rows)
    return rows, cols


def amo_product(lits: Sequence[int],
                alloc: AuxAllocator) -> List[LocalClause]:
    """Chen's 2-D product at-most-one.

    Place the n variables in a ⌈√n⌉-row grid; x at cell (r, c) implies
    row selector R_r and column selector C_c, and both selector sets
    carry a pairwise AMO.  Two true variables differ in row or column,
    so two selectors of one axis would be true.  ⌈√n⌉ + ⌈n/⌈√n⌉⌉
    auxiliaries, 2n + O(n) clauses; degenerates to pairwise for n ≤ 3
    (where the grid would cost more than it saves).
    """
    n = len(lits)
    if n <= 3:
        return amo_pairwise(lits)
    num_rows, num_cols = product_grid(n)
    rows = alloc.fresh_block(num_rows)
    cols = alloc.fresh_block(num_cols)
    clauses: List[LocalClause] = []
    for i, lit in enumerate(lits):
        r, c = divmod(i, num_cols)
        clauses.append((-lit, rows[r]))
        clauses.append((-lit, cols[c]))
    clauses.extend(amo_pairwise(rows))
    clauses.extend(amo_pairwise(cols))
    return clauses


#: name → (needs_allocator, builder) for the at-most-one family.
AMO_BUILDERS = {
    "pairwise": amo_pairwise,
    "sequential": amo_sequential,
    "commander": amo_commander,
    "bimander": amo_bimander,
    "product": amo_product,
}


def build_amo(kind: str, lits: Sequence[int], alloc: AuxAllocator, *,
              group_size: Optional[int] = None) -> List[LocalClause]:
    """Uniform entry point: at-most-one over ``lits`` via ``kind``."""
    if kind == "pairwise":
        return amo_pairwise(lits)
    if kind == "sequential":
        return amo_sequential(lits, alloc)
    if kind == "commander":
        return amo_commander(lits, alloc, group_size or 3)
    if kind == "bimander":
        return amo_bimander(lits, alloc, group_size or 2)
    if kind == "product":
        return amo_product(lits, alloc)
    raise ValueError(f"unknown at-most-one kind {kind!r} "
                     f"(known: {', '.join(sorted(AMO_BUILDERS))})")


# ---------------------------------------------------------------------------
# At-most-k builders.
# ---------------------------------------------------------------------------

def atmost_k_sequential(lits: Sequence[int], k: int,
                        alloc: AuxAllocator) -> List[LocalClause]:
    """Sinz's sequential unary counter LT_SEQ for Σx_i ≤ k.

    Registers ``s_{i,j}`` ("at least j of x_1..x_i are true") for
    i < n, j ≤ k.  k(n-1) auxiliaries; for k = 1 this reproduces
    :func:`amo_sequential` clause for clause.
    """
    n = len(lits)
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        return [(-lit,) for lit in lits]
    if k >= n:
        return []
    if n == 2:  # k == 1: the single pairwise clause beats the counter
        return amo_pairwise(lits)
    # s[i][j] = "at least j+1 of lits[0..i] true", i in 0..n-2, j in 0..k-1
    registers = [alloc.fresh_block(k) for _ in range(n - 1)]
    clauses: List[LocalClause] = [(-lits[0], registers[0][0])]
    for j in range(1, k):
        clauses.append((-registers[0][j],))
    for i in range(1, n - 1):
        clauses.append((-lits[i], registers[i][0]))
        clauses.append((-registers[i - 1][0], registers[i][0]))
        for j in range(1, k):
            clauses.append(
                (-lits[i], -registers[i - 1][j - 1], registers[i][j]))
            clauses.append((-registers[i - 1][j], registers[i][j]))
        clauses.append((-lits[i], -registers[i - 1][k - 1]))
    clauses.append((-lits[n - 1], -registers[n - 2][k - 1]))
    return clauses


def atmost_k_totalizer(lits: Sequence[int], k: int,
                       alloc: AuxAllocator) -> List[LocalClause]:
    """Totalizer-style at-most-k (Bailleux & Boilleau, k-capped).

    A balanced tree of unary counters; each internal node's outputs
    saturate at k+1, and the root's (k+1)-th output is forced false.
    Only the "≥" direction is emitted — all an upper bound needs.
    """
    n = len(lits)
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        return [(-lit,) for lit in lits]
    if k >= n:
        return []
    clauses: List[LocalClause] = []

    def build(segment: Sequence[int]) -> List[int]:
        if len(segment) == 1:
            return [segment[0]]
        mid = len(segment) // 2
        left = build(segment[:mid])
        right = build(segment[mid:])
        width = min(len(left) + len(right), k + 1)
        outputs = alloc.fresh_block(width)
        for a in range(len(left) + 1):
            for b in range(len(right) + 1):
                total = a + b
                if total == 0:
                    continue
                clause: List[int] = []
                if a > 0:
                    clause.append(-left[a - 1])
                if b > 0:
                    clause.append(-right[b - 1])
                clause.append(outputs[min(total, width) - 1])
                clauses.append(tuple(clause))
        return outputs

    root = build(list(lits))
    if k < len(root):
        clauses.append((-root[k],))
    return clauses


# ---------------------------------------------------------------------------
# Closed-form sizes, asserted by tests/test_cardinality.py against the
# builders' actual output.
# ---------------------------------------------------------------------------

def _group_sizes(n: int, group_size: int) -> List[int]:
    full, rest = divmod(n, group_size)
    return [group_size] * full + ([rest] if rest else [])


def amo_sizes(kind: str, n: int, *,
              group_size: Optional[int] = None) -> Tuple[int, int]:
    """``(aux_vars, clauses)`` each AMO builder spends on n values."""
    pairs = n * (n - 1) // 2
    if kind == "pairwise":
        return 0, pairs
    if kind == "sequential":
        if n <= 1:
            return 0, 0
        if n == 2:
            return 0, 1
        return n - 1, 3 * n - 4
    if kind == "commander":
        g = group_size or 3
        aux = clauses = 0
        level = n
        while level > g:
            groups = _group_sizes(level, g)
            aux += len(groups)
            clauses += sum(s * (s - 1) // 2 + s + 1 for s in groups)
            level = len(groups)
        return aux, clauses + level * (level - 1) // 2
    if kind == "bimander":
        g = group_size or 2
        if n <= 1:
            return 0, 0
        groups = _group_sizes(n, g)
        bits = (len(groups) - 1).bit_length()
        return bits, sum(s * (s - 1) // 2 for s in groups) + n * bits
    if kind == "product":
        if n <= 3:
            return 0, pairs
        rows, cols = product_grid(n)
        return (rows + cols,
                2 * n + rows * (rows - 1) // 2 + cols * (cols - 1) // 2)
    raise ValueError(f"unknown at-most-one kind {kind!r}")


def atmost_k_sequential_sizes(n: int, k: int) -> Tuple[int, int]:
    """``(aux_vars, clauses)`` of the sequential ≤k counter."""
    if k == 0:
        return 0, n
    if k >= n:
        return 0, 0
    if n == 2:
        return 0, 1
    return k * (n - 1), 2 * n * k + n - 3 * k - 1


# ---------------------------------------------------------------------------
# Level schemes: direct-style patterns + a pluggable at-most-one.
# ---------------------------------------------------------------------------

class CardinalityDirectScheme(LevelScheme):
    """The direct encoding with a library at-most-one instead of pairwise.

    Patterns are the plain value variables (so conflicts, symmetry
    breaking and hierarchy composition are untouched); the at-most-one
    family and its auxiliaries are the only difference between the
    members of this scheme family.  Auxiliaries live in the vertex block
    after the value variables and never appear in patterns.
    """

    is_ite = False

    def __init__(self, name: str, amo_kind: str,
                 group_size: Optional[int] = None) -> None:
        self.name = name
        self.amo_kind = amo_kind
        self.group_size = group_size
        self._memo: Dict[int, Tuple[int, List[LocalClause]]] = {}

    def _built(self, n: int) -> Tuple[int, List[LocalClause]]:
        if n < 1:
            raise ValueError("domain must have at least one value")
        if n not in self._memo:
            values = list(range(1, n + 1))
            alloc = self.allocator(n)
            clauses: List[LocalClause] = [tuple(values)]  # at-least-one
            clauses.extend(self.amo_clauses(values, alloc))
            self._memo[n] = (n + alloc.count, clauses)
        return self._memo[n]

    def allocator(self, n: int) -> AuxAllocator:
        """The per-block allocator: auxiliaries start after the values."""
        return AuxAllocator(n + 1, reserved=range(1, n + 1))

    def amo_clauses(self, values: Sequence[int],
                    alloc: AuxAllocator) -> List[LocalClause]:
        """The at-most-one part (overridable seam for the QA suite)."""
        return build_amo(self.amo_kind, values, alloc,
                         group_size=self.group_size)

    def num_vars(self, n: int) -> int:
        return self._built(n)[0]

    def patterns(self, n: int):
        self._built(n)
        return [(value + 1,) for value in range(n)]

    def structural_clauses(self, n: int) -> List[LocalClause]:
        return list(self._built(n)[1])

    def num_subdomains(self, num_level_vars: int) -> int:
        raise NotImplementedError(
            f"{self.name} uses auxiliary variables and is only meaningful "
            f"as a final hierarchy level")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


#: Commander-AMO direct encoding (group size 3, the literature default).
CMDDIRECT = CardinalityDirectScheme("cmddirect", "commander", group_size=3)
#: Bimander-AMO direct encoding (group size 2, Hölldobler & Nguyen's best).
BIMDIRECT = CardinalityDirectScheme("bimdirect", "bimander", group_size=2)
#: Product-AMO direct encoding.
PRODDIRECT = CardinalityDirectScheme("proddirect", "product")
