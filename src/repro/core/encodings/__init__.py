"""CSP-to-SAT encodings: the paper's 15 schemes, the modern at-most-one
and partial-order families, and their composition."""

from .base import EncodedProblem, Level, LevelScheme, VertexEncoding
from .cardinality import (AMO_BUILDERS, AuxAllocator, BIMDIRECT, CMDDIRECT,
                          CardinalityDirectScheme, DuplicateAuxVarError,
                          PRODDIRECT, amo_bimander, amo_commander,
                          amo_pairwise, amo_product, amo_sequential,
                          amo_sizes, atmost_k_sequential,
                          atmost_k_sequential_sizes, atmost_k_totalizer,
                          build_amo, commander_groups, product_grid)
from .hierarchical import build_vertex_encoding, split_sizes
from .ite import (CustomITEScheme, ITELinearScheme, ITELogScheme, ITENode,
                  ITETree, ITE_LINEAR, ITE_LOG, balanced_tree, linear_tree)
from .mixed import build_mixed_vertex_encoding, encode_mixed
from .partial_order import (POP, POP_H, PartialOrderHybridScheme,
                            PartialOrderScheme)
from .registry import (ALL_ENCODINGS, Encoding, EXTENSION_ENCODINGS,
                       MODERN_AMO_ENCODINGS, MODERN_ENCODINGS,
                       NEW_ENCODINGS, PARTIAL_ORDER_ENCODINGS,
                       PREVIOUS_ENCODINGS, REGISTRY_ENCODINGS,
                       TABLE2_ENCODINGS, encode_coloring, get_encoding,
                       parse_encoding)
from .simple import (DIRECT, DirectScheme, LOG, LogScheme, MULDIRECT,
                     MuldirectScheme, SEQDIRECT, SeqDirectScheme,
                     bits_needed)

__all__ = [
    "EncodedProblem", "Level", "LevelScheme", "VertexEncoding",
    "AMO_BUILDERS", "AuxAllocator", "BIMDIRECT", "CMDDIRECT",
    "CardinalityDirectScheme", "DuplicateAuxVarError", "PRODDIRECT",
    "amo_bimander", "amo_commander", "amo_pairwise", "amo_product",
    "amo_sequential", "amo_sizes", "atmost_k_sequential",
    "atmost_k_sequential_sizes", "atmost_k_totalizer", "build_amo",
    "commander_groups", "product_grid",
    "build_vertex_encoding", "split_sizes",
    "CustomITEScheme", "ITELinearScheme", "ITELogScheme", "ITENode",
    "ITETree", "ITE_LINEAR", "ITE_LOG", "balanced_tree", "linear_tree",
    "build_mixed_vertex_encoding", "encode_mixed",
    "POP", "POP_H", "PartialOrderHybridScheme", "PartialOrderScheme",
    "ALL_ENCODINGS", "Encoding", "EXTENSION_ENCODINGS",
    "MODERN_AMO_ENCODINGS", "MODERN_ENCODINGS", "NEW_ENCODINGS",
    "PARTIAL_ORDER_ENCODINGS", "PREVIOUS_ENCODINGS",
    "REGISTRY_ENCODINGS", "TABLE2_ENCODINGS", "encode_coloring",
    "get_encoding", "parse_encoding",
    "DIRECT", "DirectScheme", "LOG", "LogScheme", "MULDIRECT",
    "MuldirectScheme", "SEQDIRECT", "SeqDirectScheme", "bits_needed",
]
