"""CSP-to-SAT encodings: the paper's 15 schemes and their composition."""

from .base import EncodedProblem, Level, LevelScheme, VertexEncoding
from .hierarchical import build_vertex_encoding, split_sizes
from .ite import (CustomITEScheme, ITELinearScheme, ITELogScheme, ITENode,
                  ITETree, ITE_LINEAR, ITE_LOG, balanced_tree, linear_tree)
from .mixed import build_mixed_vertex_encoding, encode_mixed
from .registry import (ALL_ENCODINGS, Encoding, EXTENSION_ENCODINGS,
                       NEW_ENCODINGS, PREVIOUS_ENCODINGS, TABLE2_ENCODINGS,
                       encode_coloring, get_encoding, parse_encoding)
from .simple import (DIRECT, DirectScheme, LOG, LogScheme, MULDIRECT,
                     MuldirectScheme, SEQDIRECT, SeqDirectScheme,
                     bits_needed)

__all__ = [
    "EncodedProblem", "Level", "LevelScheme", "VertexEncoding",
    "build_vertex_encoding", "split_sizes",
    "CustomITEScheme", "ITELinearScheme", "ITELogScheme", "ITENode",
    "ITETree", "ITE_LINEAR", "ITE_LOG", "balanced_tree", "linear_tree",
    "build_mixed_vertex_encoding", "encode_mixed",
    "ALL_ENCODINGS", "Encoding", "EXTENSION_ENCODINGS", "NEW_ENCODINGS",
    "PREVIOUS_ENCODINGS", "TABLE2_ENCODINGS", "encode_coloring",
    "get_encoding", "parse_encoding",
    "DIRECT", "DirectScheme", "LOG", "LogScheme", "MULDIRECT",
    "MuldirectScheme", "SEQDIRECT", "SeqDirectScheme", "bits_needed",
]
