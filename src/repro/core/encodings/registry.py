"""Named encodings: the paper's 2 baselines, the 12 new encodings, the
modern at-most-one and partial-order families, and a general name
grammar for building further hybrids.

A name is one or more level specifications joined by ``+``; each level is a
scheme name (``log``, ``direct``, ``muldirect``, ``ITE-linear``,
``ITE-log``, ``pop``, ``pop-h``, ``seqdirect``, ``cmddirect``,
``bimdirect``, ``proddirect``) optionally followed by ``-<i>``, the
number of indexing Boolean variables that level uses (mandatory for
every level but the last).  Examples: ``muldirect``,
``ITE-log-2+direct``, ``ITE-linear-2+muldirect``,
``direct-3+muldirect-2+log``, ``pop-2+muldirect``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ...coloring.problem import ColoringProblem
from .base import EncodedProblem, Level, LevelScheme, VertexEncoding
from .cardinality import BIMDIRECT, CMDDIRECT, PRODDIRECT
from .hierarchical import build_vertex_encoding
from .ite import ITE_LINEAR, ITE_LOG
from .partial_order import POP, POP_H
from .simple import DIRECT, LOG, MULDIRECT, SEQDIRECT

#: scheme lookup, longest names first so ``ITE-log-2`` parses as the
#: ``ITE-log`` scheme with parameter 2, not as ``ITE`` + junk (and
#: ``pop-h`` before ``pop``).
_SCHEMES: Dict[str, LevelScheme] = {
    "ite-linear": ITE_LINEAR,
    "ite-log": ITE_LOG,
    "seqdirect": SEQDIRECT,
    "cmddirect": CMDDIRECT,
    "bimdirect": BIMDIRECT,
    "proddirect": PRODDIRECT,
    "muldirect": MULDIRECT,
    "direct": DIRECT,
    "pop-h": POP_H,
    "pop": POP,
    "log": LOG,
}


class Encoding:
    """A named CSP-to-SAT encoding (a stack of levels)."""

    def __init__(self, name: str, levels: Sequence[Level]) -> None:
        self.name = name
        self.levels = list(levels)

    @property
    def is_hierarchical(self) -> bool:
        return len(self.levels) > 1

    def vertex_encoding(self, num_values: int) -> VertexEncoding:
        """Compose the per-vertex encoding for a ``num_values`` domain."""
        return build_vertex_encoding(num_values, self.levels)

    def encode(self, problem: ColoringProblem) -> EncodedProblem:
        """Translate a coloring problem to CNF under this encoding."""
        return EncodedProblem(problem, self.vertex_encoding(problem.num_colors),
                              self.name)

    def vars_per_vertex(self, num_values: int) -> int:
        """Boolean variables this encoding spends per CSP variable."""
        return self.vertex_encoding(num_values).num_vars

    def __repr__(self) -> str:
        return f"Encoding({self.name!r})"


def _parse_level(text: str, is_last: bool) -> Level:
    lowered = text.lower()
    for scheme_name in sorted(_SCHEMES, key=len, reverse=True):
        if lowered == scheme_name:
            if not is_last:
                raise ValueError(
                    f"upper level {text!r} needs an explicit variable count "
                    f"(e.g. {text}-2)")
            return Level(_SCHEMES[scheme_name], None)
        prefix = scheme_name + "-"
        if lowered.startswith(prefix):
            suffix = lowered[len(prefix):]
            if suffix.isdigit():
                if is_last:
                    raise ValueError(
                        f"the final level {text!r} must not fix a variable "
                        f"count")
                return Level(_SCHEMES[scheme_name], int(suffix))
    raise ValueError(f"unrecognised level specification {text!r}")


def parse_encoding(name: str) -> Encoding:
    """Parse an encoding name into an :class:`Encoding`."""
    parts = [part.strip() for part in name.split("+")]
    if not parts or any(not part for part in parts):
        raise ValueError(f"malformed encoding name {name!r}")
    levels = [_parse_level(part, is_last=(i == len(parts) - 1))
              for i, part in enumerate(parts)]
    return Encoding(name, levels)


#: The 2 encodings previously used for SAT-based FPGA detailed routing.
PREVIOUS_ENCODINGS: List[str] = ["log", "muldirect"]

#: The 12 new encodings the paper evaluates (§6).
NEW_ENCODINGS: List[str] = [
    "ITE-linear",
    "ITE-log",
    "ITE-log-1+ITE-linear",
    "ITE-log-2+ITE-linear",
    "ITE-log-2+direct",
    "ITE-log-2+muldirect",
    "ITE-linear-2+direct",
    "ITE-linear-2+muldirect",
    "direct-3+direct",
    "direct-3+muldirect",
    "muldirect-3+direct",
    "muldirect-3+muldirect",
]

#: Everything the paper describes (the plain direct encoding is presented
#: in §2 but dominated by muldirect in the experiments).
ALL_ENCODINGS: List[str] = PREVIOUS_ENCODINGS + ["direct"] + NEW_ENCODINGS

#: Our extensions beyond the paper's 15 (see each scheme's docstring).
EXTENSION_ENCODINGS: List[str] = [
    "seqdirect",
    "ITE-log-2+seqdirect",
    "ITE-linear-2+seqdirect",
]

#: The modern at-most-one families (Zhou's at-most-k comparison):
#: direct-style patterns with commander / bimander / product
#: at-most-one constraints from ``repro.core.encodings.cardinality``.
MODERN_AMO_ENCODINGS: List[str] = [
    "cmddirect",
    "bimdirect",
    "proddirect",
]

#: The partial-ordering encodings (Jabrayilov & Mutzel): the pure
#: threshold-ladder POP, the hybrid POP-H, and POP as an upper
#: hierarchy level over the paper's machinery.
PARTIAL_ORDER_ENCODINGS: List[str] = [
    "pop",
    "pop-h",
    "pop-2+muldirect",
]

#: Everything added for the 2026 rerun of the paper's comparison, plus
#: one hybrid proving the new schemes compose under §4's hierarchy.
MODERN_ENCODINGS: List[str] = (
    MODERN_AMO_ENCODINGS + PARTIAL_ORDER_ENCODINGS
    + ["ITE-log-2+cmddirect"]
)

#: The full registry: every first-class encoding the pipeline, strategy
#: matrix, portfolio, API cache keys and CLI accept by name.
REGISTRY_ENCODINGS: List[str] = (
    ALL_ENCODINGS + EXTENSION_ENCODINGS + MODERN_ENCODINGS
)

#: The encoding columns of Table 2 (muldirect baseline + best 6 new ones).
TABLE2_ENCODINGS: List[str] = [
    "muldirect",
    "ITE-linear",
    "ITE-log",
    "ITE-linear-2+direct",
    "ITE-linear-2+muldirect",
    "muldirect-3+muldirect",
    "direct-3+muldirect",
]

_CACHE: Dict[str, Encoding] = {}


def get_encoding(name: str) -> Encoding:
    """Return the encoding named ``name`` (parsed once, then cached)."""
    if name not in _CACHE:
        _CACHE[name] = parse_encoding(name)
    return _CACHE[name]


def encode_coloring(problem: ColoringProblem, encoding: str) -> EncodedProblem:
    """One-call translation: coloring problem + encoding name → CNF."""
    return get_encoding(encoding).encode(problem)
