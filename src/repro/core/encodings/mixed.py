"""Mixed-scheme hierarchy levels (paper §4, last paragraph).

"Note that it is not required that all the subdomains at a particular
level of a hierarchical encoding be further divided ... by using the same
simple encoding.  That is, we can have different simple encodings that
are used to further partition the subdomains from the same level."

The named encodings in the registry all use one scheme per level (as the
paper's experiments do); this module implements the general form: an
upper level partitions the domain, and each subdomain is indexed by its
*own* scheme.  Subdomains sharing a scheme share that scheme's variable
block (sized for the largest of them), mirroring §4's variable-sharing
rule; different schemes get disjoint blocks.
"""

from __future__ import annotations

from typing import Sequence

from ...coloring.problem import ColoringProblem
from ..patterns import negate_pattern, shift_clause, shift_pattern
from .base import EncodedProblem, Level, LevelScheme, VertexEncoding
from .hierarchical import split_sizes


def build_mixed_vertex_encoding(num_values: int, top: Level,
                                bottoms: Sequence[LevelScheme]) -> VertexEncoding:
    """Compose a 2-level encoding with a per-subdomain bottom scheme.

    ``bottoms[i]`` indexes subdomain ``i``; its length must equal the
    number of subdomains the top level produces for ``num_values``.
    """
    if num_values < 1:
        raise ValueError("domain must have at least one value")
    if top.num_vars is None:
        raise ValueError("the top level needs an explicit variable count")
    declared = top.scheme.num_subdomains(top.num_vars)
    parts = min(declared, num_values)
    if len(bottoms) != parts:
        raise ValueError(
            f"{parts} subdomains but {len(bottoms)} bottom schemes")

    sizes = split_sizes(num_values, parts)
    top_patterns = top.scheme.patterns(parts)
    top_vars = top.scheme.num_vars(parts)
    clauses = list(top.scheme.structural_clauses(parts))

    # One shared variable block per distinct scheme, sized to the largest
    # subdomain that scheme serves.
    block_offset: dict = {}
    block_size: dict = {}
    next_offset = top_vars
    for scheme, size in zip(bottoms, sizes):
        needed = scheme.num_vars(size)
        if id(scheme) not in block_offset:
            block_offset[id(scheme)] = None  # placeholder; fix below
            block_size[id(scheme)] = needed
        else:
            block_size[id(scheme)] = max(block_size[id(scheme)], needed)
    for scheme in bottoms:
        key = id(scheme)
        if block_offset[key] is None:
            block_offset[key] = next_offset
            next_offset += block_size[key]

    patterns = []
    emitted_structural = set()
    for subdomain, (scheme, size) in enumerate(zip(bottoms, sizes)):
        offset = block_offset[id(scheme)]
        width = block_size[id(scheme)]
        if scheme.is_ite:
            # Smaller trees reuse a prefix of the shared block.
            for pattern in scheme.patterns(size):
                patterns.append(top_patterns[subdomain]
                                + shift_pattern(pattern, offset))
        else:
            full = scheme.patterns(_block_domain(scheme, width))
            for position in range(size):
                patterns.append(top_patterns[subdomain]
                                + shift_pattern(full[position], offset))
            for position in range(size, len(full)):
                clauses.append(
                    negate_pattern(top_patterns[subdomain])
                    + negate_pattern(shift_pattern(full[position], offset)))
            if id(scheme) not in emitted_structural:
                emitted_structural.add(id(scheme))
                for clause in scheme.structural_clauses(
                        _block_domain(scheme, width)):
                    clauses.append(shift_clause(clause, offset))

    return VertexEncoding(num_values=num_values, num_vars=next_offset,
                          patterns=patterns, clauses=clauses)


def _block_domain(scheme: LevelScheme, block_vars: int) -> int:
    """Largest domain size the scheme can index with ``block_vars``
    variables (inverse of num_vars for the simple schemes)."""
    if block_vars == 0:
        return 1
    if scheme.name == "log":
        return 2 ** block_vars
    # direct / muldirect: one variable per value.
    return block_vars


def encode_mixed(problem: ColoringProblem, top: Level,
                 bottoms: Sequence[LevelScheme],
                 name: str = "mixed") -> EncodedProblem:
    """Translate a coloring problem with a mixed-bottom hierarchy."""
    vertex = build_mixed_vertex_encoding(problem.num_colors, top, bottoms)
    return EncodedProblem(problem, vertex, name)
