"""Base interfaces of the encoding layer.

A *level scheme* knows how to index a domain of ``n`` values with Boolean
variables: it provides one :data:`~repro.core.patterns.Pattern` per value
plus whatever *structural clauses* (at-least-one, at-most-one,
excluded-illegal-value) its semantics require.  Single-level encodings use
one scheme for the whole domain; hierarchical encodings (§4 of the paper)
stack schemes, the upper ones partitioning the domain into subdomains.

A :class:`VertexEncoding` is the fully composed per-vertex artifact (every
vertex of a coloring problem has the same domain ``0..K-1``, so one
``VertexEncoding`` is shared by all vertices and only variable offsets
differ).  An :class:`EncodedProblem` is the final CNF for a whole coloring
problem together with everything needed to decode a model or to express
symmetry-breaking constraints.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...coloring.problem import ColoringProblem
from ...sat.cnf import CNF
from ...sat.model import Model
from ..patterns import (LocalClause, Pattern, check_pattern, negate_pattern,
                        pattern_holds, shift_clause, shift_pattern)


class LevelScheme(ABC):
    """One way of indexing a set of ``n`` values with Boolean variables."""

    #: short identifier used in encoding names ("direct", "ITE-linear", ...)
    name: str = "?"
    #: ITE-structured schemes guarantee exactly-one selection structurally
    #: and never need at-least-one/at-most-one/exclusion clauses; they also
    #: admit "smaller trees" for undersized subdomains (paper §4).
    is_ite: bool = False

    @abstractmethod
    def num_vars(self, n: int) -> int:
        """Number of Boolean variables used to index ``n`` values."""

    @abstractmethod
    def patterns(self, n: int) -> List[Pattern]:
        """Indexing pattern of each of the ``n`` values (local literals)."""

    @abstractmethod
    def structural_clauses(self, n: int) -> List[LocalClause]:
        """Scheme-internal clauses over the local variables."""

    @abstractmethod
    def num_subdomains(self, num_level_vars: int) -> int:
        """How many subdomains this scheme distinguishes when used as a
        hierarchy level with ``num_level_vars`` indexing variables."""

    def check(self, n: int) -> None:
        """Self-validate patterns for a domain of size ``n`` (test hook)."""
        pats = self.patterns(n)
        if len(pats) != n:
            raise AssertionError(f"{self.name}: {len(pats)} patterns for {n} values")
        for pattern in pats:
            check_pattern(pattern, self.num_vars(n))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class Level:
    """One level of a (possibly hierarchical) encoding.

    ``num_vars`` is the explicit indexing-variable budget for upper levels
    (the ``-i`` suffix in names like ``ITE-linear-2``); the final level has
    ``num_vars=None`` and is sized by the residual subdomain.
    """

    scheme: LevelScheme
    num_vars: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_vars is not None and self.num_vars < 1:
            raise ValueError("a hierarchy level needs at least one variable")

    @property
    def label(self) -> str:
        if self.num_vars is None:
            return self.scheme.name
        return f"{self.scheme.name}-{self.num_vars}"


@dataclass
class VertexEncoding:
    """The composed encoding of one CSP variable (vertex).

    Attributes
    ----------
    num_values:
        Domain size (number of colors K).
    num_vars:
        Size of the per-vertex variable block.
    patterns:
        ``patterns[c]`` selects domain value ``c`` (local literals).
    clauses:
        Structural clauses over the local block.
    """

    num_values: int
    num_vars: int
    patterns: List[Pattern]
    clauses: List[LocalClause] = field(default_factory=list)

    def validate(self) -> None:
        """Check the block's internal consistency.

        Every pattern and every structural clause must stay inside the
        declared ``num_vars`` block and mention no variable twice within
        a pattern.  Auxiliary-variable schemes (sequential / commander /
        bimander / product at-most-one, POP-H channelling) are exactly
        where an off-by-one in allocation would silently alias two
        constraint groups — an aliased CNF is *still well-formed*, so
        nothing downstream would catch it.  Raises ``ValueError``.
        """
        if len(self.patterns) != self.num_values:
            raise ValueError(
                f"{len(self.patterns)} patterns for {self.num_values} "
                f"values")
        for pattern in self.patterns:
            check_pattern(pattern, self.num_vars)
        for clause in self.clauses:
            for lit in clause:
                if lit == 0:
                    raise ValueError("structural clause contains literal 0")
                if abs(lit) > self.num_vars:
                    raise ValueError(
                        f"structural clause literal {lit} exceeds the "
                        f"vertex block size {self.num_vars} — the scheme "
                        f"references a variable it never declared")

    def decode_value(self, values: Sequence[bool]) -> Optional[int]:
        """Return the first domain value whose pattern holds under a local
        assignment (``values[i]`` = local variable ``i+1``), or None.

        "First" implements the paper's rule for multivalued encodings:
        *"we extract a CSP solution by taking any one of the allowed
        values"*; for structurally exact encodings exactly one pattern can
        hold anyway.
        """
        for value, pattern in enumerate(self.patterns):
            if pattern_holds(pattern, values):
                return value
        return None


class EncodedProblem:
    """A coloring problem translated to CNF under a particular encoding.

    Variable layout: vertex ``v`` owns the contiguous global variables
    ``v * vars_per_vertex + 1 .. (v + 1) * vars_per_vertex``.
    """

    def __init__(self, problem: ColoringProblem, vertex_encoding: VertexEncoding,
                 encoding_name: str) -> None:
        self.problem = problem
        self.vertex_encoding = vertex_encoding
        self.encoding_name = encoding_name
        self.vars_per_vertex = vertex_encoding.num_vars
        self.cnf = CNF(num_vars=problem.num_vertices * self.vars_per_vertex)
        # Per-vertex cache of each color's *negated, globally shifted*
        # indexing pattern — i.e. the clause half forbidding that color at
        # that vertex.  A vertex's patterns are reused by every incident
        # edge (and again by symmetry breaking via forbid_color_clause),
        # so shifting and negating once per vertex instead of once per
        # edge endpoint removes the dominant allocation in CNF generation.
        self._forbid: List[List[Tuple[int, ...]]] = []
        self._build()

    def _build(self) -> None:
        graph = self.problem.graph
        num_colors = self.problem.num_colors
        negated = [negate_pattern(p) for p in self.vertex_encoding.patterns]
        # negate(shift(p)) == shift(negate(p)): both flip signs and push
        # magnitudes up by the offset, so the cache can shift the negations.
        self._forbid = [
            [shift_pattern(pattern, self.vertex_offset(v))
             for pattern in negated]
            for v in range(graph.num_vertices)]
        # Structural clauses, once per vertex.
        for v in range(graph.num_vertices):
            offset = self.vertex_offset(v)
            for clause in self.vertex_encoding.clauses:
                self.cnf.add_clause(shift_clause(clause, offset))
        # Conflict clauses, once per edge per common domain value (§2):
        # ¬(pattern@u ∧ pattern@w) is just the two cached halves joined.
        for u, w in graph.edges():
            forbid_u = self._forbid[u]
            forbid_w = self._forbid[w]
            for color in range(num_colors):
                self.cnf.add_clause(forbid_u[color] + forbid_w[color])

    def vertex_offset(self, v: int) -> int:
        """Variable offset of vertex ``v``'s block."""
        if not 0 <= v < self.problem.num_vertices:
            raise ValueError(f"vertex {v} out of range")
        return v * self.vars_per_vertex

    def global_pattern(self, v: int, color: int) -> Pattern:
        """The global-literal pattern selecting ``color`` at vertex ``v``."""
        return shift_pattern(self.vertex_encoding.patterns[color],
                             self.vertex_offset(v))

    def forbid_color_clause(self, v: int, color: int) -> Tuple[int, ...]:
        """Clause asserting vertex ``v`` does not take ``color`` (used by
        symmetry breaking — paper §5).  Served from the per-vertex cache
        built during CNF generation."""
        if not 0 <= v < self.problem.num_vertices:
            raise ValueError(f"vertex {v} out of range")
        return self._forbid[v][color]

    def add_symmetry_clauses(self, clauses: Sequence[Sequence[int]]) -> None:
        """Append externally generated (symmetry-breaking) clauses."""
        for clause in clauses:
            self.cnf.add_clause(clause)

    def decode(self, model: Model) -> Dict[int, int]:
        """Extract a coloring from a satisfying model.

        Raises ``ValueError`` if some vertex selects no domain value, which
        would indicate an encoding bug (the test suite relies on this).
        """
        coloring: Dict[int, int] = {}
        values = [model.value(var) for var in range(1, self.cnf.num_vars + 1)]
        block = self.vars_per_vertex
        for v in range(self.problem.num_vertices):
            offset = self.vertex_offset(v)
            local = values[offset:offset + block]
            value = self.vertex_encoding.decode_value(local)
            if value is None or value >= self.problem.num_colors:
                raise ValueError(
                    f"model selects no legal value for vertex {v} "
                    f"under encoding {self.encoding_name!r}")
            coloring[v] = value
        return coloring

    def __repr__(self) -> str:
        return (f"EncodedProblem(encoding={self.encoding_name!r}, "
                f"vars={self.cnf.num_vars}, clauses={self.cnf.num_clauses})")
