"""Partial-ordering (POP / POP-H) encodings (Jabrayilov & Mutzel).

Instead of one selector per (vertex, color), the partial-order encoding
spends K-1 *threshold* variables per vertex: local variable i reads
"color(v) ≥ i".  The ordering axioms ``color ≥ i+1 → color ≥ i`` make
every assignment denote exactly one color — the unique step position of
the threshold ladder — so at-least-one / at-most-one constraints are
free, like the ITE trees, while symmetry breaking and conflicts still
derive from patterns:

* value c's indexing pattern is ``y_c ∧ ¬y_{c+1}`` (one literal at the
  domain boundaries), so conflict clauses have ≤ 4 literals regardless
  of K;
* a model decodes by locating the step, i.e. ordinary pattern
  evaluation.

**POP-H** is the hybrid: it adds the K direct selector variables
``x_c`` channelled to the thresholds (``x_c ↔ y_c ∧ ¬y_{c+1}``) and
exposes *those* as the patterns, recovering the direct encoding's
2-literal conflict clauses while the ladder replaces the quadratic
at-most-one — the configuration Jabrayilov & Mutzel report as the
strongest on hard coloring instances.

POP composes as an upper hierarchy level too (``pop-2+muldirect``): m
threshold variables partition the domain into m+1 ordered subdomains,
exactly like ITE-linear's fan-out but with ladder clauses instead of
tree structure.  POP-H uses auxiliaries, so like ``seqdirect`` it is
final-level only.
"""

from __future__ import annotations

from typing import List

from ..patterns import LocalClause, Pattern
from .base import LevelScheme


def _ordering_clauses(num_thresholds: int) -> List[LocalClause]:
    """y_{i+1} → y_i for the threshold ladder occupying vars 1..n."""
    return [(-(i + 1), i) for i in range(1, num_thresholds)]


class PartialOrderScheme(LevelScheme):
    """POP: K-1 threshold variables, ordering clauses, step patterns."""

    name = "pop"
    is_ite = False

    def num_vars(self, n: int) -> int:
        if n < 1:
            raise ValueError("domain must have at least one value")
        return n - 1

    def patterns(self, n: int) -> List[Pattern]:
        self.num_vars(n)
        if n == 1:
            return [()]
        result: List[Pattern] = [(-1,)]
        for value in range(1, n - 1):
            result.append((value, -(value + 1)))
        result.append((n - 1,))
        return result

    def structural_clauses(self, n: int) -> List[LocalClause]:
        return _ordering_clauses(self.num_vars(n))

    def num_subdomains(self, num_level_vars: int) -> int:
        # m thresholds distinguish m+1 ordered ranges (cf. ITE-linear).
        return num_level_vars + 1


class PartialOrderHybridScheme(LevelScheme):
    """POP-H: direct selectors channelled to a threshold ladder.

    Layout: value variables ``x_1..x_K`` first (the patterns), threshold
    auxiliaries ``y_1..y_{K-1}`` after them.  Structural clauses are the
    ordering axioms plus the channelling ``x_c ↔ y_c ∧ ¬y_{c+1}`` (with
    ``y_0 ≡ true`` and ``y_K ≡ false``), which force exactly one
    selector true — no at-least-one or at-most-one clauses needed.
    """

    name = "pop-h"
    is_ite = False

    def num_vars(self, n: int) -> int:
        if n < 1:
            raise ValueError("domain must have at least one value")
        return 2 * n - 1

    def patterns(self, n: int) -> List[Pattern]:
        self.num_vars(n)
        return [(value + 1,) for value in range(n)]

    def structural_clauses(self, n: int) -> List[LocalClause]:
        self.num_vars(n)
        if n == 1:
            return [(1,)]  # x_1 ↔ true

        def y(i: int) -> int:  # threshold i lives after the n selectors
            return n + i

        clauses: List[LocalClause] = [(-y(i + 1), y(i))
                                      for i in range(1, n - 1)]
        for c in range(1, n + 1):
            x = c
            below = c - 1   # y_{c-1}, absent for the first value
            above = c       # y_c, absent for the last value
            forward: List[int] = [x]  # y_{c-1} ∧ ¬y_c → x_c
            if below >= 1:
                clauses.append((-x, y(below)))
                forward.append(-y(below))
            if above <= n - 1:
                clauses.append((-x, -y(above)))
                forward.append(y(above))
            clauses.append(tuple(forward))
        return clauses

    def num_subdomains(self, num_level_vars: int) -> int:
        raise NotImplementedError(
            "pop-h uses auxiliary variables and is only meaningful as a "
            "final hierarchy level")


POP = PartialOrderScheme()
POP_H = PartialOrderHybridScheme()
