"""Structural ITE-tree schemes (paper §3).

A CSP variable is represented by a tree of if-then-else operators whose
leaves are the domain values; an assignment to the *indexing Boolean
variables* controlling the ITEs selects exactly one leaf, so no
at-least-one / at-most-one / excluded-value clauses are ever needed — only
conflict clauses.  Two tree shapes give the two base schemes:

* **ITE-linear** — a chain: value ``i`` is selected by
  ``¬i₀ ∧ … ∧ ¬i_{k-1} ∧ i_k`` (the last value by all-negative), using
  ``n - 1`` variables for ``n`` values (Fig. 1.a).
* **ITE-log** — a balanced tree in which all ITEs at the same depth share
  one indexing variable, so ``⌈log₂ n⌉`` variables suffice and some values
  are selected by patterns that omit the last variable — the paper's
  "variant of the log encoding" that needs no illegal-pattern clauses
  (Fig. 1.b).

:class:`ITETree` additionally supports arbitrary shapes ("In general, the
ITE tree for a CSP variable can have any structure"), which the tests use
to exercise the framework beyond the two named shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..patterns import Pattern
from .base import LevelScheme
from .simple import bits_needed


@dataclass(frozen=True)
class ITENode:
    """An internal ITE: if ``var`` then ``then_child`` else ``else_child``.

    ``var`` is a 1-based local variable index.  Children are either nested
    nodes or integer leaf ids (domain values).
    """

    var: int
    then_child: Union["ITENode", int]
    else_child: Union["ITENode", int]


class ITETree:
    """An ITE tree over leaves ``0..num_leaves-1``.

    Enforces the paper's §3 *restriction*: no indexing variable may appear
    twice on any root-to-leaf path (sharing across disjoint paths — e.g.
    per-level variables in the balanced tree — is what makes ITE-log use
    only ⌈log₂ n⌉ variables).
    """

    def __init__(self, root: Union[ITENode, int], num_leaves: int) -> None:
        self.root = root
        self.num_leaves = num_leaves
        self._patterns: List[Optional[Pattern]] = [None] * num_leaves
        self._num_vars = 0
        self._walk(root, [])
        missing = [leaf for leaf, p in enumerate(self._patterns) if p is None]
        if missing:
            raise ValueError(f"leaves {missing} unreachable in ITE tree")

    def _walk(self, node: Union[ITENode, int], path: List[int]) -> None:
        if isinstance(node, int):
            if not 0 <= node < self.num_leaves:
                raise ValueError(f"leaf id {node} out of range")
            if self._patterns[node] is not None:
                raise ValueError(f"leaf {node} appears twice in ITE tree")
            self._patterns[node] = tuple(path)
            return
        if any(abs(lit) == node.var for lit in path):
            raise ValueError(
                f"variable {node.var} repeated on a root-to-leaf path")
        self._num_vars = max(self._num_vars, node.var)
        self._walk(node.then_child, path + [node.var])
        self._walk(node.else_child, path + [-node.var])

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def patterns(self) -> List[Pattern]:
        """Selection pattern of each leaf (path literals from the root)."""
        return list(self._patterns)  # all filled after _walk

    def depth(self) -> int:
        """Longest root-to-leaf path length."""
        return max(len(p) for p in self._patterns) if self._patterns else 0


def linear_tree(n: int) -> Union[ITENode, int]:
    """The chain of Fig. 1.a: ITE(i₁, v₀, ITE(i₂, v₁, ...))."""
    if n < 1:
        raise ValueError("domain must have at least one value")
    node: Union[ITENode, int] = n - 1
    for value in range(n - 2, -1, -1):
        node = ITENode(var=value + 1, then_child=value, else_child=node)
    return node


def balanced_tree(n: int) -> Union[ITENode, int]:
    """The balanced tree of Fig. 1.b with one shared variable per depth.

    Splits ⌈n/2⌉ / ⌊n/2⌋ recursively; depth is ⌈log₂ n⌉ and every leaf sits
    at depth ⌈log₂ n⌉ or ⌈log₂ n⌉ - 1.
    """
    if n < 1:
        raise ValueError("domain must have at least one value")

    def build(lo: int, hi: int, depth: int) -> Union[ITENode, int]:
        if hi - lo == 1:
            return lo
        mid = lo + (hi - lo + 1) // 2
        return ITENode(var=depth + 1,
                       then_child=build(lo, mid, depth + 1),
                       else_child=build(mid, hi, depth + 1))

    return build(0, n, 0)


class ITELinearScheme(LevelScheme):
    """Chain-shaped ITE tree (n - 1 variables for n values)."""

    name = "ITE-linear"
    is_ite = True

    def num_vars(self, n: int) -> int:
        if n < 1:
            raise ValueError("domain must have at least one value")
        return n - 1

    def patterns(self, n: int) -> List[Pattern]:
        return ITETree(linear_tree(n), n).patterns()

    def structural_clauses(self, n: int) -> List:
        return []

    def num_subdomains(self, num_level_vars: int) -> int:
        return num_level_vars + 1


class ITELogScheme(LevelScheme):
    """Balanced ITE tree with per-depth shared variables (⌈log₂ n⌉ vars)."""

    name = "ITE-log"
    is_ite = True

    def num_vars(self, n: int) -> int:
        return bits_needed(n)

    def patterns(self, n: int) -> List[Pattern]:
        return ITETree(balanced_tree(n), n).patterns()

    def structural_clauses(self, n: int) -> List:
        return []

    def num_subdomains(self, num_level_vars: int) -> int:
        return 2 ** num_level_vars


class CustomITEScheme(LevelScheme):
    """A scheme built from an arbitrary user-supplied ITE tree factory.

    ``tree_factory(n)`` must return the root of a tree with ``n`` leaves.
    Exposes the paper's observation that any tree shape yields a valid
    encoding (with different value-selection probabilities).
    """

    is_ite = True

    def __init__(self, tree_factory, name: str = "ITE-custom") -> None:
        self._tree_factory = tree_factory
        self.name = name

    def _tree(self, n: int) -> ITETree:
        return ITETree(self._tree_factory(n), n)

    def num_vars(self, n: int) -> int:
        return self._tree(n).num_vars

    def patterns(self, n: int) -> List[Pattern]:
        return self._tree(n).patterns()

    def structural_clauses(self, n: int) -> List:
        return []

    def num_subdomains(self, num_level_vars: int) -> int:
        raise NotImplementedError(
            "custom ITE schemes define no canonical subdomain count; "
            "use them only as the final hierarchy level")


ITE_LINEAR = ITELinearScheme()
ITE_LOG = ITELogScheme()
