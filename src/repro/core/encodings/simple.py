"""The three "simple" CSP-to-SAT schemes of the paper's §2.

* **log** (Iwama & Miyazaki) — ⌈log₂ n⌉ variables per CSP variable, one
  conflict clause per adjacent pair per common value, plus clauses
  excluding bit patterns that denote no legal value.
* **direct** (de Kleer) — one variable per (CSP variable, value) with
  at-least-one and pairwise at-most-one clauses.
* **muldirect** (Selman et al.) — the multivalued direct encoding: direct
  without the at-most-one clauses; a model may allow several values and any
  one of them is extracted.

These are both usable stand-alone (the paper's two baselines plus direct)
and as levels of hierarchical encodings (§4), where ``direct-3`` etc. name
a level using 3 of these variables.
"""

from __future__ import annotations

from typing import List

from ..patterns import LocalClause, Pattern, negate_pattern
from .base import LevelScheme
from .cardinality import CardinalityDirectScheme


def bits_needed(n: int) -> int:
    """Number of bits needed to distinguish ``n`` values (0 for n == 1)."""
    if n < 1:
        raise ValueError("domain must have at least one value")
    return (n - 1).bit_length()


class DirectScheme(LevelScheme):
    """One Boolean variable per value; at-least-one + at-most-one."""

    name = "direct"
    is_ite = False

    def num_vars(self, n: int) -> int:
        if n < 1:
            raise ValueError("domain must have at least one value")
        return n

    def patterns(self, n: int) -> List[Pattern]:
        self.num_vars(n)
        return [(value + 1,) for value in range(n)]

    def structural_clauses(self, n: int) -> List[LocalClause]:
        clauses: List[LocalClause] = [tuple(range(1, n + 1))]
        for i in range(1, n + 1):
            for j in range(i + 1, n + 1):
                clauses.append((-i, -j))
        return clauses

    def num_subdomains(self, num_level_vars: int) -> int:
        return num_level_vars


class MuldirectScheme(LevelScheme):
    """One Boolean variable per value; at-least-one only (multivalued)."""

    name = "muldirect"
    is_ite = False

    def num_vars(self, n: int) -> int:
        if n < 1:
            raise ValueError("domain must have at least one value")
        return n

    def patterns(self, n: int) -> List[Pattern]:
        self.num_vars(n)
        return [(value + 1,) for value in range(n)]

    def structural_clauses(self, n: int) -> List[LocalClause]:
        return [tuple(range(1, n + 1))]

    def num_subdomains(self, num_level_vars: int) -> int:
        return num_level_vars


class LogScheme(LevelScheme):
    """Binary value index; illegal bit patterns are excluded by clauses."""

    name = "log"
    is_ite = False

    def num_vars(self, n: int) -> int:
        return bits_needed(n)

    def patterns(self, n: int) -> List[Pattern]:
        num_bits = bits_needed(n)
        result: List[Pattern] = []
        for value in range(n):
            result.append(self._bit_pattern(value, num_bits))
        return result

    def structural_clauses(self, n: int) -> List[LocalClause]:
        num_bits = bits_needed(n)
        clauses: List[LocalClause] = []
        for illegal in range(n, 2 ** num_bits):
            clauses.append(negate_pattern(self._bit_pattern(illegal, num_bits)))
        return clauses

    def num_subdomains(self, num_level_vars: int) -> int:
        return 2 ** num_level_vars

    @staticmethod
    def _bit_pattern(value: int, num_bits: int) -> Pattern:
        # Bit 0 of the value is local variable 1, etc.  A set bit appears
        # as a positive literal.
        return tuple(bit + 1 if (value >> bit) & 1 else -(bit + 1)
                     for bit in range(num_bits))


class SeqDirectScheme(CardinalityDirectScheme):
    """Direct encoding with a *sequential* (ladder) at-most-one.

    An extension beyond the paper: the pairwise at-most-one of the direct
    encoding costs O(n²) clauses, which dominates CNF size at large
    domains.  The classic sequential encoding (Sinz 2005) spends n-1
    auxiliary ladder variables ``s_i`` ("some value ≤ i is selected") for
    a 3(n-1)-clause at-most-one.  Patterns are unchanged — auxiliaries
    live in the vertex block after the value variables and never appear
    in patterns — so conflicts, symmetry breaking and hierarchy
    composition all work untouched, demonstrating that the pattern
    abstraction accommodates auxiliary-variable schemes.

    Now a thin instantiation of :class:`CardinalityDirectScheme` over the
    cardinality library's :func:`~.cardinality.amo_sequential` builder —
    clause-for-clause identical to the original hand-rolled ladder
    (pinned by ``tests/test_seqdirect.py``).
    """

    def __init__(self) -> None:
        super().__init__("seqdirect", "sequential")


DIRECT = DirectScheme()
MULDIRECT = MuldirectScheme()
LOG = LogScheme()
SEQDIRECT = SeqDirectScheme()
