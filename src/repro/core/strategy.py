"""A *strategy* = SAT encoding × symmetry-breaking heuristic × solver.

The paper's portfolio idea (§6) treats each such combination as one
parallel run; this class is the unit the pipeline and the portfolio runner
operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..sat.solver.config import SolverConfig, preset
from ..sat.status import SolveLimits
from .encodings.registry import get_encoding
from .symmetry.heuristics import get_heuristic


@dataclass(frozen=True)
class Strategy:
    """One (encoding, symmetry heuristic, solver preset) combination."""

    encoding: str
    symmetry: str = "none"
    solver: str = "siege_like"
    seed: int = 0
    #: BCP engine: "arena" (default), the pre-arena "legacy" engine
    #: (same search trajectory; the batch runner falls back to it when
    #: a job fails in an arena-specific way), the typed-array "packed"
    #: engine, or "arena+inprocess" — the arena engine with
    #: inter-restart inprocessing and tiered DB reduction switched on
    #: (the performance configuration for conflict-heavy instances).
    engine: str = "arena"

    def __post_init__(self) -> None:
        get_encoding(self.encoding)       # validate eagerly
        get_heuristic(self.symmetry)
        if self.solver not in ("minisat_like", "siege_like"):
            raise ValueError(f"unknown solver preset {self.solver!r}")
        if self.engine not in ("arena", "legacy", "packed",
                               "arena+inprocess"):
            raise ValueError(f"unknown solver engine {self.engine!r}")

    @property
    def label(self) -> str:
        """Display label, e.g. ``ITE-linear-2+muldirect/s1``.

        Labels are unique per strategy: non-default solver presets,
        seeds and engines are appended so sweeps keyed by label never
        collide.
        """
        label = self.encoding
        if self.symmetry != "none":
            label += f"/{self.symmetry}"
        if self.solver != "siege_like":
            label += f"@{self.solver}"
        if self.seed:
            label += f"#{self.seed}"
        if self.engine != "arena":
            label += f"!{self.engine}"
        return label

    def with_engine(self, engine: str) -> "Strategy":
        """This strategy on another BCP engine (same trajectory)."""
        return replace(self, engine=engine)

    def solver_config(self,
                      limits: Optional[SolveLimits] = None) -> SolverConfig:
        """Instantiate the solver configuration for this strategy,
        optionally bounded by a :class:`SolveLimits` budget."""
        overrides = limits.as_config_kwargs() if limits is not None else {}
        if self.engine == "arena+inprocess":
            # Not a separate engine: the arena engine with the
            # inprocessing + tier-reduction flags on.
            return preset(self.solver, seed=self.seed, engine="arena",
                          inprocessing=True, reduce_policy="tier",
                          **overrides)
        return preset(self.solver, seed=self.seed, engine=self.engine,
                      **overrides)


#: The paper's single best strategy (§6).
BEST_SINGLE_STRATEGY = Strategy("ITE-linear-2+muldirect", "s1")

#: The paper's 2-strategy portfolio (adds muldirect-3+muldirect/s1).
#: Members carry distinct solver seeds: the paper's solvers were
#: randomised, and per-instance complementarity between members — the
#: source of portfolio speedup — comes from both the encoding and the
#: search trajectory.
PORTFOLIO_2 = (
    Strategy("ITE-linear-2+muldirect", "s1", seed=0),
    Strategy("muldirect-3+muldirect", "s1", seed=1),
)

#: The paper's 3-strategy portfolio (adds ITE-linear-2+direct/s1).
PORTFOLIO_3 = PORTFOLIO_2 + (Strategy("ITE-linear-2+direct", "s1", seed=2),)
