"""Instance and formula analysis.

Structural statistics behind Table 2's behaviour: how big each encoding's
CNF is, how the conflict graph looks, and where an instance sits between
its clique lower bound and greedy upper bound (the "hardness window" —
widths inside it are exactly the ones that need real search).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..coloring.greedy import clique_lower_bound, greedy_num_colors
from ..coloring.problem import ColoringProblem, Graph
from ..sat.cnf import CNF
from .encodings.registry import get_encoding


@dataclass
class FormulaStats:
    """Size and shape of one CNF formula."""

    num_vars: int
    num_clauses: int
    num_literals: int
    min_clause_len: int
    max_clause_len: int
    mean_clause_len: float
    clause_length_histogram: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def of(cls, cnf: CNF) -> "FormulaStats":
        lengths = [len(clause) for clause in cnf]
        histogram: Dict[int, int] = {}
        for length in lengths:
            histogram[length] = histogram.get(length, 0) + 1
        if not lengths:
            return cls(cnf.num_vars, 0, 0, 0, 0, 0.0, {})
        return cls(
            num_vars=cnf.num_vars,
            num_clauses=len(lengths),
            num_literals=sum(lengths),
            min_clause_len=min(lengths),
            max_clause_len=max(lengths),
            mean_clause_len=sum(lengths) / len(lengths),
            clause_length_histogram=histogram,
        )


@dataclass
class GraphStats:
    """Shape of a conflict graph."""

    num_vertices: int
    num_edges: int
    density: float
    max_degree: int
    mean_degree: float
    clique_lower_bound: int
    greedy_upper_bound: int

    @classmethod
    def of(cls, graph: Graph) -> "GraphStats":
        n = graph.num_vertices
        degrees = [graph.degree(v) for v in range(n)]
        possible = n * (n - 1) / 2
        return cls(
            num_vertices=n,
            num_edges=graph.num_edges,
            density=graph.num_edges / possible if possible else 0.0,
            max_degree=max(degrees) if degrees else 0,
            mean_degree=sum(degrees) / n if n else 0.0,
            clique_lower_bound=clique_lower_bound(graph),
            greedy_upper_bound=greedy_num_colors(graph),
        )

    @property
    def hardness_window(self) -> Tuple[int, int]:
        """The K range where cheap bounds cannot decide colorability:
        clique bound < K <= greedy bound needs search to refute, and
        K in (clique, greedy) needs search either way."""
        return (self.clique_lower_bound, self.greedy_upper_bound)


def compare_encodings(problem: ColoringProblem,
                      encodings: List[str]) -> Dict[str, FormulaStats]:
    """CNF statistics of each named encoding on one coloring problem."""
    return {name: FormulaStats.of(get_encoding(name).encode(problem).cnf)
            for name in encodings}


def encoding_profile(encoding_name: str, num_values: int) -> Dict[str, float]:
    """Per-vertex structural profile of an encoding at a domain size:
    variable count, structural clause count, pattern length stats."""
    vertex = get_encoding(encoding_name).vertex_encoding(num_values)
    lengths = [len(pattern) for pattern in vertex.patterns]
    return {
        "vars_per_vertex": vertex.num_vars,
        "structural_clauses": len(vertex.clauses),
        "min_pattern_len": min(lengths),
        "max_pattern_len": max(lengths),
        "mean_pattern_len": sum(lengths) / len(lengths),
    }
