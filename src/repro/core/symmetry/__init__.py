"""Symmetry-breaking heuristics b1 and s1 (paper §5)."""

from .clauses import apply_symmetry, symmetry_clauses
from .heuristics import (HEURISTICS, b1_sequence, c1_sequence, get_heuristic,
                         no_symmetry_sequence, s1_sequence)

__all__ = [
    "apply_symmetry", "symmetry_clauses",
    "HEURISTICS", "b1_sequence", "c1_sequence", "get_heuristic",
    "no_symmetry_sequence", "s1_sequence",
]
