"""Symmetry-breaking vertex-sequence heuristics (paper §5).

Color names in a K-coloring are interchangeable: given *any* sequence of
K-1 vertices, every coloring can be renamed so the i-th sequence vertex
(0-based) uses a color ≤ i, so constraining it that way preserves
satisfiability while cutting the color-permutation symmetry (Van Gelder).

Two heuristics choose the sequence:

* **b1** (Van Gelder) — start from the vertex of maximum degree, then its
  *neighbours* in descending degree order (up to K-2 of them), ties broken
  by the sum of the neighbours' degrees;
* **s1** (this paper) — simply the K-1 highest-degree vertices in the whole
  graph, same ordering key.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ...coloring.problem import Graph


def _neighbor_degree_sum(graph: Graph, v: int) -> int:
    return sum(graph.degree(u) for u in graph.neighbors(v))


def _sort_key(graph: Graph):
    # Descending degree, ties by descending neighbour-degree sum, then by
    # vertex id for determinism.
    return lambda v: (-graph.degree(v), -_neighbor_degree_sum(graph, v), v)


def b1_sequence(graph: Graph, num_colors: int) -> List[int]:
    """Van Gelder's b1: the max-degree vertex, then up to K-2 of its
    neighbours in descending degree order."""
    if graph.num_vertices == 0 or num_colors < 2:
        return []
    key = _sort_key(graph)
    first = min(range(graph.num_vertices), key=key)
    neighbors = sorted(graph.neighbors(first), key=key)
    return [first] + neighbors[:num_colors - 2]


def s1_sequence(graph: Graph, num_colors: int) -> List[int]:
    """The paper's s1: the K-1 globally highest-degree vertices."""
    if graph.num_vertices == 0 or num_colors < 2:
        return []
    ordered = sorted(range(graph.num_vertices), key=_sort_key(graph))
    return ordered[:num_colors - 1]


def c1_sequence(graph: Graph, num_colors: int) -> List[int]:
    """Clique-seeded sequence (our extension, in the spirit of the
    clique-based instance-independent symmetry breaking of Ramani et al.,
    which the paper cites [31]).

    The vertices of a greedily grown clique, ordered by the standard key;
    position i's "color ≤ i" restriction combines with the clique's
    pairwise disequalities to pin the clique to colors 0, 1, 2, ...
    exactly.  Van Gelder's soundness argument is sequence-agnostic, so
    truncating to K-1 vertices keeps this safe for any K.
    """
    if graph.num_vertices == 0 or num_colors < 2:
        return []
    from ...coloring.greedy import greedy_clique

    clique = sorted(greedy_clique(graph), key=_sort_key(graph))
    return clique[:num_colors - 1]


def no_symmetry_sequence(graph: Graph, num_colors: int) -> List[int]:
    """The empty sequence: no symmetry breaking."""
    return []


SequenceHeuristic = Callable[[Graph, int], List[int]]

HEURISTICS: Dict[str, SequenceHeuristic] = {
    "none": no_symmetry_sequence,
    "b1": b1_sequence,
    "s1": s1_sequence,
    "c1": c1_sequence,
}


def get_heuristic(name: str) -> SequenceHeuristic:
    """Look up a symmetry-breaking heuristic by name (none / b1 / s1)."""
    try:
        return HEURISTICS[name]
    except KeyError:
        known = ", ".join(sorted(HEURISTICS))
        raise ValueError(
            f"unknown symmetry heuristic {name!r} (known: {known})") from None
