"""Turning a symmetry-breaking vertex sequence into clauses.

For the i-th vertex of the sequence (0-based), colors ``i+1 .. K-1`` are
forbidden.  Forbidding a color is encoding-independent: it is the negation
of that color's indexing pattern at that vertex, which
:class:`~repro.core.encodings.base.EncodedProblem` already knows how to
produce — so one implementation serves all 15 encodings.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..encodings.base import EncodedProblem


def symmetry_clauses(encoded: EncodedProblem,
                     sequence: Sequence[int]) -> List[Tuple[int, ...]]:
    """Clauses restricting the i-th sequence vertex to colors ``0..i``."""
    num_colors = encoded.problem.num_colors
    if len(sequence) > max(0, num_colors - 1):
        raise ValueError(
            f"sequence of {len(sequence)} vertices is longer than K-1 = "
            f"{num_colors - 1}")
    if len(set(sequence)) != len(sequence):
        raise ValueError("symmetry sequence repeats a vertex")
    clauses: List[Tuple[int, ...]] = []
    for position, vertex in enumerate(sequence):
        for color in range(position + 1, num_colors):
            clauses.append(encoded.forbid_color_clause(vertex, color))
    return clauses


def apply_symmetry(encoded: EncodedProblem, heuristic_name: str) -> int:
    """Generate and add symmetry clauses in place.

    Returns the number of clauses added.  ``heuristic_name`` is one of
    ``none`` / ``b1`` / ``s1``.
    """
    from .heuristics import get_heuristic

    heuristic = get_heuristic(heuristic_name)
    sequence = heuristic(encoded.problem.graph, encoded.problem.num_colors)
    clauses = symmetry_clauses(encoded, sequence)
    encoded.add_symmetry_clauses(clauses)
    return len(clauses)
