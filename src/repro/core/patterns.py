"""Indexing Boolean patterns.

The paper (§2) calls the assignment of encoding variables that selects a
particular domain value the *indexing Boolean pattern* of that value.  We
represent a pattern as a tuple of **local literals**: nonzero ints whose
absolute value is a 1-based index into the vertex's private variable block,
positive for "variable must be true".  A pattern denotes the conjunction of
its literals; the empty pattern is the constant *true* (the value is always
selected, which happens for a domain of size one under ITE encodings).

Every clause the encodings emit — at-least-one, at-most-one,
excluded-illegal-value, conflict, and symmetry-breaking — is derived from
patterns with the two tiny combinators below, which is what makes the 15
encodings and the symmetry heuristics orthogonal.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

Pattern = Tuple[int, ...]
LocalClause = Tuple[int, ...]


def check_pattern(pattern: Sequence[int], num_vars: int) -> None:
    """Validate a pattern: nonzero literals within the local block, no
    variable mentioned twice."""
    seen = set()
    for lit in pattern:
        if lit == 0:
            raise ValueError("pattern contains literal 0")
        var = abs(lit)
        if var > num_vars:
            raise ValueError(f"pattern literal {lit} exceeds block size {num_vars}")
        if var in seen:
            raise ValueError(f"pattern mentions variable {var} twice")
        seen.add(var)


def negate_pattern(pattern: Sequence[int]) -> LocalClause:
    """De Morgan: the negation of a conjunction is a clause of negations.

    An empty pattern (constant true) negates to the empty clause (constant
    false) — e.g. the conflict between two adjacent single-value CSP
    variables is unsatisfiable outright.
    """
    return tuple(-lit for lit in pattern)


def shift_pattern(pattern: Sequence[int], offset: int) -> Pattern:
    """Shift a pattern's variables by ``offset`` (hierarchy composition and
    local-to-global renaming both reduce to this)."""
    return tuple(lit + offset if lit > 0 else lit - offset for lit in pattern)


def shift_clause(clause: Sequence[int], offset: int) -> LocalClause:
    """Shift a clause's variables by ``offset``."""
    return shift_pattern(clause, offset)


def conflict_clause(pattern_a: Sequence[int], pattern_b: Sequence[int]) -> LocalClause:
    """Clause forbidding both patterns from holding simultaneously:
    ``¬(pat_a ∧ pat_b)`` clausified (paper §4's conflict-clause form)."""
    return negate_pattern(pattern_a) + negate_pattern(pattern_b)


def pattern_holds(pattern: Sequence[int], values: Sequence[bool]) -> bool:
    """Evaluate a pattern against a truth assignment.

    ``values`` is indexed so that ``values[var - 1]`` is the value of local
    variable ``var`` (or of global variable ``var`` when evaluating shifted
    patterns against a whole model).
    """
    for lit in pattern:
        value = values[abs(lit) - 1]
        if value != (lit > 0):
            return False
    return True


def patterns_are_distinct(patterns: Iterable[Sequence[int]]) -> bool:
    """True if no two patterns are identical (sanity check used in tests)."""
    seen = set()
    for pattern in patterns:
        key = tuple(sorted(pattern))
        if key in seen:
            return False
        seen.add(key)
    return True
