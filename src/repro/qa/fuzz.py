"""The fuzzing campaign: generate → differential → metamorphic → shrink.

One :func:`run_fuzz` call is one campaign: a deterministic instance
stream (from the seed list), each instance raced through the strategy
matrix and cross-checked, metamorphic oracles applied on a rotating
strategy, every failure minimized by the shrinker and written to disk
as a reproducer bundle.  A wall-clock budget bounds the whole campaign
— the CLI's ``repro fuzz --budget-seconds`` — and the report says how
far it got, so a short CI smoke run and a long nightly run share this
one entry point.

Everything is observable: the campaign runs inside a ``qa.fuzz`` trace
span with one ``qa.instance`` child per instance, and the ``qa.*``
metrics (instances, solves, failures, shrink probes) land in the run's
metrics snapshot when ``--trace`` / ``REPRO_METRICS`` is active.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..obs import metrics as obs_metrics
from ..obs import trace
from ..sat.status import SolveLimits
from .differential import (DEFAULT_SOLVE_LIMITS, FailureSignature,
                           StrategyMatrix, run_differential)
from .generators import QAInstance, generate_instances
from .metamorphic import run_metamorphic
from .shrink import ReproducerBundle, ShrinkResult, shrink_failure


@dataclass
class FuzzFinding:
    """One failure the campaign found (and possibly minimized)."""

    instance: QAInstance
    signature: FailureSignature
    shrunk: Optional[ShrinkResult] = None
    bundle_path: Optional[str] = None

    def describe(self) -> str:
        text = f"{self.instance.name}: {self.signature}"
        if self.shrunk is not None:
            text += (f" [shrunk {self.instance.num_vertices}->"
                     f"{self.shrunk.num_vertices} vertices, "
                     f"{self.shrunk.probes} probes]")
        if self.bundle_path:
            text += f" -> {self.bundle_path}"
        return text


@dataclass
class FuzzReport:
    """What one campaign covered and what it found."""

    matrix: StrategyMatrix
    seeds_requested: int = 0
    seeds_completed: int = 0
    instances: int = 0
    solves: int = 0
    metamorphic_checks: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)
    budget_exhausted: bool = False
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        verdict = "CLEAN" if self.ok else f"{len(self.findings)} FAILURES"
        lines = [
            f"fuzz {verdict}: {self.instances} instances x "
            f"{self.matrix.size} strategies "
            f"({self.solves} solves, {self.metamorphic_checks} metamorphic "
            f"checks) in {self.wall_time:.1f}s",
            f"  seeds: {self.seeds_completed}/{self.seeds_requested} "
            f"completed" + (" (budget exhausted)"
                            if self.budget_exhausted else ""),
            f"  matrix: {self.matrix.describe()}",
        ]
        lines.extend(f"  ! {finding.describe()}" for finding in self.findings)
        return "\n".join(lines)


def run_fuzz(seeds: Iterable[int], *,
             matrix: Optional[StrategyMatrix] = None,
             budget_seconds: Optional[float] = None,
             shrink: bool = True,
             metamorphic: bool = True,
             include_routing: bool = True,
             out_dir: Optional[str] = None,
             limits: Optional[SolveLimits] = DEFAULT_SOLVE_LIMITS,
             faults=None,
             progress=None) -> FuzzReport:
    """Run one differential-fuzzing campaign.

    ``seeds`` drives the deterministic instance stream; the campaign
    stops early when ``budget_seconds`` elapses (instances are never
    interrupted mid-matrix, so every reported instance was checked
    under the *whole* matrix).  ``faults`` forwards a fault plan to the
    solving pipeline — how a deliberate encoding bug is injected to
    validate the harness end to end.  ``progress`` is an optional
    ``callable(str)`` for CLI live output.
    """
    matrix = matrix or StrategyMatrix()
    strategies = matrix.strategies()
    seeds = list(seeds)
    report = FuzzReport(matrix=matrix, seeds_requested=len(seeds))
    deadline = (time.monotonic() + budget_seconds
                if budget_seconds is not None else None)
    start = time.perf_counter()

    def out_of_budget() -> bool:
        return deadline is not None and time.monotonic() >= deadline

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    with trace.span("qa.fuzz", seeds=len(seeds),
                    matrix=matrix.describe()) as span:
        instance_counter = 0
        for seed in seeds:
            if out_of_budget():
                report.budget_exhausted = True
                break
            for instance in generate_instances(
                    seed, include_routing=include_routing):
                if out_of_budget():
                    report.budget_exhausted = True
                    break
                _fuzz_one(instance, strategies, report,
                          instance_counter, matrix,
                          shrink=shrink, metamorphic=metamorphic,
                          out_dir=out_dir, limits=limits, faults=faults,
                          note=note)
                instance_counter += 1
            else:
                report.seeds_completed += 1
                continue
            break
        report.wall_time = time.perf_counter() - start
        span.set("instances", report.instances)
        span.set("findings", len(report.findings))
        if obs_metrics.enabled():
            obs_metrics.registry().observe("qa.campaign_time",
                                           report.wall_time)
    return report


def _fuzz_one(instance: QAInstance, strategies, report: FuzzReport,
              counter: int, matrix: StrategyMatrix, *,
              shrink: bool, metamorphic: bool, out_dir: Optional[str],
              limits, faults, note) -> None:
    """Differential + metamorphic checks for one instance."""
    with trace.span("qa.instance", instance=instance.name,
                    kind=instance.kind,
                    vertices=instance.num_vertices,
                    colors=instance.num_colors) as span:
        report.instances += 1
        if obs_metrics.enabled():
            obs_metrics.registry().inc("qa.instances")
        diff = run_differential(instance.problem, strategies,
                                limits=limits, oracle=instance.expected,
                                faults=faults)
        report.solves += len(diff.outcomes)
        signatures = list(diff.failures)
        if metamorphic:
            # One rotating strategy per instance: over a campaign every
            # strategy gets metamorphic coverage at 1/len(matrix) of the
            # differential cost.
            probe = strategies[counter % len(strategies)]
            meta = run_metamorphic(instance.problem, probe,
                                   seed=instance.seed, limits=limits,
                                   faults=faults)
            report.metamorphic_checks += len(meta.checked)
            report.solves += 1 + len(meta.checked)
            signatures.extend(meta.violations)
        span.set("failures", len(signatures))
        for signature in signatures:
            finding = _handle_failure(instance, strategies, signature,
                                      shrink=shrink, out_dir=out_dir,
                                      limits=limits, faults=faults)
            report.findings.append(finding)
            note(f"FAIL {finding.describe()}")


def _handle_failure(instance: QAInstance, strategies,
                    signature: FailureSignature, *,
                    shrink: bool, out_dir: Optional[str],
                    limits, faults) -> FuzzFinding:
    """Minimize one failure and write its reproducer bundle."""
    finding = FuzzFinding(instance=instance, signature=signature)
    problem = instance.problem
    if shrink and signature.kind != "metamorphic":
        shrunk, narrowed = shrink_failure(problem, strategies, signature,
                                          limits=limits, faults=faults)
        finding.shrunk = shrunk
        finding.signature = narrowed
        problem = shrunk.problem
    if out_dir is not None:
        from ..reliability.faults import FaultPlan
        plan = FaultPlan.resolve(faults)
        bundle = ReproducerBundle(
            name=f"{instance.name}-{finding.signature.kind}",
            problem=problem,
            signature=finding.signature,
            seed=instance.seed,
            instance_kind=instance.kind,
            faults=plan.to_text() if plan is not None else "",
            original_vertices=instance.num_vertices,
            shrink_probes=(finding.shrunk.probes
                           if finding.shrunk is not None else 0))
        finding.bundle_path = bundle.write(out_dir)
    return finding
