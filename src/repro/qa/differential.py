"""Cross-encoding / cross-engine differential solving.

The paper's premise makes every instance its own oracle: every
registered CSP-to-SAT encoding (the paper's 15 plus the modern
at-most-one and partial-order families), every symmetry-breaking
variant and both BCP engines are equivalent reformulations of the same
coloring problem, so
*any* SAT/UNSAT disagreement between two strategies is a bug by
construction.  This module solves one instance under a configurable
(encoding × symmetry × engine) matrix and cross-checks:

* **status agreement** — all decided answers must coincide;
* **ground truth** — when the instance is small enough for the
  brute-force oracle (or the generator knew the answer by
  construction), every decided answer must match it;
* **answer integrity** — every SAT model is re-audited against a
  re-encoding of the problem and every UNSAT answer's recorded proof is
  replayed, via :mod:`repro.reliability.audit`;
* **no degradations** — an ERROR status (a model that failed to decode,
  an improper decoded coloring) is itself a failure signature.

Each violated check becomes a :class:`FailureSignature` — a small,
comparable description of *what* disagreed — which the shrinker
(:mod:`repro.qa.shrink`) preserves while minimizing the instance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..coloring.problem import ColoringProblem
from ..core.encodings.registry import (ALL_ENCODINGS, EXTENSION_ENCODINGS,
                                       MODERN_ENCODINGS, REGISTRY_ENCODINGS,
                                       TABLE2_ENCODINGS)
from ..core.pipeline import ColoringOutcome, solve_coloring
from ..core.strategy import Strategy
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..reliability.audit import AuditReport, audit_outcome
from ..sat.status import SolveLimits, SolveStatus
from .generators import MAX_ORACLE_VERTICES, QAInstance

#: Per-strategy solve budget inside the differential runner: generous for
#: the tiny generated instances, but a hard stop against a pathological
#: (instance, strategy) pair starving the rest of the matrix.
DEFAULT_SOLVE_LIMITS = SolveLimits(conflict_budget=50_000,
                                   wall_clock_limit=10.0)

#: Named strategy-matrix presets for the CLI (``--matrix quick``).
MATRIX_PRESETS = ("full", "quick", "engines")


@dataclass(frozen=True)
class StrategyMatrix:
    """The (encoding × symmetry × engine) grid of strategies to race.

    Parsed from a ``--matrix`` spec: either a preset name (``full``,
    ``quick``, ``engines``) or ``;``-separated dimensions::

        encodings=registry|all|table2|extensions|modern|<name>,...;
        symmetry=none,b1,s1,c1;
        engine=arena,legacy,packed,arena+inprocess

    Unspecified dimensions keep the ``full`` defaults.  ``full`` now
    means the *whole registry* — the paper's 15 plus the seqdirect,
    modern at-most-one and partial-order families — so every newly
    registered encoding is differentially checked by default.
    """

    encodings: Tuple[str, ...] = tuple(REGISTRY_ENCODINGS)
    symmetries: Tuple[str, ...] = ("none", "s1")
    engines: Tuple[str, ...] = ("arena", "legacy")

    def strategies(self) -> List[Strategy]:
        """Materialise the grid (validates every name eagerly)."""
        grid = [Strategy(encoding, symmetry, engine=engine)
                for encoding in self.encodings
                for symmetry in self.symmetries
                for engine in self.engines]
        if not grid:
            raise ValueError("empty strategy matrix")
        return grid

    @property
    def size(self) -> int:
        return len(self.encodings) * len(self.symmetries) * len(self.engines)

    def describe(self) -> str:
        return (f"{len(self.encodings)} encodings x "
                f"{len(self.symmetries)} symmetry x "
                f"{len(self.engines)} engines = {self.size} strategies")

    @classmethod
    def parse(cls, spec: Optional[str]) -> "StrategyMatrix":
        if not spec or spec == "full":
            return cls()
        if spec == "quick":
            # The fuzz-smoke matrix: inprocessing on vs off rides along
            # on every quick run, so the flag set added for the
            # conflict-heavy suite is differentially checked for free.
            # One representative of each new family (commander AMO,
            # POP, POP-H) rides along too — a smoke run must exercise
            # the auxiliary-variable and threshold-ladder code paths.
            return cls(encodings=tuple(TABLE2_ENCODINGS)
                       + ("cmddirect", "pop", "pop-h"),
                       symmetries=("none", "s1"),
                       engines=("arena", "arena+inprocess"))
        if spec == "engines":
            # Pure engine differential: one encoding, every engine.
            return cls(encodings=("muldirect",), symmetries=("none", "s1"),
                       engines=("arena", "legacy", "packed",
                                "arena+inprocess"))
        kwargs: Dict[str, Tuple[str, ...]] = {}
        for item in spec.split(";"):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            key = key.strip().lower()
            if not sep:
                raise ValueError(f"malformed matrix dimension {item!r} "
                                 f"(want key=value)")
            names = tuple(name.strip() for name in value.split(",")
                          if name.strip())
            if key in ("encoding", "encodings"):
                expanded: List[str] = []
                for name in names:
                    if name == "all":
                        expanded.extend(ALL_ENCODINGS)
                    elif name == "registry":
                        expanded.extend(REGISTRY_ENCODINGS)
                    elif name == "table2":
                        expanded.extend(TABLE2_ENCODINGS)
                    elif name == "extensions":
                        expanded.extend(EXTENSION_ENCODINGS)
                    elif name == "modern":
                        expanded.extend(MODERN_ENCODINGS)
                    else:
                        expanded.append(name)
                kwargs["encodings"] = tuple(dict.fromkeys(expanded))
            elif key in ("symmetry", "symmetries"):
                kwargs["symmetries"] = names
            elif key in ("engine", "engines"):
                kwargs["engines"] = names
            else:
                raise ValueError(f"unknown matrix dimension {key!r} "
                                 f"(known: encodings, symmetry, engine)")
        matrix = cls(**kwargs)
        matrix.strategies()  # validate names eagerly
        return matrix


@dataclass(frozen=True)
class FailureSignature:
    """A comparable description of one differential failure.

    ``members`` pins the offending strategies *and* what each answered
    (label → status string, or the failed audit check), so the shrinker
    can require the exact same disagreement on a reduced instance.
    """

    kind: str  # status-disagreement | oracle-mismatch | solve-error
    #         # | audit-failure | metamorphic
    members: Tuple[Tuple[str, str], ...]
    detail: str = ""

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(label for label, _ in self.members)

    def __str__(self) -> str:
        parts = ", ".join(f"{label}={what}" for label, what in self.members)
        text = f"{self.kind}: {parts}"
        if self.detail:
            text += f" ({self.detail})"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "detail": self.detail,
                "members": [{"strategy": label, "answer": what}
                            for label, what in self.members]}


@dataclass
class DifferentialResult:
    """Everything one differential run learned about one instance."""

    problem: ColoringProblem
    strategies: List[Strategy]
    outcomes: Dict[str, ColoringOutcome] = field(default_factory=dict)
    audits: Dict[str, AuditReport] = field(default_factory=dict)
    oracle: Optional[bool] = None
    failures: List[FailureSignature] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def consensus(self) -> Optional[SolveStatus]:
        """The agreed decided status, or None (undecided or disputed)."""
        decided = {outcome.status for outcome in self.outcomes.values()
                   if outcome.status.decided}
        if len(decided) == 1:
            return decided.pop()
        return None

    def summary(self) -> str:
        head = (f"differential {'OK' if self.ok else 'FAIL'}: "
                f"{len(self.outcomes)} strategies, "
                f"consensus={self.consensus}")
        lines = [head] + [f"  - {failure}" for failure in self.failures]
        return "\n".join(lines)


def _compute_oracle(problem: ColoringProblem) -> Optional[bool]:
    """Brute-force ground truth for oracle-sized instances."""
    if problem.num_vertices > MAX_ORACLE_VERTICES:
        return None
    from ..coloring.brute import is_colorable
    return is_colorable(problem.graph, problem.num_colors)


def run_differential(problem: ColoringProblem,
                     strategies: Sequence[Strategy], *,
                     limits: Optional[SolveLimits] = DEFAULT_SOLVE_LIMITS,
                     audit: bool = True,
                     oracle: Optional[bool] = None,
                     use_oracle: bool = True,
                     faults=None) -> DifferentialResult:
    """Solve ``problem`` under every strategy and cross-check the answers.

    ``oracle`` supplies ground truth when the caller knows it (a
    generator that built the instance to be UNSAT); otherwise the
    brute-force oracle is consulted for small instances unless
    ``use_oracle`` is False.  ``faults`` is forwarded to the pipeline —
    a fuzzing campaign injects an encoding bug there and this runner
    must flag it.  Auditing always runs with faults disabled (the audit
    layer's own rule), so a faulted strategy cannot fault its audit.
    """
    labels = [strategy.label for strategy in strategies]
    if len(set(labels)) != len(labels):
        raise ValueError("strategy matrix contains duplicate labels")
    result = DifferentialResult(problem=problem, strategies=list(strategies))
    start = time.perf_counter()
    with trace.span("qa.differential", strategies=len(strategies),
                    vertices=problem.num_vertices,
                    colors=problem.num_colors) as span:
        if oracle is None and use_oracle:
            oracle = _compute_oracle(problem)
        result.oracle = oracle
        for strategy in strategies:
            outcome = solve_coloring(problem, strategy, limits=limits,
                                     faults=faults, keep_model=True,
                                     proof_log=True)
            result.outcomes[strategy.label] = outcome
            if obs_metrics.enabled():
                obs_metrics.registry().inc("qa.solves")
            if audit and outcome.status.decided:
                result.audits[strategy.label] = audit_outcome(
                    problem, outcome)
        result.failures = _cross_check(result)
        result.wall_time = time.perf_counter() - start
        span.set("failures", len(result.failures))
        if result.failures and trace.enabled():
            for failure in result.failures:
                trace.event("qa.disagreement", kind=failure.kind,
                            detail=str(failure))
        if obs_metrics.enabled():
            registry = obs_metrics.registry()
            registry.inc("qa.differential_runs")
            registry.inc("qa.failures", len(result.failures))
            registry.observe("qa.differential_time", result.wall_time)
    return result


def _cross_check(result: DifferentialResult) -> List[FailureSignature]:
    """Derive the failure signatures of one finished differential run."""
    failures: List[FailureSignature] = []
    outcomes = result.outcomes

    errors = [(label, str(outcome.status))
              for label, outcome in outcomes.items()
              if outcome.status is SolveStatus.ERROR]
    if errors:
        details = [str(outcomes[label].solver_stats.get("stop_reason", ""))
                   for label, _ in errors]
        failures.append(FailureSignature(
            kind="solve-error", members=tuple(errors),
            detail="; ".join(filter(None, details))[:200]))

    sat = [label for label, outcome in outcomes.items()
           if outcome.status is SolveStatus.SAT]
    unsat = [label for label, outcome in outcomes.items()
             if outcome.status is SolveStatus.UNSAT]
    if sat and unsat:
        members = tuple([(label, "SAT") for label in sat]
                        + [(label, "UNSAT") for label in unsat])
        failures.append(FailureSignature(
            kind="status-disagreement", members=members,
            detail=f"{len(sat)} SAT vs {len(unsat)} UNSAT"))

    if result.oracle is not None:
        expected = SolveStatus.SAT if result.oracle else SolveStatus.UNSAT
        wrong = [(label, str(outcome.status))
                 for label, outcome in outcomes.items()
                 if outcome.status.decided and outcome.status is not expected]
        if wrong:
            failures.append(FailureSignature(
                kind="oracle-mismatch", members=tuple(wrong),
                detail=f"ground truth is {expected}"))

    bad_audits = [(label, report.failures[0].name)
                  for label, report in result.audits.items()
                  if report.failed]
    if bad_audits:
        details = [check.detail
                   for report in result.audits.values()
                   for check in report.failures]
        failures.append(FailureSignature(
            kind="audit-failure", members=tuple(bad_audits),
            detail="; ".join(filter(None, details))[:200]))

    return failures


def recheck_failure(problem: ColoringProblem,
                    strategies: Sequence[Strategy],
                    signature: FailureSignature, *,
                    limits: Optional[SolveLimits] = DEFAULT_SOLVE_LIMITS,
                    faults=None) -> bool:
    """Does ``signature`` reproduce on ``problem``?  (The shrinker's
    predicate.)

    Only the strategies named by the signature are re-run, and the
    reduced instance must reproduce the *same* failure: same kind, same
    strategies, same per-strategy answers.  The oracle is recomputed —
    a reduced instance has its own ground truth.
    """
    involved = [strategy for strategy in strategies
                if strategy.label in set(signature.labels)]
    if not involved:
        return False
    audit = signature.kind == "audit-failure"
    rerun = run_differential(problem, involved, limits=limits, audit=audit,
                             use_oracle=signature.kind == "oracle-mismatch",
                             faults=faults)
    for failure in rerun.failures:
        if failure.kind != signature.kind:
            continue
        if signature.kind == "audit-failure":
            # The failing check may legitimately change as the instance
            # shrinks (e.g. which clause is falsified); require the same
            # strategies to keep failing their audits.
            if set(failure.labels) >= set(signature.labels):
                return True
        elif set(signature.members) <= set(failure.members):
            return True
    return False
