"""repro.qa — differential testing, fuzzing and failure minimization.

The paper's claim that all encodings, symmetry variants and engines are
equivalent reformulations makes every instance self-checking: any
SAT/UNSAT disagreement between two (encoding, symmetry, engine)
strategies is a bug by construction.  This package turns that property
into a correctness harness:

* :mod:`repro.qa.generators` — seeded random / adversarial / routing
  instance generators;
* :mod:`repro.qa.differential` — the strategy-matrix runner and
  cross-checker (status agreement, brute-force oracle, audits);
* :mod:`repro.qa.metamorphic` — status-preserving and status-monotone
  transform oracles;
* :mod:`repro.qa.shrink` — the ddmin shrinker and reproducer bundles;
* :mod:`repro.qa.fuzz` — the campaign orchestrator behind ``repro
  fuzz`` and the nightly CI job.

See ``docs/testing.md`` for the test-tier overview and how to replay a
reproducer bundle from a CI artifact.
"""

from .differential import (DEFAULT_SOLVE_LIMITS, DifferentialResult,
                           FailureSignature, StrategyMatrix,
                           recheck_failure, run_differential)
from .fuzz import FuzzFinding, FuzzReport, run_fuzz
from .generators import (INSTANCE_KINDS, MAX_ORACLE_VERTICES, QAInstance,
                         generate_instances)
from .metamorphic import MetamorphicReport, run_metamorphic
from .shrink import (ReproducerBundle, ShrinkResult, load_bundle,
                     shrink_failure, shrink_problem)

__all__ = [
    "DEFAULT_SOLVE_LIMITS", "DifferentialResult", "FailureSignature",
    "StrategyMatrix", "recheck_failure", "run_differential",
    "FuzzFinding", "FuzzReport", "run_fuzz",
    "INSTANCE_KINDS", "MAX_ORACLE_VERTICES", "QAInstance",
    "generate_instances",
    "MetamorphicReport", "run_metamorphic",
    "ReproducerBundle", "ShrinkResult", "load_bundle", "shrink_failure",
    "shrink_problem",
]
