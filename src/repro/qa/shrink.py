"""Delta-debugging shrinker and reproducer bundles.

A fuzzing campaign that finds a disagreement on a 9-vertex instance
under a 60-strategy matrix is not yet debuggable.  This module minimizes
the failing instance while preserving its :class:`FailureSignature` —
classic ddmin over the vertex set, then greedy edge removal, then color
budget reduction — and serialises the result as a *reproducer bundle*:
a directory with the minimized ``.col`` graph, the strategy pair, the
seed and the failure signature, everything needed to replay the bug from
a CI artifact with two commands (see ``docs/testing.md``).

The shrinker only ever re-runs the strategies the signature names (a
pair, for a status disagreement), so each probe costs two tiny solves,
not a matrix sweep.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..coloring.dimacs import to_col_string
from ..coloring.problem import ColoringProblem, Graph
from ..core.strategy import Strategy
from ..obs import metrics as obs_metrics
from ..obs import trace
from .differential import (DEFAULT_SOLVE_LIMITS, FailureSignature,
                           recheck_failure)

#: Hard cap on shrinker probes — ddmin converges long before this on the
#: instance sizes the generators produce; the cap is a runaway backstop.
MAX_PROBES = 2000

Predicate = Callable[[ColoringProblem], bool]


def induced_subproblem(problem: ColoringProblem,
                       keep: Sequence[int]) -> ColoringProblem:
    """The subproblem induced by the kept vertices (ids renumbered in
    ascending order of the original ids)."""
    kept = sorted(set(keep))
    renumber = {old: new for new, old in enumerate(kept)}
    graph = Graph(len(kept))
    for u, v in problem.graph.edges():
        if u in renumber and v in renumber:
            graph.add_edge(renumber[u], renumber[v])
    names = None
    if problem.vertex_names is not None:
        names = [problem.vertex_names[old] for old in kept]
    return ColoringProblem(graph, problem.num_colors, names)


def without_edge(problem: ColoringProblem, edge: Tuple[int, int]
                 ) -> ColoringProblem:
    """The same problem minus one edge."""
    graph = Graph(problem.num_vertices)
    for u, v in problem.graph.edges():
        if (u, v) != edge:
            graph.add_edge(u, v)
    return ColoringProblem(graph, problem.num_colors, problem.vertex_names)


@dataclass
class ShrinkResult:
    """The minimized problem plus how the shrinker got there."""

    problem: ColoringProblem
    probes: int = 0
    reductions: int = 0
    wall_time: float = 0.0

    @property
    def num_vertices(self) -> int:
        return self.problem.num_vertices


class _Shrinker:
    """One shrinking session: counts probes, enforces the cap."""

    def __init__(self, predicate: Predicate, max_probes: int) -> None:
        self._predicate = predicate
        self._max_probes = max_probes
        self.probes = 0
        self.reductions = 0

    def holds(self, candidate: ColoringProblem) -> bool:
        if self.probes >= self._max_probes:
            return False
        self.probes += 1
        return self._predicate(candidate)

    def ddmin_vertices(self, problem: ColoringProblem) -> ColoringProblem:
        """Zeller-style ddmin over the vertex set (complement testing)."""
        vertices = list(range(problem.num_vertices))
        granularity = 2
        while len(vertices) >= 2:
            chunk = max(1, len(vertices) // granularity)
            reduced = False
            for start in range(0, len(vertices), chunk):
                complement = vertices[:start] + vertices[start + chunk:]
                if not complement:
                    continue
                candidate = induced_subproblem(problem, complement)
                if self.holds(candidate):
                    vertices = complement
                    granularity = max(2, granularity - 1)
                    self.reductions += 1
                    reduced = True
                    break
            if not reduced:
                if granularity >= len(vertices):
                    break
                granularity = min(len(vertices), granularity * 2)
        return induced_subproblem(problem, vertices)

    def drop_edges(self, problem: ColoringProblem) -> ColoringProblem:
        """Greedy one-pass edge removal (each survivor edge is needed)."""
        for edge in sorted(problem.graph.edges()):
            if not problem.graph.has_edge(*edge):
                continue  # removed by an earlier candidate
            candidate = without_edge(problem, edge)
            if self.holds(candidate):
                problem = candidate
                self.reductions += 1
        return problem

    def lower_colors(self, problem: ColoringProblem) -> ColoringProblem:
        while problem.num_colors > 1:
            candidate = problem.with_colors(problem.num_colors - 1)
            if not self.holds(candidate):
                break
            problem = candidate
            self.reductions += 1
        return problem


def shrink_problem(problem: ColoringProblem, predicate: Predicate, *,
                   max_probes: int = MAX_PROBES) -> ShrinkResult:
    """Minimize ``problem`` while ``predicate`` (failure reproduces)
    stays True.

    The caller guarantees ``predicate(problem)`` is True on entry; the
    result is 1-minimal with respect to the reduction operators (no
    single vertex, edge or color can be removed without losing the
    failure), barring the probe cap.
    """
    start = time.perf_counter()
    shrinker = _Shrinker(predicate, max_probes)
    with trace.span("qa.shrink", vertices=problem.num_vertices,
                    edges=problem.graph.num_edges) as span:
        current = problem
        while True:
            before = shrinker.reductions
            current = shrinker.ddmin_vertices(current)
            current = shrinker.drop_edges(current)
            current = shrinker.lower_colors(current)
            if shrinker.reductions == before:
                break
        span.set("final_vertices", current.num_vertices)
        span.set("probes", shrinker.probes)
        if obs_metrics.enabled():
            registry = obs_metrics.registry()
            registry.inc("qa.shrink_runs")
            registry.inc("qa.shrink_probes", shrinker.probes)
            registry.observe("qa.shrink_final_vertices",
                             current.num_vertices)
    return ShrinkResult(problem=current, probes=shrinker.probes,
                        reductions=shrinker.reductions,
                        wall_time=time.perf_counter() - start)


def minimal_members(signature: FailureSignature
                    ) -> Tuple[Tuple[str, str], ...]:
    """A representative subset of a signature's members to shrink
    against: for a status disagreement, one strategy per side; for
    everything else, the first offender.  Shrinking against a pair keeps
    every probe at two tiny solves."""
    if signature.kind == "status-disagreement":
        by_answer: Dict[str, Tuple[str, str]] = {}
        for label, answer in signature.members:
            by_answer.setdefault(answer, (label, answer))
        return tuple(sorted(by_answer.values(), key=lambda m: m[1]))
    return signature.members[:1]


def shrink_failure(problem: ColoringProblem,
                   strategies: Sequence[Strategy],
                   signature: FailureSignature, *,
                   limits=DEFAULT_SOLVE_LIMITS,
                   faults=None,
                   max_probes: int = MAX_PROBES
                   ) -> Tuple[ShrinkResult, FailureSignature]:
    """Minimize a differential failure found by
    :func:`~repro.qa.differential.run_differential`.

    Returns the shrink result and the *narrowed* signature (the
    representative strategy pair actually preserved), which is what the
    reproducer bundle records.
    """
    narrowed = FailureSignature(kind=signature.kind,
                                members=minimal_members(signature),
                                detail=signature.detail)
    involved = [strategy for strategy in strategies
                if strategy.label in set(narrowed.labels)]

    def predicate(candidate: ColoringProblem) -> bool:
        return recheck_failure(candidate, involved, narrowed,
                               limits=limits, faults=faults)

    if not predicate(problem):
        # The narrowed pair alone does not reproduce (e.g. an oracle
        # mismatch that needs the full member set): fall back to the
        # original signature.
        narrowed = signature
        involved = [strategy for strategy in strategies
                    if strategy.label in set(narrowed.labels)]
    return shrink_problem(problem, predicate, max_probes=max_probes), narrowed


@dataclass
class ReproducerBundle:
    """Everything needed to replay one minimized failure from disk."""

    name: str
    problem: ColoringProblem
    signature: FailureSignature
    seed: int
    instance_kind: str = ""
    faults: str = ""
    original_vertices: int = 0
    shrink_probes: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    def meta(self) -> Dict[str, object]:
        from ..coloring.dimacs import instance_digest
        return {
            "name": self.name,
            "seed": self.seed,
            "instance_kind": self.instance_kind,
            "num_vertices": self.problem.num_vertices,
            "num_edges": self.problem.graph.num_edges,
            "num_colors": self.problem.num_colors,
            # Content address of (instance, K) — the same hashing path
            # the serve cache keys on, so a bundle can be correlated
            # with cached/served results for the same instance.
            "digest": instance_digest(self.problem.graph,
                                      self.problem.num_colors),
            "signature": self.signature.to_dict(),
            "strategies": list(self.signature.labels),
            "faults": self.faults,
            "original_vertices": self.original_vertices,
            "shrink_probes": self.shrink_probes,
            **self.extra,
        }

    def write(self, directory: str) -> str:
        """Write the bundle under ``directory`` and return its path.

        Layout: ``<directory>/<name>/instance.col`` (byte-stable DIMACS)
        plus ``meta.json`` (sorted keys).  Idempotent: writing the same
        bundle twice produces identical bytes.
        """
        bundle_dir = os.path.join(directory, self.name)
        os.makedirs(bundle_dir, exist_ok=True)
        col_text = to_col_string(
            self.problem.graph,
            comments=[f"qa reproducer {self.name}",
                      f"color with K={self.problem.num_colors}",
                      f"signature: {self.signature.kind}"])
        with open(os.path.join(bundle_dir, "instance.col"), "w",
                  encoding="ascii") as handle:
            handle.write(col_text)
        with open(os.path.join(bundle_dir, "meta.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(self.meta(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return bundle_dir


def load_bundle(bundle_dir: str) -> Tuple[ColoringProblem, Dict[str, object]]:
    """Load a reproducer bundle back: (problem, metadata)."""
    from ..coloring.dimacs import parse_col_file
    with open(os.path.join(bundle_dir, "meta.json"), "r",
              encoding="utf-8") as handle:
        meta = json.load(handle)
    graph = parse_col_file(os.path.join(bundle_dir, "instance.col"))
    return ColoringProblem(graph, int(meta["num_colors"])), meta
