"""Metamorphic oracles: status-preserving and status-monotone transforms.

Differential testing needs at least two strategies to disagree; these
oracles catch bugs a *single* strategy exhibits, by checking known
relations between an instance and a transformed twin:

* **vertex relabeling** — permuting vertex ids is a graph isomorphism:
  the status must be identical (and a decoded coloring, pushed through
  the permutation, must stay proper);
* **color relabeling** — colors are anonymous: any permutation of a
  decoded coloring's colors must still validate (exercises the
  validator's symmetry, not the solver);
* **isolated vertex** — adding a degree-0 vertex never changes the
  status (K >= 1 always colors it);
* **edge removal** — deleting a constraint is a relaxation: SAT can
  never become UNSAT;
* **color increment** — raising K (one more track per channel, in
  routing terms) is a relaxation: routable can never become unroutable.

Every violated relation becomes a :class:`FailureSignature` with kind
``metamorphic``, shrinkable and bundleable like any differential
disagreement (the signature's answer slot names the violated oracle).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..coloring.problem import ColoringProblem, Graph
from ..core.pipeline import solve_coloring
from ..core.strategy import Strategy
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..sat.status import SolveLimits, SolveStatus
from .differential import DEFAULT_SOLVE_LIMITS, FailureSignature

#: Oracle names, in the order they are checked.
ORACLES = ("vertex-relabel", "color-relabel", "isolated-vertex",
           "edge-removal", "color-increment")


def relabel_vertices(problem: ColoringProblem,
                     permutation: Sequence[int]) -> ColoringProblem:
    """The isomorphic problem with vertex ``v`` renamed to
    ``permutation[v]``."""
    n = problem.num_vertices
    if sorted(permutation) != list(range(n)):
        raise ValueError("not a permutation of the vertex set")
    graph = Graph(n)
    for u, v in problem.graph.edges():
        graph.add_edge(permutation[u], permutation[v])
    names = None
    if problem.vertex_names is not None:
        names = [""] * n
        for old, new in enumerate(permutation):
            names[new] = problem.vertex_names[old]
    return ColoringProblem(graph, problem.num_colors, names)


def add_isolated_vertex(problem: ColoringProblem) -> ColoringProblem:
    graph = problem.graph.copy()
    graph.add_vertex()
    names = None
    if problem.vertex_names is not None:
        names = list(problem.vertex_names) + ["isolated"]
    return ColoringProblem(graph, problem.num_colors, names)


def remove_random_edge(problem: ColoringProblem,
                       rng: random.Random) -> Optional[ColoringProblem]:
    edges = sorted(problem.graph.edges())
    if not edges:
        return None
    drop = edges[rng.randrange(len(edges))]
    graph = Graph(problem.num_vertices)
    for edge in edges:
        if edge != drop:
            graph.add_edge(*edge)
    return ColoringProblem(graph, problem.num_colors, problem.vertex_names)


def increment_colors(problem: ColoringProblem) -> ColoringProblem:
    return problem.with_colors(problem.num_colors + 1)


@dataclass
class MetamorphicReport:
    """Outcome of one metamorphic session on one (instance, strategy)."""

    strategy: Strategy
    base_status: SolveStatus
    checked: List[str]
    violations: List[FailureSignature]

    @property
    def ok(self) -> bool:
        return not self.violations


def run_metamorphic(problem: ColoringProblem, strategy: Strategy, *,
                    seed: int = 0,
                    limits: Optional[SolveLimits] = DEFAULT_SOLVE_LIMITS,
                    faults=None) -> MetamorphicReport:
    """Check every applicable metamorphic oracle for one strategy.

    Transforms are seeded, so a violation found at ``seed`` replays.
    Undecided statuses (timeout / budget) void the relations that
    involve them; an ERROR status is reported by the differential
    checks, not here.
    """
    rng = random.Random(f"qa.metamorphic|{seed}")
    violations: List[FailureSignature] = []
    checked: List[str] = []

    def solve(candidate: ColoringProblem) -> SolveStatus:
        return solve_coloring(candidate, strategy, limits=limits,
                              faults=faults).status

    def violation(oracle: str, detail: str) -> None:
        violations.append(FailureSignature(
            kind="metamorphic", members=((strategy.label, oracle),),
            detail=detail))

    with trace.span("qa.metamorphic", strategy=strategy.label,
                    vertices=problem.num_vertices) as span:
        base = solve_coloring(problem, strategy, limits=limits,
                              faults=faults)
        if base.status.decided:
            _check_relabelings(problem, strategy, base, solve, rng,
                               checked, violation)
            checked.append("isolated-vertex")
            grown = solve(add_isolated_vertex(problem))
            if grown.decided and grown is not base.status:
                violation("isolated-vertex",
                          f"{base.status} became {grown} after adding an "
                          f"isolated vertex")
            if base.status is SolveStatus.SAT:
                relaxed_problem = remove_random_edge(problem, rng)
                if relaxed_problem is not None:
                    checked.append("edge-removal")
                    relaxed = solve(relaxed_problem)
                    if relaxed is SolveStatus.UNSAT:
                        violation("edge-removal",
                                  "removing an edge flipped SAT to UNSAT")
                checked.append("color-increment")
                wider = solve(increment_colors(problem))
                if wider is SolveStatus.UNSAT:
                    violation("color-increment",
                              f"SAT at K={problem.num_colors} but UNSAT "
                              f"at K={problem.num_colors + 1}")
        span.set("violations", len(violations))
        if violations and trace.enabled():
            for failure in violations:
                trace.event("qa.metamorphic.violation", detail=str(failure))
        if obs_metrics.enabled():
            registry = obs_metrics.registry()
            registry.inc("qa.metamorphic_runs")
            registry.inc("qa.metamorphic_checks", len(checked))
            registry.inc("qa.metamorphic_violations", len(violations))
    return MetamorphicReport(strategy=strategy, base_status=base.status,
                             checked=checked, violations=violations)


def _check_relabelings(problem: ColoringProblem, strategy: Strategy,
                       base, solve, rng: random.Random,
                       checked: List[str],
                       violation: Callable[[str, str], None]) -> None:
    """The two relabeling oracles (vertex isomorphism, color anonymity)."""
    if problem.num_vertices > 1:
        checked.append("vertex-relabel")
        permutation = list(range(problem.num_vertices))
        rng.shuffle(permutation)
        relabeled = relabel_vertices(problem, permutation)
        twin = solve(relabeled)
        if twin.decided and twin is not base.status:
            violation("vertex-relabel",
                      f"isomorphic instance answered {twin}, original "
                      f"answered {base.status}")
    if base.status is SolveStatus.SAT and base.coloring is not None \
            and problem.num_colors > 1:
        checked.append("color-relabel")
        colors = list(range(problem.num_colors))
        rng.shuffle(colors)
        recolored: Dict[int, int] = {v: colors[c]
                                     for v, c in base.coloring.items()}
        if not problem.is_valid_coloring(recolored):
            violation("color-relabel",
                      "a proper coloring became improper under a color "
                      "permutation")
