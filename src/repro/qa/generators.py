"""Seeded instance generators for the differential-testing harness.

Every generator is a pure function of its seed, so a fuzzing campaign
that found a disagreement at seed S reproduces it bit-for-bit from S —
the same discipline the chaos suite follows.  Three instance families:

* **random coloring graphs** — G(n, p) over a spread of densities and
  color budgets straddling the chromatic number (the near-critical
  region is where encoding bugs hide);
* **FPGA routing configs** — small synthetic circuits run through the
  real global router and the routing-to-coloring reduction, at channel
  widths bracketing the critical width (routable *and* provably
  unroutable configurations);
* **adversarial shapes** — cliques with chordal appendages, disconnected
  components, isolated vertices, and the K=1 / K>|V| extremes that
  exercise encoder edge cases rather than solver strength.

Instances stay tiny on purpose (≤ :data:`MAX_ORACLE_VERTICES` vertices
by default): the differential matrix multiplies every instance by dozens
of strategies, and graphs this small still reach every code path of the
encoders while keeping the brute-force oracle affordable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..coloring.brute import chromatic_number
from ..coloring.dimacs import to_col_string
from ..coloring.problem import ColoringProblem, Graph

#: Largest instance for which the brute-force oracle is consulted.
MAX_ORACLE_VERTICES = 10

#: Generator family names, in generation order.
INSTANCE_KINDS = ("random", "near-critical", "clique-chord",
                  "disconnected", "edge-case", "routing")


@dataclass
class QAInstance:
    """One generated test instance: a coloring problem plus provenance.

    ``expected`` is the ground-truth satisfiability when the generator
    knows it (via the brute-force oracle on tiny graphs, or by
    construction), else None — the differential harness then relies on
    cross-strategy agreement alone.
    """

    name: str
    kind: str
    problem: ColoringProblem
    seed: int
    expected: Optional[bool] = None
    notes: Dict[str, object] = field(default_factory=dict)

    @property
    def num_vertices(self) -> int:
        return self.problem.num_vertices

    @property
    def num_edges(self) -> int:
        return self.problem.graph.num_edges

    @property
    def num_colors(self) -> int:
        return self.problem.num_colors

    def to_col(self) -> str:
        """The instance graph in DIMACS ``.col`` format (byte-stable)."""
        return to_col_string(self.problem.graph,
                             comments=[f"qa instance {self.name}",
                                       f"kind {self.kind}, seed {self.seed}",
                                       f"color with K={self.num_colors}"])

    def __repr__(self) -> str:
        return (f"QAInstance({self.name!r}, kind={self.kind!r}, "
                f"n={self.num_vertices}, m={self.num_edges}, "
                f"K={self.num_colors})")


def _random_graph(rng: random.Random, num_vertices: int,
                  edge_probability: float) -> Graph:
    graph = Graph(num_vertices)
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def _oracle(graph: Graph, num_colors: int) -> Optional[bool]:
    """Ground truth for tiny graphs (None when too large to brute)."""
    if graph.num_vertices > MAX_ORACLE_VERTICES:
        return None
    if graph.num_vertices == 0:
        return True
    return chromatic_number(graph) <= num_colors


def random_instances(seed: int, count: int = 4,
                     max_vertices: int = 9) -> Iterator[QAInstance]:
    """G(n, p) instances over a density spread, K near the critical value."""
    rng = random.Random(f"qa.random|{seed}")
    for index in range(count):
        n = rng.randint(3, max_vertices)
        p = rng.choice((0.2, 0.4, 0.6, 0.8))
        graph = _random_graph(rng, n, p)
        chi = chromatic_number(graph) if n <= MAX_ORACLE_VERTICES else None
        if chi is not None and chi > 0:
            # Straddle the threshold: K ∈ {χ-1, χ, χ+1}, clipped to ≥1.
            k = max(1, chi + rng.choice((-1, 0, 1)))
        else:
            k = rng.randint(1, max(2, n // 2))
        yield QAInstance(name=f"random-{seed}-{index}", kind="random",
                        problem=ColoringProblem(graph, k), seed=seed,
                        expected=_oracle(graph, k),
                        notes={"p": p, "chi": chi})


def near_critical_instances(seed: int, count: int = 2) -> Iterator[QAInstance]:
    """Instances pinned exactly at and just below the chromatic number —
    the SAT/UNSAT boundary every encoding must place identically."""
    rng = random.Random(f"qa.critical|{seed}")
    for index in range(count):
        n = rng.randint(4, 8)
        graph = _random_graph(rng, n, 0.5)
        chi = chromatic_number(graph)
        for offset, verdict in ((0, True), (-1, False)):
            k = chi + offset
            if k < 1:
                continue
            yield QAInstance(
                name=f"critical-{seed}-{index}{'+' if offset == 0 else '-'}",
                kind="near-critical",
                problem=ColoringProblem(graph, k), seed=seed,
                expected=verdict, notes={"chi": chi})


def clique_chord_instances(seed: int, count: int = 2) -> Iterator[QAInstance]:
    """A clique core with chordal appendages hanging off it.

    The clique pins the chromatic number; the appendages add the
    low-degree structure symmetry heuristics reorder, so b1/s1 sequences
    differ meaningfully from the vertex numbering.
    """
    rng = random.Random(f"qa.clique|{seed}")
    for index in range(count):
        core = rng.randint(3, 5)
        extra = rng.randint(1, 3)
        graph = Graph(core + extra)
        for u in range(core):
            for v in range(u + 1, core):
                graph.add_edge(u, v)
        for w in range(core, core + extra):
            # Attach each appendage vertex to a random 2-subset of the
            # clique (a chord path around the core).
            for u in rng.sample(range(core), 2):
                graph.add_edge(u, w)
        k = core + rng.choice((-1, 0))
        if k < 1:
            k = 1
        yield QAInstance(name=f"clique-{seed}-{index}", kind="clique-chord",
                        problem=ColoringProblem(graph, k), seed=seed,
                        expected=_oracle(graph, k),
                        notes={"core": core, "extra": extra})


def disconnected_instances(seed: int, count: int = 2) -> Iterator[QAInstance]:
    """Multiple components plus isolated vertices: the status is decided
    by the hardest component, and the isolated vertices exercise decode
    paths for unconstrained variable blocks."""
    rng = random.Random(f"qa.disconnected|{seed}")
    for index in range(count):
        parts: List[Graph] = []
        for _ in range(rng.randint(2, 3)):
            parts.append(_random_graph(rng, rng.randint(2, 4), 0.7))
        isolated = rng.randint(1, 2)
        total = sum(part.num_vertices for part in parts) + isolated
        graph = Graph(total)
        offset = 0
        for part in parts:
            for u, v in part.edges():
                graph.add_edge(offset + u, offset + v)
            offset += part.num_vertices
        chi = chromatic_number(graph)
        k = max(1, chi + rng.choice((-1, 0, 1)))
        yield QAInstance(name=f"disconnected-{seed}-{index}",
                        kind="disconnected",
                        problem=ColoringProblem(graph, k), seed=seed,
                        expected=_oracle(graph, k),
                        notes={"components": len(parts) + isolated})


def edge_case_instances(seed: int) -> Iterator[QAInstance]:
    """Encoder edge cases: K=1, K > |V|, single vertex, empty edge set."""
    rng = random.Random(f"qa.edge|{seed}")
    n = rng.randint(2, 5)
    graph = _random_graph(rng, n, 0.5)
    has_edges = graph.num_edges > 0
    yield QAInstance(name=f"edge-k1-{seed}", kind="edge-case",
                    problem=ColoringProblem(graph, 1), seed=seed,
                    expected=not has_edges)
    yield QAInstance(name=f"edge-kbig-{seed}", kind="edge-case",
                    problem=ColoringProblem(graph, n + rng.randint(1, 3)),
                    seed=seed, expected=True)
    yield QAInstance(name=f"edge-single-{seed}", kind="edge-case",
                    problem=ColoringProblem(Graph(1), rng.randint(1, 3)),
                    seed=seed, expected=True)
    yield QAInstance(name=f"edge-edgeless-{seed}", kind="edge-case",
                    problem=ColoringProblem(Graph(rng.randint(1, 4)), 1),
                    seed=seed, expected=True)


def routing_instances(seed: int, count: int = 1) -> Iterator[QAInstance]:
    """Real routing-to-coloring reductions at near-critical widths.

    A tiny synthetic circuit goes through the actual global router and
    conflict-graph construction; the channel width is then set at the
    conflict graph's chromatic number (routable by the paper's
    equivalence) and one below it (provably unroutable).
    """
    from ..fpga.generate import CircuitSpec, generate_netlist
    from ..fpga.global_route import route_netlist

    rng = random.Random(f"qa.routing|{seed}")
    for index in range(count):
        spec = CircuitSpec(name=f"qa{seed}-{index}",
                           cols=rng.randint(2, 3), rows=rng.randint(2, 3),
                           num_nets=rng.randint(3, 6),
                           seed=rng.randrange(1 << 30))
        routing = route_netlist(generate_netlist(spec))
        from ..fpga.detailed import build_routing_csp
        base = build_routing_csp(routing, 1)
        graph = base.problem.graph
        if graph.num_vertices == 0 or \
                graph.num_vertices > MAX_ORACLE_VERTICES:
            continue
        chi = max(1, chromatic_number(graph))
        for width, verdict in ((chi, True), (chi - 1, False)):
            if width < 1:
                continue
            yield QAInstance(
                name=f"routing-{seed}-{index}-w{width}", kind="routing",
                problem=base.problem.with_colors(width), seed=seed,
                expected=verdict,
                notes={"circuit": spec.name, "width": width,
                       "critical_width": chi})


def conflict_instances(seed: int, count: int = 3, *,
                       num_vertices: int = 26,
                       edge_probability: float = 0.35,
                       clique_size: Optional[int] = None
                       ) -> Iterator[QAInstance]:
    """Conflict-heavy UNSAT coloring instances, hard by construction.

    Each instance plants a hidden ``(K+1)``-clique on a random vertex
    subset and overlays ``G(n, p)`` noise edges, then asks for a
    ``K``-coloring — unsatisfiable *by construction* (no brute-force
    oracle needed, so these can be far larger than the
    :data:`MAX_ORACLE_VERTICES` differential instances).  Refuting them
    forces the solver deep into clause learning: the clique is buried
    in noise, so the search has to rediscover it through conflicts —
    exactly the analysis/reduction-dominated regime the conflict-heavy
    benchmark suite (:mod:`repro.bench.throughput`) measures, as
    opposed to the propagation-dominated BCP stress suites.

    Not part of :func:`generate_instances`: the differential matrix
    multiplies every instance by dozens of strategies, and these are
    deliberately too hard for that.
    """
    rng = random.Random(f"qa.conflict|{seed}")
    for index in range(count):
        core = clique_size if clique_size is not None \
            else rng.randint(5, 6)
        graph = _random_graph(rng, num_vertices, edge_probability)
        members = rng.sample(range(num_vertices), core)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                graph.add_edge(u, v)
        k = core - 1  # one color short of the planted clique
        yield QAInstance(
            name=f"conflict-{seed}-{index}", kind="conflict",
            problem=ColoringProblem(graph, k), seed=seed,
            expected=False,
            notes={"clique": core, "p": edge_probability})


def generate_instances(seed: int, *,
                       include_routing: bool = True) -> List[QAInstance]:
    """The full deterministic instance batch for one fuzzing seed."""
    instances: List[QAInstance] = []
    instances.extend(random_instances(seed))
    instances.extend(near_critical_instances(seed))
    instances.extend(clique_chord_instances(seed))
    instances.extend(disconnected_instances(seed))
    instances.extend(edge_case_instances(seed))
    if include_routing:
        instances.extend(routing_instances(seed))
    return instances
