"""Concurrent batch execution of solve jobs (instances × strategies).

The sequential :func:`repro.bench.sweep` times one strategy at a time for
paper-faithful measurements; this module is the throughput-oriented
counterpart for *surveying* a benchmark family: run every (instance,
strategy) pair over a bounded worker pool, each job under its own budget
and deadline, and come back with a complete status table even when some
jobs time out, crash, or the whole batch is cancelled midway.

Guarantees:

* **Per-job deadlines** — ``job_timeout`` becomes each job's
  ``wall_clock_limit``; a job that overruns is first asked to stop via
  its :class:`CancelToken` (so it reports TIMEOUT with partial stats)
  and hard-terminated only if it ignores the token past a grace period.
* **Retry on crash** — a worker that dies without reporting (segfault,
  OOM kill) is retried up to ``max_attempts`` times; only then is the
  job recorded as ERROR.
* **Graceful partial results** — a batch deadline or an external cancel
  token stops scheduling, winds down running jobs cooperatively, and
  returns everything finished so far, with unstarted jobs listed in
  ``pending`` and ``cancelled=True``.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..coloring.problem import ColoringProblem
from ..core.pipeline import ColoringOutcome, solve_coloring
from ..core.strategy import Strategy
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..sat.status import CancelToken, SolveLimits, SolveStatus

def _unpack(item):
    """Unpack a result-queue item: ``(key, outcome, error)`` from
    historical senders (test doubles), plus the telemetry slot the
    current workers append."""
    key, outcome, error = item[0], item[1], item[2]
    telemetry = item[3] if len(item) > 3 else None
    return key, outcome, error, telemetry


#: Queue-wait interval of the scheduler loop.
_POLL_SECONDS = 0.05

#: Grace given to a cancelled job to wind down and report before it is
#: hard-terminated (covers time spent outside the solver, e.g. encoding).
_CANCEL_GRACE_SECONDS = 2.0

#: Grace given to a dead worker's queue feeder to flush a final message.
_DRAIN_SECONDS = 0.5


@dataclass(frozen=True)
class BatchJob:
    """One unit of work: solve ``problem`` with ``strategy``."""

    instance: str
    problem: ColoringProblem
    strategy: Strategy
    graph_time: float = 0.0

    @property
    def key(self) -> Tuple[str, str]:
        return (self.instance, self.strategy.label)


@dataclass
class BatchJobResult:
    """Terminal record for one job: exactly one per non-pending job."""

    job: BatchJob
    status: SolveStatus
    outcome: Optional[ColoringOutcome]
    wall_time: float
    attempts: int = 1
    #: Failure detail when ``status`` is ERROR.
    error: Optional[str] = None
    #: Audit report of the final attempt's answer (``audit=True`` runs
    #: only; an :class:`repro.reliability.audit.AuditReport`).
    audit: Optional[object] = None
    #: BCP engine of the final attempt — "legacy" when the scheduler
    #: fell back from a failing "arena" run.
    engine: str = "arena"

    @property
    def key(self) -> Tuple[str, str]:
        return self.job.key


@dataclass
class BatchResult:
    """Everything a batch produced, however it ended."""

    results: List[BatchJobResult]
    #: Jobs never started (batch deadline or cancellation hit first).
    pending: List[BatchJob] = field(default_factory=list)
    #: True when the batch stopped early (deadline or cancel token).
    cancelled: bool = False
    wall_time: float = 0.0
    #: Per-strategy health snapshot (offences, successes, backoff) from
    #: the quarantine tracker, by strategy label.
    quarantine: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.by_key: Dict[Tuple[str, str], BatchJobResult] = {
            r.key: r for r in self.results}

    def outcome(self, instance: str, strategy: Strategy) -> ColoringOutcome:
        result = self.by_key[(instance, strategy.label)]
        if result.outcome is None:
            raise KeyError(f"job {result.key} produced no outcome "
                           f"(status {result.status})")
        return result.outcome

    def status_counts(self) -> Dict[SolveStatus, int]:
        counts: Dict[SolveStatus, int] = {}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    @property
    def complete(self) -> bool:
        """True when every job ran to a decided answer."""
        return not self.pending and all(r.status.decided
                                        for r in self.results)


def _batch_worker(job: BatchJob, queue: "mp.Queue", cancel_event,
                  limits: Optional[SolveLimits], strategy=None,
                  faults=None, audit: bool = False) -> None:
    strategy = strategy if strategy is not None else job.strategy
    # Fresh observability state for this process (fork inherits the
    # parent's buffers); spans and metrics travel back on the queue.
    obs.worker_begin()
    try:
        from ..core.portfolio import _worker_injector
        injector = _worker_injector(faults, strategy)
        if injector is not None:
            injector.maybe_exit()
            injector.maybe_hang()
        cancel = CancelToken(cancel_event) if cancel_event is not None else None
        # Reliability kwargs only when they deviate from the defaults,
        # so test doubles with the historical signature keep working.
        kwargs = {}
        if faults is not None:
            kwargs["faults"] = faults
        if audit:
            kwargs.update(keep_model=True, proof_log=True)
        outcome = solve_coloring(job.problem, strategy,
                                 graph_time=job.graph_time,
                                 limits=limits, cancel=cancel, **kwargs)
        queue.put((job.key, outcome, None, obs.drain_telemetry()))
    except Exception as error:  # report, never hang the scheduler
        queue.put((job.key, None, repr(error), obs.drain_telemetry()))


class _Running:
    """Scheduler-side state of one in-flight job."""

    __slots__ = ("job", "process", "cancel_event", "started",
                 "deadline", "hard_deadline", "attempt", "strategy")

    def __init__(self, job: BatchJob, process: "mp.Process", cancel_event,
                 started: float, deadline: Optional[float],
                 attempt: int, strategy: Strategy) -> None:
        self.job = job
        self.process = process
        self.cancel_event = cancel_event
        self.started = started
        self.deadline = deadline
        self.hard_deadline: Optional[float] = None
        self.attempt = attempt
        #: Strategy actually run this attempt — differs from
        #: ``job.strategy`` after an engine fallback; results stay keyed
        #: by the original ``job.key``.
        self.strategy = strategy


class _Waiting:
    """Scheduler-side state of one not-yet-launched (or requeued) job."""

    __slots__ = ("job", "attempt", "strategy", "not_before")

    def __init__(self, job: BatchJob, attempt: int = 1,
                 strategy: Optional[Strategy] = None,
                 not_before: float = 0.0) -> None:
        self.job = job
        self.attempt = attempt
        self.strategy = strategy if strategy is not None else job.strategy
        #: Monotonic timestamp before which this entry may not launch
        #: (quarantine backoff of its strategy).
        self.not_before = not_before


def jobs_for(instances: Sequence, strategies: Sequence[Strategy],
             ) -> List[BatchJob]:
    """Cross product of prepared benchmark instances × strategies.

    Accepts :class:`repro.bench.BenchmarkInstance` objects (uses their
    prepared CSP) — the usual way to feed :func:`run_batch`.
    """
    jobs = []
    for instance in instances:
        for strategy in strategies:
            jobs.append(BatchJob(instance=instance.name,
                                 problem=instance.csp.problem,
                                 strategy=strategy,
                                 graph_time=instance.csp.build_time))
    return jobs


def _dedup_jobs(jobs: Sequence[BatchJob], limits: Optional[SolveLimits],
                job_timeout: Optional[float]):
    """Collapse identical jobs to one dispatch each.

    Two jobs are identical when their ``repro.api`` content addresses
    agree — :meth:`SolveRequest.cache_key` over (canonical graph bytes,
    colors, strategy, limits) — which catches duplicates the
    ``(instance, label)`` key cannot: the same graph submitted under
    two instance names used to be solved twice.  Returns
    ``(primaries, fanout)`` where ``fanout`` maps a primary job's
    ``id()`` to the duplicate jobs whose results are cloned from it
    after the run.
    """
    from ..api import SolveRequest  # lazy: repro.api imports this module
    effective = (limits or SolveLimits()).with_wall_clock(job_timeout)
    seen: Dict[str, BatchJob] = {}
    primaries: List[BatchJob] = []
    fanout: Dict[int, List[BatchJob]] = {}
    for job in jobs:
        try:
            digest = SolveRequest(graph=job.problem.graph,
                                  colors=job.problem.num_colors,
                                  strategies=(job.strategy,),
                                  limits=effective).cache_key()
        except Exception:
            # Unaddressable job (e.g. a test double without a real
            # graph): dispatch it as-is rather than refuse the batch.
            primaries.append(job)
            continue
        primary = seen.get(digest)
        if primary is None:
            seen[digest] = job
            primaries.append(job)
        else:
            fanout.setdefault(id(primary), []).append(job)
    return primaries, fanout


def run_batch(jobs: Sequence[BatchJob],
              max_workers: Optional[int] = None,
              job_timeout: Optional[float] = None,
              limits: Optional[SolveLimits] = None,
              max_attempts: int = 2,
              timeout: Optional[float] = None,
              cancel: Optional[CancelToken] = None,
              audit: bool = False, faults=None,
              quarantine=None,
              engine_fallback: bool = True,
              dedup: bool = True) -> BatchResult:
    """Run every job over a worker pool; always returns a full table.

    ``job_timeout`` bounds each job's wall clock (merged into
    ``limits``); ``timeout`` bounds the whole batch; ``cancel`` lets a
    caller stop the batch from outside.  ``max_attempts`` caps retries
    for jobs that fail — workers that die without reporting as well as
    jobs that end with status ERROR (a crash degraded by the pipeline,
    or an answer that failed its audit).  No exception escapes a job:
    every job ends as a :class:`BatchJobResult` or in ``pending``.

    Reliability controls:

    * ``audit=True`` re-verifies every decided answer in the scheduler
      (:func:`repro.reliability.audit.audit_outcome`); an answer that
      fails audit counts as ERROR and is retried, never silently kept.
    * ``faults`` injects faults into the workers (None = the
      ``REPRO_FAULTS`` environment plan only; a ``FaultPlan`` is used
      as given; ``False`` disables injection).
    * ``quarantine`` is a
      :class:`repro.reliability.quarantine.QuarantinePolicy` (None =
      defaults): a strategy whose jobs repeatedly crash or fail audit
      sits out with capped exponential backoff before its next retry.
    * ``engine_fallback`` retries a failed ``engine="arena"`` job on
      ``engine="legacy"`` (same search trajectory, independent BCP
      implementation), so an arena-specific fault cannot sink a job
      that the legacy engine can still answer.

    ``dedup=True`` (the default) collapses content-identical jobs —
    same canonical graph, colors, strategy and limits by
    :meth:`repro.api.SolveRequest.cache_key` — to a single dispatch and
    fans its result back out to every duplicate, so a corpus with
    repeated instances no longer pays for redundant solves.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be at least 1")
    if max_workers is None:
        max_workers = max(1, (mp.cpu_count() or 2) - 1)
    if max_workers < 1:
        raise ValueError("max_workers must be at least 1")
    fanout: Dict[int, List[BatchJob]] = {}
    duplicates = 0
    if dedup and len(jobs) > 1:
        jobs, fanout = _dedup_jobs(jobs, limits, job_timeout)
        duplicates = sum(len(dupes) for dupes in fanout.values())
    with trace.span("batch.run", jobs=len(jobs), workers=max_workers,
                    audit=audit, deduped=duplicates) as batch_span:
        result = _run_batch_in_span(
            batch_span, jobs, max_workers, job_timeout, limits,
            max_attempts, timeout, cancel, audit, faults, quarantine,
            engine_fallback)
        if fanout:
            _fan_out_duplicates(result, fanout)
        batch_span.set("settled", len(result.results))
        batch_span.set("cancelled", result.cancelled)
        if obs_metrics.enabled():
            registry = obs_metrics.registry()
            registry.inc("batch.runs")
            registry.inc("batch.jobs", len(result.results))
            registry.inc("batch.jobs_pending", len(result.pending))
            if duplicates:
                registry.inc("batch.deduped", duplicates)
            for status, count in result.status_counts().items():
                registry.inc(f"batch.status.{status}", count)
            registry.observe("batch.wall_time", result.wall_time)
        return result


def _fan_out_duplicates(result: BatchResult,
                        fanout: Dict[int, List[BatchJob]]) -> None:
    """Clone each primary's result/pending entry for its duplicates, so
    callers see one record per *submitted* job, dispatched or not."""
    cloned: List[BatchJobResult] = []
    for primary in result.results:
        for dup in fanout.get(id(primary.job), ()):
            cloned.append(BatchJobResult(
                job=dup, status=primary.status, outcome=primary.outcome,
                wall_time=primary.wall_time, attempts=primary.attempts,
                error=primary.error, audit=primary.audit,
                engine=primary.engine))
    if cloned:
        trace.event("batch.fanout", duplicates=len(cloned))
    result.results.extend(cloned)
    extra_pending: List[BatchJob] = []
    for job in result.pending:
        extra_pending.extend(fanout.get(id(job), ()))
    result.pending.extend(extra_pending)
    result.by_key = {r.key: r for r in result.results}


def _run_batch_in_span(batch_span, jobs: Sequence[BatchJob],
                       max_workers: int, job_timeout: Optional[float],
                       limits: Optional[SolveLimits], max_attempts: int,
                       timeout: Optional[float],
                       cancel: Optional[CancelToken], audit: bool, faults,
                       quarantine, engine_fallback: bool) -> BatchResult:
    """:func:`run_batch` scheduler loop, inside its already-open span.

    Job lifecycle transitions — launch, settle, retry/requeue (with
    backoff and engine fallback), per-job deadline kills, unreported
    worker deaths and batch-level cancellation — become span events, and
    the telemetry each worker ships back (span tree + metrics snapshot)
    is grafted under this span.
    """
    from ..reliability.quarantine import QuarantineTracker
    tracker = QuarantineTracker(quarantine)
    job_limits = (limits or SolveLimits()).with_wall_clock(job_timeout)
    context = mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                             else "spawn")
    result_queue: "mp.Queue" = context.Queue()
    start = time.perf_counter()
    batch_deadline = None if timeout is None else start + timeout

    waiting: List[_Waiting] = [_Waiting(job) for job in jobs]
    waiting.reverse()  # pop() from the end preserves submission order
    running: Dict[Tuple[str, str], _Running] = {}
    results: List[BatchJobResult] = []
    stopping = False

    def _launch(pending_entry: _Waiting) -> None:
        job = pending_entry.job
        cancel_event = context.Event()
        process = context.Process(
            target=_batch_worker,
            args=(job, result_queue, cancel_event, job_limits,
                  pending_entry.strategy, faults, audit),
            daemon=True)
        now = time.perf_counter()
        deadline = None if job_timeout is None else now + job_timeout
        running[job.key] = _Running(job, process, cancel_event, now,
                                    deadline, pending_entry.attempt,
                                    pending_entry.strategy)
        process.start()
        trace.event("job.launched", instance=job.instance,
                    strategy=pending_entry.strategy.label,
                    engine=pending_entry.strategy.engine,
                    attempt=pending_entry.attempt)

    def _settle(entry: _Running, outcome: Optional[ColoringOutcome],
                error: Optional[str],
                forced_status: Optional[SolveStatus] = None,
                audit_report=None) -> None:
        wall = time.perf_counter() - entry.started
        if forced_status is not None:
            status = forced_status
        elif error is not None:
            status = SolveStatus.ERROR
        else:
            status = outcome.status
        results.append(BatchJobResult(job=entry.job, status=status,
                                      outcome=outcome, wall_time=wall,
                                      attempts=entry.attempt, error=error,
                                      audit=audit_report,
                                      engine=entry.strategy.engine))
        del running[entry.job.key]
        trace.event("job.settled", instance=entry.job.instance,
                    strategy=entry.job.strategy.label, status=str(status),
                    attempts=entry.attempt,
                    **({"error": error} if error else {}))

    def _requeue(entry: _Running) -> None:
        """Put a failed attempt back on the queue: possibly on the
        fallback engine, and not before its quarantine backoff ends."""
        strategy = entry.strategy
        if engine_fallback and strategy.engine == "arena":
            strategy = strategy.with_engine("legacy")
        not_before = tracker.release_time(entry.job.strategy.label)
        waiting.insert(0, _Waiting(
            entry.job, entry.attempt + 1, strategy,
            not_before=not_before))
        del running[entry.job.key]
        trace.event("job.requeued", instance=entry.job.instance,
                    strategy=entry.job.strategy.label,
                    next_attempt=entry.attempt + 1, engine=strategy.engine,
                    backoff=round(max(0.0, not_before - time.perf_counter()),
                                  3))
        if obs_metrics.enabled():
            obs_metrics.registry().inc("batch.retries")

    def _report(entry: _Running, outcome: Optional[ColoringOutcome],
                error: Optional[str]) -> None:
        """Consume one worker report: audit it, then settle or retry."""
        status = SolveStatus.ERROR if error is not None else outcome.status
        audit_report = None
        if audit and error is None and outcome.status.decided:
            from ..reliability.audit import audit_outcome
            audit_report = audit_outcome(entry.job.problem, outcome)
            if audit_report.failed:
                status = SolveStatus.ERROR
                error = "audit failed: " + "; ".join(
                    f"{check.name} ({check.detail})"
                    for check in audit_report.failures)
        if status is SolveStatus.ERROR:
            detail = error
            if detail is None:
                detail = str(outcome.solver_stats.get(
                    "stop_reason", "")) or "job failed"
            tracker.record_offence(entry.job.strategy.label, detail,
                                   time.perf_counter())
            if entry.attempt < max_attempts and not stopping:
                _requeue(entry)
            else:
                _settle(entry, outcome, detail, audit_report=audit_report)
            return
        if status.decided:
            tracker.record_success(entry.job.strategy.label)
        _settle(entry, outcome, error, audit_report=audit_report)

    try:
        while running or (waiting and not stopping):
            now = time.perf_counter()
            externally_stopped = (
                (batch_deadline is not None and now >= batch_deadline)
                or (cancel is not None and cancel.cancelled))
            if externally_stopped and not stopping:
                # Stop scheduling; ask every running job to wind down.
                stopping = True
                trace.event("batch.stopping",
                            reason=("deadline" if batch_deadline is not None
                                    and now >= batch_deadline else "cancel"),
                            running=len(running), waiting=len(waiting))
                for entry in running.values():
                    entry.cancel_event.set()
                    if entry.hard_deadline is None:
                        entry.hard_deadline = now + _CANCEL_GRACE_SECONDS
            while waiting and not stopping and len(running) < max_workers:
                # Scan back-to-front (submission order) for an entry
                # that is past its backoff and not quarantined.
                index = None
                for i in range(len(waiting) - 1, -1, -1):
                    candidate = waiting[i]
                    if candidate.not_before > now:
                        continue
                    if tracker.quarantined(candidate.job.strategy.label,
                                           now):
                        continue
                    index = i
                    break
                if index is None:
                    break
                _launch(waiting.pop(index))
            for entry in list(running.values()):
                if entry.deadline is not None and now >= entry.deadline \
                        and not entry.cancel_event.is_set():
                    # Per-job deadline: cooperative stop, then backstop.
                    entry.cancel_event.set()
                    entry.hard_deadline = now + _CANCEL_GRACE_SECONDS
                if entry.hard_deadline is not None \
                        and now >= entry.hard_deadline:
                    if entry.process.is_alive():
                        entry.process.terminate()
                        entry.process.join(timeout=5)
                        trace.event("job.terminated",
                                    instance=entry.job.instance,
                                    strategy=entry.job.strategy.label,
                                    reason="ignored cancel past grace")
                    _settle(entry, None, None,
                            forced_status=SolveStatus.TIMEOUT)
            if not running:
                if waiting and not stopping:
                    # Everything launchable is backoff-blocked: wait the
                    # poll interval out instead of spinning.
                    time.sleep(_POLL_SECONDS)
                continue
            try:
                key, outcome, error, telemetry = _unpack(
                    result_queue.get(timeout=_POLL_SECONDS))
            except queue_module.Empty:
                # A worker that died unreported can never answer: drain
                # its pipe once, then retry the job or record ERROR.
                for entry in list(running.values()):
                    if entry.process.is_alive():
                        continue
                    entry.process.join()
                    try:
                        key, outcome, error, telemetry = _unpack(
                            result_queue.get(timeout=_DRAIN_SECONDS))
                    except queue_module.Empty:
                        reason = (f"worker died without reporting "
                                  f"(exit code {entry.process.exitcode})")
                        trace.event("job.died", instance=entry.job.instance,
                                    strategy=entry.job.strategy.label,
                                    exit_code=entry.process.exitcode)
                        tracker.record_offence(entry.job.strategy.label,
                                               reason, time.perf_counter())
                        if entry.attempt < max_attempts and not stopping:
                            _requeue(entry)
                        else:
                            _settle(entry, None, reason)
                    else:
                        obs.ingest_telemetry(telemetry, batch_span.span_id)
                        if key in running:
                            _report(running[key], outcome, error)
                    break
                continue
            obs.ingest_telemetry(telemetry, batch_span.span_id)
            if key in running:  # late report after a hard kill: ignore
                _report(running[key], outcome, error)
    finally:
        for entry in running.values():
            entry.cancel_event.set()
        grace_until = time.perf_counter() + _CANCEL_GRACE_SECONDS
        for entry in running.values():
            remaining = grace_until - time.perf_counter()
            if remaining > 0:
                entry.process.join(timeout=remaining)
        for entry in list(running.values()):
            if entry.process.is_alive():
                entry.process.terminate()
                trace.event("job.terminated", instance=entry.job.instance,
                            strategy=entry.job.strategy.label,
                            reason="straggler after batch end")
            entry.process.join(timeout=5)
            _settle(entry, None, None, forced_status=SolveStatus.TIMEOUT)
        # Cancelled jobs that wound down cooperatively may still have
        # telemetry in the pipe: drain it so their spans are not lost.
        while True:
            try:
                _, _, _, telemetry = _unpack(result_queue.get_nowait())
            except queue_module.Empty:
                break
            obs.ingest_telemetry(telemetry, batch_span.span_id)

    pending = [entry.job for entry in reversed(waiting)]
    return BatchResult(results=results, pending=pending,
                       cancelled=stopping,
                       wall_time=time.perf_counter() - start,
                       quarantine=tracker.snapshot())
