"""Paper-style table rendering for the benchmark harness.

Formats results the way Table 2 does: one row per benchmark, one column
per (encoding, symmetry) strategy, a ``Total`` row, and a ``Speedup wrt
<reference>`` row, with the per-row minima marked.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_seconds(value: float) -> str:
    """Format a CPU time the way the paper prints them."""
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 100:
        return f"{value:.1f}"
    return f"{value:.2f}"


def format_speedup(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}x"
    if value >= 10:
        return f"{value:.1f}x"
    return f"{value:.2f}x"


def render_table(title: str,
                 row_names: Sequence[str],
                 column_names: Sequence[str],
                 cells: Mapping[str, Mapping[str, float]],
                 reference_column: Optional[str] = None,
                 mark_minimum: bool = True) -> str:
    """Render a timing table.

    ``cells[row][column]`` is a time in seconds.  When
    ``reference_column`` is given, a final row reports, per column, the
    speedup of that column's total over the reference column's total —
    exactly the paper's "Speedup wrt. muldirect w/o symmetry" row.
    """
    for row in row_names:
        for column in column_names:
            if column not in cells.get(row, {}):
                raise ValueError(f"missing cell ({row!r}, {column!r})")

    lines: List[str] = [title, "=" * len(title)]
    name_width = max(len("Benchmark"), len("Total"), len("Speedup"),
                     *(len(r) for r in row_names))
    widths = [max(len(c), 10) for c in column_names]

    def fmt_row(name: str, values: Sequence[str]) -> str:
        parts = [name.ljust(name_width)]
        parts += [value.rjust(width) for value, width in zip(values, widths)]
        return "  ".join(parts)

    lines.append(fmt_row("Benchmark", list(column_names)))
    lines.append("-" * len(lines[-1]))

    totals: Dict[str, float] = {column: 0.0 for column in column_names}
    for row in row_names:
        rendered = []
        row_cells = {column: cells[row][column] for column in column_names}
        minimum = min(row_cells.values()) if mark_minimum else None
        for column in column_names:
            value = row_cells[column]
            totals[column] += value
            text = format_seconds(value)
            if mark_minimum and value == minimum:
                text = "*" + text
            rendered.append(text)
        lines.append(fmt_row(row, rendered))

    lines.append("-" * len(lines[2]))
    total_values = [format_seconds(totals[column]) for column in column_names]
    if mark_minimum:
        best_total = min(totals.values())
        total_values = [("*" if totals[c] == best_total else "") +
                        format_seconds(totals[c]) for c in column_names]
    lines.append(fmt_row("Total", total_values))

    if reference_column is not None:
        if reference_column not in column_names:
            raise ValueError(f"reference column {reference_column!r} absent")
        reference_total = totals[reference_column]
        speedups = []
        for column in column_names:
            if totals[column] > 0:
                speedups.append(format_speedup(reference_total / totals[column]))
            else:
                speedups.append("inf")
        lines.append(fmt_row("Speedup", speedups))
    lines.append("(* = row minimum)")
    return "\n".join(lines)


#: Column order of :func:`clause_inventory` (and the tables built from it).
INVENTORY_FIELDS = ("vars/vertex", "aux vars/vertex", "structural/vertex",
                    "conflict clauses", "total vars", "total clauses")


def clause_inventory(encoded) -> Dict[str, int]:
    """Structural breakdown of one :class:`~repro.core.encodings.base.
    EncodedProblem`, generic across every registered encoding.

    Unlike Table 1's hand classification (which special-cases the three
    §2 schemes), this derives the split from the encoding artifact
    itself: variables a vertex's patterns never mention are auxiliaries
    (sequential/commander/bimander/product AMO variables, POP-H
    thresholds), per-vertex structural clauses cover at-least-one /
    at-most-one / ordering / channelling / exclusion alike, and
    everything else in the CNF is conflict clauses.
    """
    vertex = encoded.vertex_encoding
    pattern_vars = {abs(lit) for pattern in vertex.patterns
                    for lit in pattern}
    num_vertices = encoded.problem.num_vertices
    structural = len(vertex.clauses) * num_vertices
    return {
        "vars/vertex": vertex.num_vars,
        "aux vars/vertex": vertex.num_vars - (max(pattern_vars)
                                              if pattern_vars else 0),
        "structural/vertex": len(vertex.clauses),
        "conflict clauses": encoded.cnf.num_clauses - structural,
        "total vars": encoded.cnf.num_vars,
        "total clauses": encoded.cnf.num_clauses,
    }


def render_inventory_table(title: str,
                           inventories: Mapping[str, Mapping[str, int]]
                           ) -> str:
    """One row per encoding from :func:`clause_inventory` outputs."""
    header = ["Encoding"] + list(INVENTORY_FIELDS)
    rows = [[name] + [str(inventory[field]) for field in INVENTORY_FIELDS]
            for name, inventory in inventories.items()]
    return render_simple_table(title, header, rows)


def render_simple_table(title: str, header: Sequence[str],
                        rows: Sequence[Sequence[str]]) -> str:
    """Render a generic left-aligned text table."""
    widths = [len(h) for h in header]
    for row in rows:
        if len(row) != len(header):
            raise ValueError("row length does not match header")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-" * len(lines[-1]))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
