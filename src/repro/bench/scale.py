"""Distributed-solving scale bench: workers vs wall-clock, sharing vs racing.

Produces ``BENCH_scale.json``, the artifact behind two claims about
:mod:`repro.dist`:

1. **Worker scaling** — the hard-UNSAT suite solved through
   :func:`repro.dist.run_jobs` gets faster as workers are added.  This
   container has **one CPU**, so the speedup is *algorithmic*, not
   parallel: with ``workers > 1`` the facade routes each job through
   cube-and-conquer, and a refuted cube's learned clauses prune every
   later cube drawn by the same persistent worker solver — measured
   ~2× less total work on the cube-friendly instances.  On a real
   multi-core box the same policy additionally spreads the (already
   shortened) work across cores.
2. **Sharing beats racing** — a 2-member seed-diverse portfolio with
   clause sharing on refutes a hard instance faster than the identical
   portfolio racing uncooperatively, because the eventual winner
   imports the loser's short refutation clauses instead of rediscovering
   them.

The suite is deliberately curated: planted-clique instances whose
hardness survives s1 symmetry breaking (``num_vertices`` 60–70,
``edge_probability`` 0.55) *and* whose cube trees genuinely reduce work.
Cube-and-conquer is not a universal win — on cube-hostile instances of
the same family it can lose up to 2× (the per-instance table in the
payload keeps that honest); the facade's ``cube="auto"`` policy is a
bet that pays off on average over a corpus, which is what this bench
pins.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.portfolio import run_portfolio
from ..core.strategy import Strategy
from ..qa.generators import conflict_instances
from .batch import BatchJob
from .throughput import write_report

#: The bench strategy: the paper's strongest single configuration.
STRATEGY = Strategy(encoding="muldirect", symmetry="s1")

#: (generator seed, count, num_vertices, clique_size, picked indexes) —
#: the full suite keeps only instances whose hardness survives s1.
_FULL_SUITE = [
    (7, 1, 60, 10, (0,)),    # ~2s   mono: warm-up hard
    (21, 2, 66, 10, (1,)),   # ~6s   mono: cube-friendly
    (7, 2, 70, 11, (1,)),    # ~20s  mono: the heavy tail
]
_QUICK_SUITE = [
    (7, 3, 24, 5, (0, 1, 2)),  # milliseconds each: CI shape check
]

#: The sharing comparison instance (full mode): hard enough that the
#: ~200 exported clauses matter, short enough to race twice.
_SHARE_SPEC = (21, 2, 66, 10, 1)
_SHARE_SPEC_QUICK = (7, 1, 24, 5, 0)


def hard_unsat_suite(quick: bool = False) -> List[Tuple[str, object]]:
    """The suite as ``(name, ColoringProblem)`` pairs (all UNSAT by
    construction — a planted (K+1)-clique asked for K colors)."""
    out = []
    for seed, count, nv, cs, picked in (_QUICK_SUITE if quick
                                        else _FULL_SUITE):
        insts = list(conflict_instances(seed, count, num_vertices=nv,
                                        edge_probability=0.55 if not quick
                                        else 0.4, clique_size=cs))
        for index in picked:
            inst = insts[index]
            out.append((f"{inst.name}-n{nv}", inst.problem))
    return out


def _run_at_workers(jobs: Sequence[BatchJob], workers: int,
                    timeout: Optional[float]) -> Dict:
    from ..dist import run_jobs
    start = time.perf_counter()
    result = run_jobs(jobs, workers=workers, timeout=timeout)
    wall = time.perf_counter() - start
    statuses = {str(status): count
                for status, count in result.status_counts().items()}
    record = {
        "workers": workers,
        "wall_time": round(wall, 3),
        "jobs_per_second": round(len(result.results) / wall, 4) if wall
        else None,
        "statuses": statuses,
        "complete": result.complete,
        "per_job": [{"instance": r.job.instance,
                     "status": str(r.status),
                     "wall_time": round(r.wall_time, 3),
                     **({"cubes": r.outcome.solver_stats.get("cubes"),
                         "cubes_closed":
                         r.outcome.solver_stats.get("cubes_closed")}
                        if r.outcome is not None
                        and "cubes" in r.outcome.solver_stats else {})}
                    for r in result.results],
    }
    return record


def _sharing_comparison(quick: bool, timeout: Optional[float]) -> Dict:
    from ..dist import seed_diverse_members
    seed, count, nv, cs, index = (_SHARE_SPEC_QUICK if quick
                                  else _SHARE_SPEC)
    inst = list(conflict_instances(
        seed, count, num_vertices=nv,
        edge_probability=0.4 if quick else 0.55,
        clique_size=cs))[index]
    members = seed_diverse_members(STRATEGY, 2)
    rounds = {}
    for tag, share in (("racing", None), ("cooperative", True)):
        start = time.perf_counter()
        result = run_portfolio(inst.problem, members, timeout=timeout,
                               share=share)
        wall = time.perf_counter() - start
        stats = (result.outcome.solver_stats
                 if result.outcome is not None else {})
        rounds[tag] = {
            "status": str(result.status),
            "wall_time": round(wall, 3),
            "winner": result.winner.label if result.winner else None,
            "shared_exported": stats.get("shared_exported"),
            "shared_imported": stats.get("shared_imported"),
            "shared_discarded": stats.get("shared_discarded"),
        }
    racing, coop = rounds["racing"]["wall_time"], \
        rounds["cooperative"]["wall_time"]
    return {
        "instance": f"{inst.name}-n{nv}",
        "members": [m.label for m in members],
        **rounds,
        "sharing_speedup": round(racing / coop, 3) if coop else None,
    }


def run_scale_bench(quick: bool = False,
                    workers: Sequence[int] = (1, 2, 4),
                    timeout: Optional[float] = None) -> Dict:
    """The full bench: worker-scaling sweep plus the sharing duel."""
    suite = hard_unsat_suite(quick)
    jobs = [BatchJob(name, problem, STRATEGY) for name, problem in suite]
    scaling = []
    for count in workers:
        record = _run_at_workers(jobs, count, timeout)
        scaling.append(record)
        print(f"  workers={count}: {record['wall_time']}s "
              f"({record['jobs_per_second']} jobs/s) "
              f"{record['statuses']}", file=sys.stderr, flush=True)
    by_workers = {record["workers"]: record["wall_time"]
                  for record in scaling}
    speedup = None
    if 1 in by_workers and 4 in by_workers and by_workers[4]:
        speedup = round(by_workers[1] / by_workers[4], 3)
    sharing = _sharing_comparison(quick, timeout)
    sane = all(record["statuses"] == {"UNSAT": len(jobs)}
               for record in scaling) \
        and sharing["racing"]["status"] == "UNSAT" \
        and sharing["cooperative"]["status"] == "UNSAT"
    return {
        "bench": "dist-scale",
        "quick": quick,
        "strategy": STRATEGY.label,
        "suite": [name for name, _ in suite],
        "scaling": scaling,
        "headline_speedup_4v1": speedup,
        "sharing": sharing,
        "headline_sharing_speedup": sharing["sharing_speedup"],
        "sanity": "ok" if sane else "UNSOUND: a verdict drifted",
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry: ``python -m repro.bench.scale [--quick] [-o PATH]``."""
    import argparse
    parser = argparse.ArgumentParser(
        description="distributed-solving scale bench "
                    "(workers vs wall-clock, sharing vs racing)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny instances; shape check only, the "
                             "speedups are meaningless at this size")
    parser.add_argument("-o", "--output", default="BENCH_scale.json",
                        help="output JSON path (default BENCH_scale.json)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-phase wall-clock cap (default 600s)")
    args = parser.parse_args(argv)
    payload = run_scale_bench(quick=args.quick, timeout=args.timeout)
    try:
        write_report(args.output, payload)
    except OSError as error:
        print(f"error: cannot write {args.output}: {error}",
              file=sys.stderr)
        return 2
    print(f"suite: {', '.join(payload['suite'])}")
    print(f"headline speedup (4 workers over 1): "
          f"{payload['headline_speedup_4v1']}x")
    print(f"headline sharing speedup (cooperative over racing): "
          f"{payload['headline_sharing_speedup']}x "
          f"on {payload['sharing']['instance']}")
    print(f"sanity: {payload['sanity']}")
    print(f"wrote {args.output}")
    return 0 if payload["sanity"] == "ok" else 1


if __name__ == "__main__":
    sys.exit(main())
