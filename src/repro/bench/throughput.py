"""BCP throughput benchmark: arena engine vs the legacy baseline.

Measures raw unit-propagation speed of the CDCL engines
(:class:`~repro.sat.solver.cdcl.CDCLSolver`, the flat clause-arena engine
with blocker literals, and :class:`~repro.sat.solver.legacy.LegacyCDCLSolver`,
the pre-arena clause-object engine) *in the same process and the same run*,
so the reported speedup is an apples-to-apples before/after comparison.
The array-packed engine (``engine="packed"``) is also registered in
:data:`_ENGINES` for ad-hoc races, though the reported suites pit arena
against legacy (same trajectory) and arena against itself with
inprocessing + tiered reduction (the conflict suite).

Three instance families:

* **Stress suite** (the headline number) — synthetic BCP workloads built
  by :func:`bcp_stress`: a long implication chain ``x1 -> x2 -> ... -> xn``
  decorated with ``fanout`` already-satisfied side clauses per variable.
  Asserting ``x1`` triggers a full-chain propagation wave in which almost
  every watch-list entry is satisfied by its cached blocker literal
  (blocker hit rates of 0.94-0.97).  Zero decisions, zero conflicts: the
  run measures *pure BCP*, the path blocker literals exist to accelerate.
* **Context suite** — ordinary search workloads (pigeonhole, random
  3-SAT, an FPGA routing instance is deliberately excluded to keep the
  bench self-contained and fast).  Here conflict analysis and watch moves
  share the profile with skips, so the engines land close to parity; the
  numbers are reported so the headline cannot be mistaken for an
  end-to-end search speedup.
* **Conflict suite** — near-critical UNSAT coloring instances from
  :func:`repro.qa.generators.conflict_instances` (a hidden clique buried
  in noise, one color short), the analysis/reduction-dominated regime
  the BCP suites deliberately avoid.  This suite races the arena engine
  against *itself* with inprocessing and tier-based clause-DB reduction
  enabled, and reports a per-phase time split
  (propagate / analyze / reduce / inprocess) for both configurations —
  ``headline_conflict_speedup`` is where the inprocessing work pays off.

Timing methodology: the container's wall clock is noisy (identical code
can swing ~30% between runs), so each measurement uses
``time.process_time`` and takes the **minimum over ``repeats``
alternating runs** of each engine — the standard minimum-as-estimator
for best-case deterministic cost.  Engines run interleaved so slow
drifts hit both equally.
"""

from __future__ import annotations

import json
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import metrics as obs_metrics
from ..sat.cnf import CNF
from ..sat.solver.cdcl import CDCLSolver
from ..sat.solver.config import SolverConfig, preset
from ..sat.solver.legacy import LegacyCDCLSolver
from ..sat.solver.packed import PackedCDCLSolver


# ----------------------------------------------------------------------
# Instance generators
# ----------------------------------------------------------------------

def bcp_stress(num_vars: int, fanout: int, clause_len: int,
               seed: int = 0) -> CNF:
    """A propagation-dominated CNF: implication chain plus satisfied fanout.

    Clauses ``(-x_i v x_{i+1})`` chain every variable to the next, so
    asserting ``x1`` propagates the entire chain.  Each variable ``a``
    additionally gets ``fanout`` clauses ``(-a v b_1 v ... v b_{k-1})``
    whose body variables are all *smaller* than ``a`` — by the time the
    wave reaches ``a`` they are already true, so the watchers on ``-a``
    are satisfied and a fresh blocker literal skips them without touching
    the clause arena.  The formula is satisfiable with zero conflicts and
    zero decisions under ``solve(assumptions=[1])``.
    """
    rng = random.Random(seed)
    cnf = CNF(num_vars=num_vars)
    for i in range(1, num_vars):
        cnf.add_clause([-i, i + 1])
    for a in range(3, num_vars + 1):
        for _ in range(fanout):
            body = rng.sample(range(1, a), min(clause_len - 1, a - 1))
            cnf.add_clause([-a] + body)
    return cnf


def random_3sat(num_vars: int, num_clauses: int, seed: int) -> CNF:
    """A seeded uniform random 3-SAT formula."""
    rng = random.Random(seed)
    cnf = CNF(num_vars=num_vars)
    for _ in range(num_clauses):
        vs = rng.sample(range(1, num_vars + 1), 3)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in vs])
    return cnf


def pigeonhole(holes: int) -> CNF:
    """The classic PHP_{holes+1,holes} formula (UNSAT, conflict-heavy)."""
    cnf = CNF()
    var: Dict[Tuple[int, int], int] = {}
    for pigeon in range(holes + 1):
        for hole in range(holes):
            var[(pigeon, hole)] = cnf.new_var()
    for pigeon in range(holes + 1):
        cnf.add_clause([var[(pigeon, hole)] for hole in range(holes)])
    for hole in range(holes):
        for a in range(holes + 1):
            for b in range(a + 1, holes + 1):
                cnf.add_clause([-var[(a, hole)], -var[(b, hole)]])
    return cnf


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------

_ENGINES = {"arena": CDCLSolver, "legacy": LegacyCDCLSolver,
            "packed": PackedCDCLSolver}


def _stress_runner(cnf: CNF, config: SolverConfig, rounds: int):
    """Time ``rounds`` assumption-driven BCP waves on one solver."""
    solver = _ENGINES[config.engine](cnf.copy(), config)
    start = time.process_time()
    for _ in range(rounds):
        solver.solve(assumptions=[1])
    return time.process_time() - start, solver


def _search_runner(cnf: CNF, config: SolverConfig, rounds: int):
    """Time a full (possibly budget-capped) search from scratch."""
    elapsed = 0.0
    solver = None
    for _ in range(rounds):
        solver = _ENGINES[config.engine](cnf.copy(), config)
        start = time.process_time()
        try:
            solver.solve()
        except Exception:  # budget exceeded still yields valid stats
            pass
        elapsed += time.process_time() - start
    return elapsed, solver


def measure_instance(name: str, cnf: CNF, *, runner: Callable,
                     rounds: int, repeats: int,
                     preset_name: str = "minisat_like",
                     max_conflicts: Optional[int] = None) -> Dict:
    """Benchmark both engines on one CNF; min-over-``repeats`` timing.

    Returns a per-instance record with both engines' propagation counts,
    times, props/sec and the arena speedup (legacy time / arena time).
    """
    results: Dict[str, Dict] = {}
    times = {"arena": [], "legacy": []}
    solvers: Dict[str, object] = {}
    for _ in range(max(1, repeats)):
        for engine in ("arena", "legacy"):  # interleaved: drift hits both
            overrides = {"engine": engine}
            if max_conflicts is not None:
                overrides["max_conflicts"] = max_conflicts
            config = preset(preset_name, **overrides)
            elapsed, solver = runner(cnf, config, rounds)
            times[engine].append(elapsed)
            solvers[engine] = solver
    for engine in ("arena", "legacy"):
        stats = solvers[engine].stats
        best = min(times[engine])
        props = int(stats["propagations"])
        record = {
            "time": round(best, 6),
            "propagations": props,
            "props_per_sec": round(props / best) if best > 0 else None,
            "decisions": int(stats["decisions"]),
            "conflicts": int(stats["conflicts"]),
        }
        if engine == "arena":
            inspections = int(stats["watch_inspections"])
            record["watch_inspections"] = inspections
            record["blocker_hits"] = int(stats["blocker_hits"])
            record["blocker_hit_rate"] = round(
                stats["blocker_hits"] / inspections, 4) if inspections else None
        results[engine] = record
    arena_t, legacy_t = results["arena"]["time"], results["legacy"]["time"]
    sanity = ("identical trajectories"
              if all(results["arena"][k] == results["legacy"][k]
                     for k in ("propagations", "decisions", "conflicts"))
              else "TRAJECTORY MISMATCH")
    return {
        "name": name,
        "num_vars": cnf.num_vars,
        "num_clauses": len(cnf.clauses),
        "rounds": rounds,
        "arena": results["arena"],
        "legacy": results["legacy"],
        "speedup": round(legacy_t / arena_t, 3) if arena_t > 0 else None,
        "sanity": sanity,
    }


#: Phase-timing stat keys, in reporting order.
_PHASE_KEYS = ("time_propagate", "time_analyze", "time_reduce",
               "time_inprocess")

#: Inprocessing counters reported for the tuned configuration.
_INPROCESS_KEYS = ("inprocess_passes", "subsumed_clauses",
                   "strengthened_clauses", "vivified_clauses",
                   "eliminated_vars", "bve_resolvents")


def conflict_configs(seed: int = 1) -> Dict[str, SolverConfig]:
    """The two configurations the conflict suite races.

    ``baseline`` is the stock arena engine; ``tuned`` is the same engine
    with inter-restart inprocessing and tier-based clause-DB reduction
    — the configuration the ``arena+inprocess`` strategy engine maps to.
    Both carry ``phase_timing`` so the payload can show *where* the
    time went, not just how much.
    """
    return {
        "baseline": preset("minisat_like", seed=seed, phase_timing=True),
        "tuned": preset("minisat_like", seed=seed, phase_timing=True,
                        inprocessing=True, reduce_policy="tier"),
    }


def measure_conflict_instance(name: str, cnf: CNF, *,
                              repeats: int) -> Dict:
    """Race baseline vs tuned arena configs on one conflict-heavy CNF.

    Same methodology as :func:`measure_instance` (interleaved,
    min-over-repeats ``process_time``), plus a per-phase time split
    taken from each configuration's fastest run.
    """
    times: Dict[str, List[float]] = {"baseline": [], "tuned": []}
    solvers: Dict[str, object] = {}
    for _ in range(max(1, repeats)):
        for label, config in conflict_configs().items():
            solver = CDCLSolver(cnf.copy(), config)
            start = time.process_time()
            solver.solve()
            elapsed = time.process_time() - start
            if not times[label] or elapsed <= min(times[label]):
                solvers[label] = solver
            times[label].append(elapsed)
    results: Dict[str, Dict] = {}
    for label, solver in solvers.items():
        stats = solver.stats
        best = min(times[label])
        record = {
            "time": round(best, 6),
            "conflicts": int(stats["conflicts"]),
            "decisions": int(stats["decisions"]),
            "propagations": int(stats["propagations"]),
            "watch_inspections": int(stats["watch_inspections"]),
            "learned_clauses": int(stats["learned_clauses"]),
            "deleted_clauses": int(stats["deleted_clauses"]),
            "phase_split": {key[len("time_"):]: round(stats.get(key, 0.0), 6)
                            for key in _PHASE_KEYS},
        }
        if label == "tuned":
            record["inprocessing"] = {
                key: int(stats.get(key, 0)) for key in _INPROCESS_KEYS}
        results[label] = record
    base_t = results["baseline"]["time"]
    tuned_t = results["tuned"]["time"]
    return {
        "name": name,
        "num_vars": cnf.num_vars,
        "num_clauses": len(cnf.clauses),
        "baseline": results["baseline"],
        "tuned": results["tuned"],
        "speedup": round(base_t / tuned_t, 3) if tuned_t > 0 else None,
    }


def conflict_suite_instances(*, count: int = 4) -> List[Tuple[str, CNF]]:
    """The conflict-heavy suite: planted-clique UNSAT coloring CNFs.

    Deterministic (fixed generator seed), by-construction UNSAT, sized
    so the baseline spends a few seconds per instance in conflict
    analysis — large enough that clause-DB growth dominates, which is
    the regime tier reduction and inprocessing target.
    """
    from ..core.encodings.registry import get_encoding
    from ..qa.generators import conflict_instances
    encoding = get_encoding("muldirect")
    return [(inst.name, encoding.encode(inst.problem).cnf)
            for inst in conflict_instances(
                7, count=count, num_vertices=48,
                edge_probability=0.42, clique_size=8)]


# ----------------------------------------------------------------------
# Suites
# ----------------------------------------------------------------------

STRESS_SUITE = [
    # (name, num_vars, fanout, clause_len)
    ("chain-300x32", 300, 32, 6),
    ("chain-400x16", 400, 16, 6),
]

CONTEXT_SUITE = [
    ("php-7", lambda: pigeonhole(7), 8000),
    ("3sat-150", lambda: random_3sat(150, 630, 11), 6000),
]


def run_throughput_bench(*, repeats: int = 7, stress_rounds: int = 40,
                         include_context: bool = True,
                         context_repeats: int = 2,
                         include_conflict: bool = True,
                         conflict_count: int = 4,
                         conflict_repeats: int = 2) -> Dict:
    """Run the full bench and return the BENCH_solver.json payload.

    The metrics registry is enabled for the duration of the run and its
    snapshot is embedded in the payload under ``"metrics"`` — the
    aggregate solver counters (``solver.propagations``,
    ``solver.watch_inspections``, ``solver.blocker_hits``, …) across
    every engine and instance of the bench, in the same shape ``repro
    metrics`` renders.  The per-solve hooks fire only at ``_finish``,
    outside the propagation loop, so the timed waves are untouched.
    """
    obs_metrics.registry().reset()
    previously_enabled = obs_metrics.enabled()
    obs_metrics.enable()
    try:
        payload = _run_throughput_bench(
            repeats=repeats, stress_rounds=stress_rounds,
            include_context=include_context,
            context_repeats=context_repeats,
            include_conflict=include_conflict,
            conflict_count=conflict_count,
            conflict_repeats=conflict_repeats)
        registry = obs_metrics.registry()
        registry.set_gauge("bench.headline_bcp_speedup",
                           payload["headline_bcp_speedup"])
        if "headline_conflict_speedup" in payload:
            registry.set_gauge("bench.headline_conflict_speedup",
                               payload["headline_conflict_speedup"])
        payload["metrics"] = registry.snapshot()
        return payload
    finally:
        obs_metrics.enable(previously_enabled)


def _run_throughput_bench(*, repeats: int, stress_rounds: int,
                          include_context: bool, context_repeats: int,
                          include_conflict: bool, conflict_count: int,
                          conflict_repeats: int) -> Dict:
    stress = [
        measure_instance(
            name, bcp_stress(nv, fanout, clause_len),
            runner=_stress_runner, rounds=stress_rounds, repeats=repeats)
        for name, nv, fanout, clause_len in STRESS_SUITE
    ]
    arena_time = sum(r["arena"]["time"] for r in stress)
    legacy_time = sum(r["legacy"]["time"] for r in stress)
    payload: Dict = {
        "benchmark": "solver BCP throughput (arena vs legacy engine)",
        "methodology": (
            "both engines measured in the same process on the same CNFs, "
            "interleaved; per-engine time is the minimum of "
            f"{repeats} process_time runs (noise-robust best-case cost); "
            "the headline speedup is total legacy time / total arena time "
            "over the propagation-only stress suite"),
        "preset": "minisat_like",
        "stress_suite": stress,
        "headline_bcp_speedup": round(legacy_time / arena_time, 3),
        # propagations accumulate across rounds inside one solver, so
        # sum(propagations)/time is the true aggregate rate per engine.
        "stress_arena_props_per_sec": round(
            sum(r["arena"]["propagations"] for r in stress)
            / arena_time) if arena_time else None,
        "stress_legacy_props_per_sec": round(
            sum(r["legacy"]["propagations"] for r in stress)
            / legacy_time) if legacy_time else None,
    }
    if include_context:
        payload["context_suite"] = [
            measure_instance(
                name, make(), runner=_search_runner, rounds=1,
                repeats=context_repeats, max_conflicts=budget)
            for name, make, budget in CONTEXT_SUITE
        ]
        payload["context_note"] = (
            "conflict-heavy search workloads where analysis and watch "
            "moves dominate; engines are expected near parity here")
    if include_conflict:
        conflict = [
            measure_conflict_instance(name, cnf, repeats=conflict_repeats)
            for name, cnf in conflict_suite_instances(count=conflict_count)
        ]
        base_time = sum(r["baseline"]["time"] for r in conflict)
        tuned_time = sum(r["tuned"]["time"] for r in conflict)
        payload["conflict_suite"] = conflict
        payload["headline_conflict_speedup"] = round(
            base_time / tuned_time, 3) if tuned_time else None
        payload["conflict_note"] = (
            "planted-clique UNSAT coloring instances (muldirect "
            "encoding): arena baseline vs arena with inprocessing + "
            "tier reduction; both trajectories legitimately differ, so "
            "the speedup is end-to-end refutation time, with phase "
            "splits showing where it comes from")
    return payload


def write_report(path: str, payload: Dict) -> None:
    """Write the payload as pretty JSON (the BENCH_solver.json artifact)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def check_floor(payload: Dict, floor_path: str, *,
                slack: float = 0.75) -> List[str]:
    """Compare the run against a checked-in performance floor.

    The floor file pins minimum acceptable throughput figures (see
    ``benchmarks/floor.json``); a measurement below ``slack`` of its
    floor — i.e. a regression of more than ``1 - slack`` — fails.  The
    generous slack absorbs machine-to-machine and CI-runner variance
    while still catching order-of-magnitude regressions.  Returns a
    list of failure messages (empty = pass).
    """
    with open(floor_path, "r", encoding="utf-8") as handle:
        floors = json.load(handle)
    failures = []
    for key, floor in floors.items():
        if key.startswith("_"):
            continue  # comment keys
        value = payload.get(key)
        if value is None:
            failures.append(f"{key}: missing from bench payload")
            continue
        if value < floor * slack:
            failures.append(
                f"{key}: {value} < {slack:.0%} of floor {floor}")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry: ``python -m repro.bench.throughput [--quick] [-o PATH]``."""
    import argparse
    parser = argparse.ArgumentParser(
        description="BCP throughput bench: arena vs legacy CDCL engine")
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats; finishes well under a minute")
    parser.add_argument("-o", "--output", default="BENCH_solver.json",
                        help="output JSON path (default: BENCH_solver.json)")
    parser.add_argument("--check-floor", metavar="PATH", default=None,
                        help="compare against a floor file (e.g. "
                             "benchmarks/floor.json); exit 1 on a >25%% "
                             "regression of any pinned figure")
    args = parser.parse_args(argv)
    if args.quick:
        payload = run_throughput_bench(repeats=3, stress_rounds=25,
                                       context_repeats=1,
                                       conflict_count=2,
                                       conflict_repeats=1)
    else:
        payload = run_throughput_bench()
    try:
        write_report(args.output, payload)
    except OSError as error:
        print(f"error: cannot write {args.output}: {error}", file=sys.stderr)
        return 2
    print(f"headline BCP speedup (arena over legacy): "
          f"{payload['headline_bcp_speedup']}x")
    for record in payload["stress_suite"]:
        print(f"  {record['name']}: {record['speedup']}x "
              f"(blocker hit rate {record['arena']['blocker_hit_rate']}, "
              f"{record['sanity']})")
    for record in payload.get("context_suite", []):
        print(f"  {record['name']} [context]: {record['speedup']}x "
              f"({record['sanity']})")
    if "headline_conflict_speedup" in payload:
        print(f"headline conflict-suite speedup (inprocessing + tier "
              f"over baseline arena): {payload['headline_conflict_speedup']}x")
        for record in payload["conflict_suite"]:
            tuned = record["tuned"]
            print(f"  {record['name']} [conflict]: {record['speedup']}x "
                  f"(conflicts {record['baseline']['conflicts']} -> "
                  f"{tuned['conflicts']}, deleted {tuned['deleted_clauses']}, "
                  f"inprocess {tuned['phase_split']['inprocess']}s)")
    print(f"wrote {args.output}")
    if args.check_floor:
        failures = check_floor(payload, args.check_floor)
        if failures:
            for failure in failures:
                print(f"FLOOR REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"floor check passed ({args.check_floor})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
