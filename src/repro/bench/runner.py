"""Timed strategy sweeps over benchmark instances.

The harness that regenerates Table 2: prepares each benchmark's global
routing once, finds the minimum channel width (so ``W_min - 1`` gives a
provably unroutable configuration), then times every requested strategy on
the same instances and renders the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.pipeline import ColoringOutcome, solve_coloring
from ..core.strategy import Strategy
from ..fpga.detailed import RoutingCSP, build_routing_csp
from ..fpga.flow import minimum_channel_width
from ..fpga.global_route import GlobalRouting
from ..fpga.mcnc import load_routing


@dataclass
class BenchmarkInstance:
    """One prepared routing instance at a fixed width."""

    name: str
    routing: GlobalRouting
    width: int
    csp: RoutingCSP


@dataclass
class SweepResult:
    """All measurements of a strategy sweep."""

    instances: List[str]
    strategies: List[Strategy]
    outcomes: Dict[Tuple[str, str], ColoringOutcome] = field(default_factory=dict)

    def outcome(self, instance: str, strategy: Strategy) -> ColoringOutcome:
        return self.outcomes[(instance, strategy.label)]

    def time_cells(self) -> Dict[str, Dict[str, float]]:
        """``{instance: {strategy label: total time}}`` for table rendering."""
        cells: Dict[str, Dict[str, float]] = {}
        for instance in self.instances:
            cells[instance] = {
                strategy.label: self.outcomes[(instance, strategy.label)].total_time
                for strategy in self.strategies}
        return cells

    def strategy_times(self) -> Dict[str, Dict[Strategy, float]]:
        """``{instance: {strategy: total time}}`` for portfolio analysis."""
        result: Dict[str, Dict[Strategy, float]] = {}
        for instance in self.instances:
            result[instance] = {
                strategy: self.outcomes[(instance, strategy.label)].total_time
                for strategy in self.strategies}
        return result

    def totals(self) -> Dict[str, float]:
        """Total time per strategy label across all instances."""
        return {strategy.label: sum(
                    self.outcomes[(instance, strategy.label)].total_time
                    for instance in self.instances)
                for strategy in self.strategies}

    def to_json(self) -> str:
        """Machine-readable dump: per-cell times, sizes and solver stats."""
        import json

        def cell(outcome: ColoringOutcome) -> Dict:
            stats = outcome.solver_stats
            record = {
                "status": str(outcome.status),
                "satisfiable": outcome.is_sat,
                "total_time": outcome.total_time,
                "solve_time": outcome.solve_time,
                "encode_time": outcome.encode_time,
                "cnf_time": outcome.cnf_time,
                "symmetry_time": outcome.symmetry_time,
                "num_vars": outcome.num_vars,
                "num_clauses": outcome.num_clauses,
                "conflicts": int(stats.get("conflicts", 0)),
                "decisions": int(stats.get("decisions", 0)),
                "propagations": int(stats.get("propagations", 0)),
            }
            # Perf instrumentation from the arena engine, when present.
            if "props_per_sec" in stats:
                record["props_per_sec"] = round(stats["props_per_sec"])
            for key in ("blocker_hits", "watch_inspections"):
                if key in stats:
                    record[key] = int(stats[key])
            return record

        payload = {
            "instances": self.instances,
            "strategies": [s.label for s in self.strategies],
            "cells": {
                f"{instance}|{label}": cell(outcome)
                for (instance, label), outcome in self.outcomes.items()
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def prepare_unroutable_instance(name: str, scale: float = 1.0,
                                probe: Optional[Strategy] = None,
                                ) -> BenchmarkInstance:
    """Load a benchmark and pin its width to ``W_min - 1`` (provably UNSAT).

    Mirrors the paper's setup: Table 2 reports "challenging unroutable
    FPGA configurations", i.e. one track fewer than the routable minimum.
    """
    probe = probe or Strategy("ITE-linear-2+muldirect", "s1")
    routing = load_routing(name, scale)
    width_min = minimum_channel_width(routing, probe)
    if width_min < 2:
        raise ValueError(f"benchmark {name!r} is routable at W=1; "
                         f"no unroutable configuration exists")
    width = width_min - 1
    return BenchmarkInstance(name=name, routing=routing, width=width,
                             csp=build_routing_csp(routing, width))


def prepare_routable_instance(name: str, scale: float = 1.0,
                              slack: int = 0,
                              probe: Optional[Strategy] = None,
                              ) -> BenchmarkInstance:
    """Load a benchmark at its minimum routable width (+ optional slack)."""
    probe = probe or Strategy("ITE-linear-2+muldirect", "s1")
    routing = load_routing(name, scale)
    width = minimum_channel_width(routing, probe) + slack
    return BenchmarkInstance(name=name, routing=routing, width=width,
                             csp=build_routing_csp(routing, width))


def sweep(instances: Sequence[BenchmarkInstance],
          strategies: Sequence[Strategy],
          repeats: int = 1,
          expect_satisfiable: Optional[bool] = None) -> SweepResult:
    """Time every strategy on every instance (best of ``repeats`` runs).

    When ``expect_satisfiable`` is set, every outcome is checked against
    it — a mismatch means an encoding bug and raises immediately.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    result = SweepResult(instances=[i.name for i in instances],
                         strategies=list(strategies))
    for instance in instances:
        for strategy in strategies:
            best: Optional[ColoringOutcome] = None
            for _ in range(repeats):
                outcome = solve_coloring(instance.csp.problem, strategy,
                                         graph_time=instance.csp.build_time)
                if expect_satisfiable is not None \
                        and outcome.is_sat != expect_satisfiable:
                    raise AssertionError(
                        f"{instance.name} @ W={instance.width} with "
                        f"{strategy.label}: got "
                        f"{'SAT' if outcome.is_sat else 'UNSAT'}, "
                        f"expected {'SAT' if expect_satisfiable else 'UNSAT'}")
                if best is None or outcome.total_time < best.total_time:
                    best = outcome
            result.outcomes[(instance.name, strategy.label)] = best
    return result
