"""Benchmark harness: sweeps and paper-style tables."""

from .runner import (BenchmarkInstance, SweepResult,
                     prepare_routable_instance, prepare_unroutable_instance,
                     sweep)
from .tables import (format_seconds, format_speedup, render_simple_table,
                     render_table)

__all__ = [
    "BenchmarkInstance", "SweepResult", "prepare_routable_instance",
    "prepare_unroutable_instance", "sweep",
    "format_seconds", "format_speedup", "render_simple_table", "render_table",
]
