"""Benchmark harness: sweeps, concurrent batches and paper-style tables."""

from .batch import (BatchJob, BatchJobResult, BatchResult, jobs_for,
                    run_batch)
from .runner import (BenchmarkInstance, SweepResult,
                     prepare_routable_instance, prepare_unroutable_instance,
                     sweep)
from .tables import (INVENTORY_FIELDS, clause_inventory, format_seconds,
                     format_speedup, render_inventory_table,
                     render_simple_table, render_table)

__all__ = [
    "BatchJob", "BatchJobResult", "BatchResult", "jobs_for", "run_batch",
    "BenchmarkInstance", "SweepResult", "prepare_routable_instance",
    "prepare_unroutable_instance", "sweep",
    "INVENTORY_FIELDS", "clause_inventory", "format_seconds",
    "format_speedup", "render_inventory_table", "render_simple_table",
    "render_table",
]
