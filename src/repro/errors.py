"""Shared structured exceptions.

The DIMACS readers (``repro.sat.cnf``, ``repro.coloring.dimacs``) parse
text that frequently comes from other tools or from disk, so malformed
input is an expected event, not a programming error.  They raise
:class:`ParseError` — a :class:`ValueError` subclass carrying the
1-based line number and (when known) the source name — instead of
leaking bare ``IndexError`` / ``ValueError`` from ``int()`` or list
indexing, so callers can report *where* the input broke.
"""

from __future__ import annotations

from typing import Optional


class ParseError(ValueError):
    """Malformed textual input (DIMACS ``.cnf`` / ``.col``, fault specs).

    Attributes
    ----------
    line:
        1-based line number of the offending line, or None when the
        error is about the input as a whole (e.g. a missing header).
    source:
        Name of the input (file path, "<string>", ...) when known.
    """

    def __init__(self, message: str, *, line: Optional[int] = None,
                 source: str = "") -> None:
        self.line = line
        self.source = source
        where = []
        if source:
            where.append(source)
        if line is not None:
            where.append(f"line {line}")
        prefix = (", ".join(where) + ": ") if where else ""
        super().__init__(prefix + message)
