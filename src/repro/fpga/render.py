"""ASCII rendering of arrays, channel congestion and routes.

Terminal-friendly visualisation — no plotting dependencies — used by the
examples and handy when debugging why a particular configuration is
unroutable (the hot channels are immediately visible).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .arch import Segment
from .global_route import GlobalRouting


def render_congestion(routing: GlobalRouting,
                      highlight: Optional[int] = None) -> str:
    """Draw the array with per-segment distinct-net counts.

    Logic blocks print as ``[]``; each channel segment prints its usage
    (``.`` when idle).  With ``highlight``, segments used by that 2-pin
    net index print as ``*`` markers next to their count.
    """
    arch = routing.arch
    usage = routing.segment_usage()
    highlighted = set()
    if highlight is not None:
        if not 0 <= highlight < routing.num_two_pin_nets:
            raise ValueError(f"two-pin net {highlight} out of range")
        highlighted = set(routing.two_pin_nets[highlight].segments)

    def cell(segment: Segment) -> str:
        count = usage.get(segment, 0)
        text = "." if count == 0 else str(min(count, 9))
        if segment in highlighted:
            text = f"*{text}"
        return text.rjust(3)

    lines: List[str] = []
    for y in range(arch.rows, -1, -1):
        # Horizontal channel y: one segment per block column.
        channel = ["   "]
        for x in range(arch.cols):
            channel.append(cell(Segment("h", x, y)))
            channel.append("    ")
        lines.append("".join(channel).rstrip())
        if y == 0:
            break
        # Block row y-1, with vertical channel segments between blocks.
        row = []
        for x in range(arch.cols + 1):
            row.append(cell(Segment("v", x, y - 1)))
            if x < arch.cols:
                row.append(" [] ")
        lines.append("".join(row).rstrip())
    header = (f"{routing.netlist.name}: {arch.cols}x{arch.rows} array, "
              f"{routing.num_two_pin_nets} two-pin nets, "
              f"peak segment usage {routing.max_segment_usage()}")
    return header + "\n" + "\n".join(lines)


def render_route(routing: GlobalRouting, vertex: int) -> str:
    """Describe one 2-pin net's route segment by segment."""
    if not 0 <= vertex < routing.num_two_pin_nets:
        raise ValueError(f"two-pin net {vertex} out of range")
    two_pin = routing.two_pin_nets[vertex]
    steps = " -> ".join(str(s) for s in two_pin.segments)
    return (f"{two_pin.name}: {two_pin.source} to {two_pin.sink} "
            f"via {steps}")


def render_track_histogram(usage: Dict[Segment, int], width: int) -> str:
    """Histogram of segment usage vs the channel width budget."""
    counts: Dict[int, int] = {}
    for value in usage.values():
        counts[value] = counts.get(value, 0) + 1
    lines = [f"segment usage histogram (W = {width}):"]
    for value in sorted(counts):
        bar = "#" * min(counts[value], 60)
        marker = " <= over budget" if value > width else ""
        lines.append(f"  {value:3d} nets: {bar} ({counts[value]}){marker}")
    return "\n".join(lines)
