"""Island-style FPGA architecture model (paper §2).

The model is the classic symmetric array: a ``cols × rows`` grid of logic
blocks, horizontal routing channels between block rows, vertical channels
between block columns, *connection blocks* hooking block pins onto channel
tracks, and *switch blocks* at channel intersections.

Switch blocks use the **disjoint** (subset) pattern: track ``t`` of one
segment connects only to track ``t`` of adjacent segments.  This is the
property the paper's reduction relies on ("each switching block preserves
the track assignment"): a routed 2-pin net occupies the same track index
along its entire path, so one CSP variable with domain ``0..W-1`` per
2-pin net captures its whole detailed route.

Channel geometry (``cols = 3``, ``rows = 2`` example)::

    v(0,1) h(0,2) v(1,1) h(1,2) v(2,1) h(2,2) v(3,1)
           [0,1]         [1,1]         [2,1]
    v(0,0) h(0,1) v(1,0) h(1,1) v(2,0) h(2,1) v(3,0)
           [0,0]         [1,0]         [2,0]
           h(0,0)        h(1,0)        h(2,0)

``h(x, y)`` is the segment of horizontal channel ``y`` (0..rows) above/below
block column ``x``; ``v(x, y)`` the segment of vertical channel ``x``
(0..cols) beside block row ``y``.  Segments meet at switch-block corners
``(cx, cy)`` with ``cx`` in 0..cols and ``cy`` in 0..rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True, order=True)
class Segment:
    """One channel segment: ``kind`` is ``"h"`` or ``"v"``.

    For ``h``: ``x`` is the block column it spans, ``y`` the horizontal
    channel index (0 = below the bottom block row).  For ``v``: ``x`` is
    the vertical channel index, ``y`` the block row it spans.
    """

    kind: str
    x: int
    y: int

    def __post_init__(self) -> None:
        if self.kind not in ("h", "v"):
            raise ValueError(f"segment kind must be 'h' or 'v', got {self.kind!r}")

    def corners(self) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """The two switch-block corners this segment connects."""
        if self.kind == "h":
            return (self.x, self.y), (self.x + 1, self.y)
        return (self.x, self.y), (self.x, self.y + 1)

    def __repr__(self) -> str:
        return f"{self.kind}({self.x},{self.y})"


class FPGAArchitecture:
    """Geometry and routing-resource graph of one island-style array."""

    def __init__(self, cols: int, rows: int, channel_width: int = 1) -> None:
        if cols < 1 or rows < 1:
            raise ValueError("the array needs at least one block")
        if channel_width < 1:
            raise ValueError("channel width must be at least 1")
        self.cols = cols
        self.rows = rows
        self.channel_width = channel_width

    # ------------------------------------------------------------------
    # Resources
    # ------------------------------------------------------------------

    def blocks(self) -> Iterator[Tuple[int, int]]:
        """Yield every logic-block position ``(x, y)``."""
        for y in range(self.rows):
            for x in range(self.cols):
                yield (x, y)

    @property
    def num_blocks(self) -> int:
        return self.cols * self.rows

    def segments(self) -> Iterator[Segment]:
        """Yield every channel segment of the array."""
        for y in range(self.rows + 1):
            for x in range(self.cols):
                yield Segment("h", x, y)
        for x in range(self.cols + 1):
            for y in range(self.rows):
                yield Segment("v", x, y)

    @property
    def num_segments(self) -> int:
        return self.cols * (self.rows + 1) + (self.cols + 1) * self.rows

    def contains_segment(self, segment: Segment) -> bool:
        if segment.kind == "h":
            return 0 <= segment.x < self.cols and 0 <= segment.y <= self.rows
        return 0 <= segment.x <= self.cols and 0 <= segment.y < self.rows

    def contains_block(self, x: int, y: int) -> bool:
        return 0 <= x < self.cols and 0 <= y < self.rows

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def block_segments(self, x: int, y: int) -> List[Segment]:
        """Segments a block's pins reach through its connection blocks:
        the channels on its four sides."""
        if not self.contains_block(x, y):
            raise ValueError(f"block ({x},{y}) outside the {self.cols}x{self.rows} array")
        return [
            Segment("h", x, y),          # south
            Segment("h", x, y + 1),      # north
            Segment("v", x, y),          # west
            Segment("v", x + 1, y),      # east
        ]

    def segment_neighbors(self, segment: Segment) -> List[Segment]:
        """Segments reachable through the switch blocks at either end."""
        if not self.contains_segment(segment):
            raise ValueError(f"segment {segment} outside the array")
        neighbors = []
        for cx, cy in segment.corners():
            for candidate in self._corner_segments(cx, cy):
                if candidate != segment and self.contains_segment(candidate):
                    neighbors.append(candidate)
        return neighbors

    def _corner_segments(self, cx: int, cy: int) -> List[Segment]:
        return [
            Segment("h", cx - 1, cy),
            Segment("h", cx, cy),
            Segment("v", cx, cy - 1),
            Segment("v", cx, cy),
        ]

    def manhattan_distance(self, a: Tuple[int, int], b: Tuple[int, int]) -> int:
        """Manhattan distance between two block positions."""
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def __repr__(self) -> str:
        return (f"FPGAArchitecture(cols={self.cols}, rows={self.rows}, "
                f"channel_width={self.channel_width})")
