"""MCNC-like benchmark profiles.

The paper evaluates on the MCNC FPGA detailed-routing benchmarks with the
global routings shipped with SEGA-1.1.  Those artifacts are not
redistributable, so each Table-2 circuit name maps to a *synthetic profile*
(DESIGN.md §2): a seeded :class:`~repro.fpga.generate.CircuitSpec` whose
grid size, net count and locality are scaled down to what a pure-Python
CDCL solver can handle, ordered so the relative difficulty progression of
Table 2 (alu2 easiest … vda/k2 hardest) is preserved.

``scale`` multiplies the linear grid dimension and the net count, letting
examples run in milliseconds (``scale=0.5``) and stress runs grow harder
(``scale > 1``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from .generate import CircuitSpec, generate_netlist
from .global_route import GlobalRouting, route_netlist
from .netlist import Netlist

#: The eight circuits of Table 2, in the paper's (difficulty) order.
TABLE2_BENCHMARKS: List[str] = [
    "alu2", "too_large", "alu4", "C880", "apex7", "C1355", "vda", "k2",
]

#: Additional MCNC circuit names used for the routable-configuration
#: experiments (§6 reports "most encodings had comparable and very
#: efficient performance" on these satisfiable instances).
EXTRA_BENCHMARKS: List[str] = ["9symml", "term1", "example2", "vg2"]

_SPECS: Dict[str, CircuitSpec] = {
    # Profiles calibrated so the baseline (muldirect, no symmetry) UNSAT
    # proof cost ramps roughly like Table 2: alu2 well under a second,
    # vda and k2 dominating the suite.
    # name                 cols rows nets  seed  fanout  mean_distance
    "alu2":      CircuitSpec("alu2", 6, 6, 80, 1002, 3, 2.0),
    "too_large": CircuitSpec("too_large", 7, 7, 100, 1003, 3, 2.0),
    "alu4":      CircuitSpec("alu4", 7, 7, 115, 1004, 4, 2.1),
    "C880":      CircuitSpec("C880", 8, 8, 130, 1005, 3, 2.2),
    "apex7":     CircuitSpec("apex7", 8, 8, 160, 1006, 4, 2.2),
    "C1355":     CircuitSpec("C1355", 9, 9, 185, 1008, 4, 2.3),
    "vda":       CircuitSpec("vda", 9, 9, 165, 1007, 3, 2.3),
    "k2":        CircuitSpec("k2", 10, 10, 205, 1009, 4, 2.4),
    "9symml":    CircuitSpec("9symml", 6, 6, 60, 1010, 3, 1.8),
    "term1":     CircuitSpec("term1", 6, 6, 55, 1011, 3, 1.8),
    "example2":  CircuitSpec("example2", 7, 7, 90, 1012, 4, 1.9),
    "vg2":       CircuitSpec("vg2", 7, 7, 75, 1013, 3, 1.9),
}

ALL_BENCHMARKS: List[str] = TABLE2_BENCHMARKS + EXTRA_BENCHMARKS


def benchmark_names() -> List[str]:
    """All available benchmark names, Table-2 circuits first."""
    return list(ALL_BENCHMARKS)


def benchmark_spec(name: str, scale: float = 1.0) -> CircuitSpec:
    """The (possibly rescaled) circuit spec for a benchmark name."""
    try:
        spec = _SPECS[name]
    except KeyError:
        known = ", ".join(ALL_BENCHMARKS)
        raise ValueError(f"unknown benchmark {name!r} (known: {known})") from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    if scale == 1.0:
        return spec
    return replace(
        spec,
        cols=max(2, round(spec.cols * scale)),
        rows=max(2, round(spec.rows * scale)),
        num_nets=max(1, round(spec.num_nets * scale)),
    )


def load_netlist(name: str, scale: float = 1.0) -> Netlist:
    """Generate the placed netlist for a benchmark (deterministic)."""
    return generate_netlist(benchmark_spec(name, scale))


def load_routing(name: str, scale: float = 1.0,
                 congestion_penalty: float = 1.0) -> GlobalRouting:
    """Generate and globally route a benchmark (deterministic)."""
    return route_netlist(load_netlist(name, scale),
                         congestion_penalty=congestion_penalty)
