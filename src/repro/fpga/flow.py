"""End-to-end detailed-routing flow.

Ties the layers together exactly as the paper's tool flow does:

    global routing → conflict graph (DIMACS .col) → CNF (chosen encoding,
    optional symmetry breaking) → CDCL → track assignment / unroutability
    proof,

with the three-way timing split reported in Table 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..core.pipeline import ColoringOutcome, solve_coloring
from ..core.strategy import Strategy
from ..coloring.greedy import clique_lower_bound, greedy_num_colors
from ..sat.solver.cdcl import BudgetExceeded
from ..sat.status import CancelToken, SolveLimits, SolveReport, SolveStatus
from .detailed import RoutingCSP, build_routing_csp
from .global_route import GlobalRouting
from .tracks import (TrackAssignment, assignment_from_coloring,
                     verify_track_assignment)


@dataclass
class DetailedRoutingResult:
    """Outcome of one detailed-routing attempt at a fixed channel width."""

    csp: RoutingCSP
    strategy: Strategy
    routable: bool
    assignment: Optional[TrackAssignment]
    outcome: ColoringOutcome

    @property
    def width(self) -> int:
        return self.csp.width

    @property
    def status(self) -> SolveStatus:
        """The underlying solve's status.  ``routable`` is only
        meaningful when this is decided (SAT/UNSAT); a budgeted attempt
        may be TIMEOUT or BUDGET_EXHAUSTED instead."""
        return self.outcome.status

    @property
    def report(self) -> SolveReport:
        return self.outcome.report

    @property
    def total_time(self) -> float:
        """graph-coloring generation + CNF translation + SAT solving."""
        return self.outcome.total_time


def detailed_route(routing: GlobalRouting, width: int,
                   strategy: Strategy,
                   limits: Optional[SolveLimits] = None,
                   cancel: Optional[CancelToken] = None,
                   ) -> DetailedRoutingResult:
    """Attempt a detailed routing with ``width`` tracks per channel.

    A SAT answer yields a verified :class:`TrackAssignment`; an UNSAT
    answer is a *proof* that this global routing has no detailed routing at
    this width — the capability the paper highlights over one-net-at-a-time
    routers.  ``limits`` / ``cancel`` bound the attempt; check
    ``result.status`` before trusting ``routable`` on a bounded run.
    """
    csp = build_routing_csp(routing, width)
    outcome = solve_coloring(csp.problem, strategy, graph_time=csp.build_time,
                             limits=limits, cancel=cancel)
    assignment = None
    if outcome.is_sat:
        assignment = assignment_from_coloring(csp, outcome.coloring)
        violations = verify_track_assignment(assignment)
        if violations:
            raise AssertionError(
                "decoded track assignment is illegal: " + "; ".join(violations))
    return DetailedRoutingResult(csp=csp, strategy=strategy,
                                 routable=outcome.is_sat,
                                 assignment=assignment, outcome=outcome)


def minimum_channel_width(routing: GlobalRouting, strategy: Strategy,
                          lower: Optional[int] = None,
                          upper: Optional[int] = None,
                          limits: Optional[SolveLimits] = None,
                          cancel: Optional[CancelToken] = None) -> int:
    """Smallest W admitting a detailed routing, by SAT binary search.

    Bracketed by the clique lower bound and the DSATUR upper bound on the
    conflict graph, then narrowed with exact SAT answers.  ``W - 1`` is
    then provably unroutable — how the benchmark harness constructs the
    challenging UNSAT configurations of Table 2.

    ``limits.wall_clock_limit`` bounds the *whole* search (each probe
    gets the remaining time); conflict/propagation budgets apply per
    probe.  A probe that stops undecided aborts the search with
    :class:`BudgetExceeded` — binary search cannot proceed on an
    unknown.
    """
    csp = build_routing_csp(routing, 1)
    graph = csp.problem.graph
    if lower is None:
        lower = max(1, clique_lower_bound(graph))
    if upper is None:
        upper = max(lower, greedy_num_colors(graph), 1)
    deadline = None
    if limits is not None and limits.wall_clock_limit is not None:
        deadline = time.perf_counter() + limits.wall_clock_limit
    while lower < upper:
        middle = (lower + upper) // 2
        probe_limits = limits
        if deadline is not None:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise BudgetExceeded(
                    f"width search timed out with W in [{lower}, {upper}]")
            probe_limits = limits.with_wall_clock(remaining)
        result = detailed_route(routing, middle, strategy,
                                limits=probe_limits, cancel=cancel)
        if not result.status.decided:
            raise BudgetExceeded(
                f"width probe at W={middle} stopped: {result.status} "
                f"(W in [{lower}, {upper}])")
        if result.routable:
            upper = middle
        else:
            lower = middle + 1
    return lower
