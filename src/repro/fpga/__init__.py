"""FPGA routing substrate: architecture, netlists, placement, global and
detailed routing, MCNC-like benchmark profiles, serialisation, rendering,
and the negotiation-based baseline router."""

from .arch import FPGAArchitecture, Segment
from .detailed import (RoutingCSP, build_conflict_graph, build_routing_csp,
                       validate_global_routing)
from .flow import DetailedRoutingResult, detailed_route, minimum_channel_width
from .generate import CircuitSpec, generate_netlist
from .global_route import (GlobalRouter, GlobalRouting, TwoPinNet,
                           route_netlist)
from .io import (assignment_from_json, assignment_to_json, netlist_from_json,
                 netlist_to_json, read_netlist, read_routing,
                 routing_from_text, routing_to_text, write_netlist,
                 write_routing)
from .mcnc import (ALL_BENCHMARKS, EXTRA_BENCHMARKS, TABLE2_BENCHMARKS,
                   benchmark_names, benchmark_spec, load_netlist, load_routing)
from .netlist import Net, Netlist
from .pathfinder import NegotiationResult, PathFinderRouter, negotiate_tracks
from .placement import (AnnealingPlacer, LogicalNet, LogicalNetlist,
                        Placement, place_netlist, random_logical_netlist)
from .render import render_congestion, render_route, render_track_histogram
from .tracks import (TrackAssignment, assignment_from_coloring, is_legal,
                     verify_track_assignment)

__all__ = [
    "FPGAArchitecture", "Segment",
    "RoutingCSP", "build_conflict_graph", "build_routing_csp",
    "validate_global_routing",
    "DetailedRoutingResult", "detailed_route", "minimum_channel_width",
    "CircuitSpec", "generate_netlist",
    "GlobalRouter", "GlobalRouting", "TwoPinNet", "route_netlist",
    "assignment_from_json", "assignment_to_json", "netlist_from_json",
    "netlist_to_json", "read_netlist", "read_routing", "routing_from_text",
    "routing_to_text", "write_netlist", "write_routing",
    "ALL_BENCHMARKS", "EXTRA_BENCHMARKS", "TABLE2_BENCHMARKS",
    "benchmark_names", "benchmark_spec", "load_netlist", "load_routing",
    "Net", "Netlist",
    "NegotiationResult", "PathFinderRouter", "negotiate_tracks",
    "AnnealingPlacer", "LogicalNet", "LogicalNetlist", "Placement",
    "place_netlist", "random_logical_netlist",
    "render_congestion", "render_route", "render_track_histogram",
    "TrackAssignment", "assignment_from_coloring", "is_legal",
    "verify_track_assignment",
]
