"""Serialisation of netlists, global routings and track assignments.

Two formats:

* **JSON** for placed netlists — the library's interchange format, so
  benchmark instances and user circuits can be stored, diffed and
  re-loaded bit-exactly.
* A **SEGA-flavoured text format** for global routings — one block per
  2-pin net listing its channel segments — mirroring the role the
  ``.route`` files shipped with SEGA-1.1 play in the paper's flow (they
  are the input the SAT stage consumes).
"""

from __future__ import annotations

import hashlib
import io
import json
from typing import Dict, List, TextIO, Union

from .arch import FPGAArchitecture, Segment
from .global_route import GlobalRouting, TwoPinNet
from .netlist import Net, Netlist
from .tracks import TrackAssignment

_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Netlist JSON
# ----------------------------------------------------------------------

def netlist_to_json(netlist: Netlist) -> str:
    """Serialise a placed netlist to a JSON string."""
    payload = {
        "format": "repro-netlist",
        "version": _FORMAT_VERSION,
        "name": netlist.name,
        "cols": netlist.cols,
        "rows": netlist.rows,
        "nets": [
            {"name": net.name,
             "source": list(net.source),
             "sinks": [list(sink) for sink in net.sinks]}
            for net in netlist.nets
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def netlist_from_json(text: str) -> Netlist:
    """Parse a netlist from its JSON form (validating as it builds)."""
    payload = json.loads(text)
    if payload.get("format") != "repro-netlist":
        raise ValueError("not a repro-netlist JSON document")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported netlist format version "
                         f"{payload.get('version')!r}")
    nets = [Net(name=entry["name"],
                source=tuple(entry["source"]),
                sinks=tuple(tuple(sink) for sink in entry["sinks"]))
            for entry in payload["nets"]]
    return Netlist(payload["name"], payload["cols"], payload["rows"], nets)


def write_netlist(netlist: Netlist, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(netlist_to_json(netlist))


def read_netlist(path: str) -> Netlist:
    with open(path, "r", encoding="utf-8") as handle:
        return netlist_from_json(handle.read())


# ----------------------------------------------------------------------
# Canonical bytes + digests (shared hashing path with coloring.dimacs)
# ----------------------------------------------------------------------

def canonical_bytes(instance: Union[Netlist, "GlobalRouting"]) -> bytes:
    """Byte-stable serialization of a netlist or global routing.

    Netlists use their JSON form (``sort_keys`` makes it a pure function
    of the placement); routings use the SEGA-flavoured text format,
    whose net blocks follow the deterministic two-pin expansion order.
    Equal instances produce identical bytes — the property the serve
    cache and QA reproducer bundles key on.
    """
    if isinstance(instance, Netlist):
        return netlist_to_json(instance).encode("utf-8")
    if isinstance(instance, GlobalRouting):
        return routing_to_text(instance).encode("utf-8")
    raise TypeError(f"cannot canonicalise {type(instance).__name__}; "
                    f"expected Netlist or GlobalRouting")


def instance_digest(instance: Union[Netlist, "GlobalRouting"],
                    extra: "tuple" = ()) -> str:
    """SHA-256 hex digest of :func:`canonical_bytes`, with optional
    NUL-separated ``extra`` discriminators (width, strategy, …) — the
    same framing as :func:`repro.coloring.dimacs.instance_digest`."""
    hasher = hashlib.sha256(canonical_bytes(instance))
    for field in extra:
        hasher.update(b"\x00")
        hasher.update(str(field).encode("utf-8"))
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# Global routing text format
# ----------------------------------------------------------------------

def _segment_token(segment: Segment) -> str:
    return f"{segment.kind}{segment.x}.{segment.y}"


def _parse_segment(token: str) -> Segment:
    kind = token[0]
    try:
        x_text, y_text = token[1:].split(".")
        return Segment(kind, int(x_text), int(y_text))
    except (ValueError, IndexError):
        raise ValueError(f"malformed segment token {token!r}") from None


def write_routing(routing: GlobalRouting, stream: TextIO) -> None:
    """Write a global routing in the SEGA-flavoured text format::

        # comment
        grid <cols> <rows>
        net <net_index> <subnet_index> <sx> <sy> <tx> <ty> : h0.1 v1.0 ...
    """
    stream.write(f"# global routing of {routing.netlist.name}\n")
    stream.write(f"grid {routing.arch.cols} {routing.arch.rows}\n")
    for two_pin in routing.two_pin_nets:
        segments = " ".join(_segment_token(s) for s in two_pin.segments)
        stream.write(
            f"net {two_pin.net_index} {two_pin.subnet_index} "
            f"{two_pin.source[0]} {two_pin.source[1]} "
            f"{two_pin.sink[0]} {two_pin.sink[1]} : {segments}\n")


def routing_to_text(routing: GlobalRouting) -> str:
    buffer = io.StringIO()
    write_routing(routing, buffer)
    return buffer.getvalue()


def read_routing(stream: TextIO, netlist: Netlist) -> GlobalRouting:
    """Parse a global routing; the netlist provides naming context."""
    arch = None
    two_pin_nets: List[TwoPinNet] = []
    for raw_line in stream:
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if fields[0] == "grid":
            if arch is not None:
                raise ValueError("duplicate grid line")
            arch = FPGAArchitecture(int(fields[1]), int(fields[2]))
        elif fields[0] == "net":
            if arch is None:
                raise ValueError("net line before grid line")
            if fields[7] != ":":
                raise ValueError(f"malformed net line: {line!r}")
            segments = tuple(_parse_segment(tok) for tok in fields[8:])
            two_pin_nets.append(TwoPinNet(
                net_index=int(fields[1]), subnet_index=int(fields[2]),
                source=(int(fields[3]), int(fields[4])),
                sink=(int(fields[5]), int(fields[6])),
                segments=segments))
        else:
            raise ValueError(f"unrecognised routing line: {line!r}")
    if arch is None:
        raise ValueError("missing grid line")
    if arch.cols != netlist.cols or arch.rows != netlist.rows:
        raise ValueError("routing grid does not match the netlist grid")
    return GlobalRouting(netlist=netlist, arch=arch,
                         two_pin_nets=two_pin_nets)


def routing_from_text(text: str, netlist: Netlist) -> GlobalRouting:
    return read_routing(io.StringIO(text), netlist)


# ----------------------------------------------------------------------
# Track assignment JSON
# ----------------------------------------------------------------------

def assignment_to_json(assignment: TrackAssignment) -> str:
    """Serialise a track assignment (keyed by 2-pin net name)."""
    names = {}
    for vertex, track in sorted(assignment.tracks.items()):
        names[assignment.routing.two_pin_nets[vertex].name] = track
    payload = {
        "format": "repro-tracks",
        "version": _FORMAT_VERSION,
        "width": assignment.width,
        "tracks": names,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def assignment_from_json(text: str, routing: GlobalRouting) -> TrackAssignment:
    """Rebuild a track assignment against its global routing."""
    payload = json.loads(text)
    if payload.get("format") != "repro-tracks":
        raise ValueError("not a repro-tracks JSON document")
    by_name: Dict[str, int] = {two_pin.name: vertex
                               for vertex, two_pin
                               in enumerate(routing.two_pin_nets)}
    tracks = {}
    for name, track in payload["tracks"].items():
        if name not in by_name:
            raise ValueError(f"unknown two-pin net {name!r}")
        tracks[by_name[name]] = track
    return TrackAssignment(routing=routing, width=payload["width"],
                           tracks=tracks)
