"""Simulated-annealing placement.

The MCNC circuits the paper routes arrive *placed* (by VPR) before SEGA
computes global routes.  Our synthetic generator produces placed netlists
directly; this module provides the missing-front-end alternative: take a
*logical* netlist (nets over abstract block ids) and assign every block a
grid position, minimising total half-perimeter wirelength with the
classic VPR-style annealing schedule.

This matters for the reproduction because placement quality shapes the
conflict graph: a bad placement lengthens routes, inflates channel
overlap, and raises the minimum channel width — which the placement
benchmark demonstrates.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .netlist import Net, Netlist

Position = Tuple[int, int]


@dataclass(frozen=True)
class LogicalNet:
    """A net over abstract block ids (pre-placement)."""

    name: str
    source: int
    sinks: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.sinks:
            raise ValueError(f"net {self.name!r} has no sinks")
        if self.source in self.sinks:
            raise ValueError(f"net {self.name!r} lists its source as a sink")
        if len(set(self.sinks)) != len(self.sinks):
            raise ValueError(f"net {self.name!r} repeats a sink")

    @property
    def blocks(self) -> List[int]:
        return [self.source] + list(self.sinks)


@dataclass
class LogicalNetlist:
    """Blocks ``0..num_blocks-1`` connected by logical nets."""

    name: str
    num_blocks: int
    nets: List[LogicalNet] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("at least one block is required")
        for net in self.nets:
            for block in net.blocks:
                if not 0 <= block < self.num_blocks:
                    raise ValueError(
                        f"net {net.name!r} references block {block}, "
                        f"outside 0..{self.num_blocks - 1}")


def random_logical_netlist(num_blocks: int, num_nets: int, seed: int,
                           max_fanout: int = 4) -> LogicalNetlist:
    """A seeded random logical netlist (for tests and demos)."""
    if num_blocks < 2:
        raise ValueError("need at least two blocks")
    rng = random.Random(seed)
    nets = []
    for index in range(num_nets):
        source = rng.randrange(num_blocks)
        fanout = rng.randint(1, max_fanout)
        candidates = [b for b in range(num_blocks) if b != source]
        sinks = tuple(rng.sample(candidates, min(fanout, len(candidates))))
        nets.append(LogicalNet(f"n{index}", source, sinks))
    return LogicalNetlist("random", num_blocks, nets)


class Placement:
    """A block-to-position map on a ``cols × rows`` grid."""

    def __init__(self, cols: int, rows: int,
                 positions: Dict[int, Position]) -> None:
        self.cols = cols
        self.rows = rows
        self.positions = dict(positions)
        occupied = list(self.positions.values())
        if len(set(occupied)) != len(occupied):
            raise ValueError("two blocks share a position")
        for x, y in occupied:
            if not (0 <= x < cols and 0 <= y < rows):
                raise ValueError(f"position ({x},{y}) off the grid")

    def wirelength(self, netlist: LogicalNetlist) -> int:
        """Total HPWL of the netlist under this placement."""
        total = 0
        for net in netlist.nets:
            xs = [self.positions[b][0] for b in net.blocks]
            ys = [self.positions[b][1] for b in net.blocks]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    def to_netlist(self, netlist: LogicalNetlist) -> Netlist:
        """Materialise a placed :class:`~repro.fpga.netlist.Netlist`.

        Distinct logical blocks occupy distinct positions, but two pins of
        one net may coincide if a net connects blocks placed adjacently —
        they cannot, since positions are unique per block.
        """
        nets = []
        for net in netlist.nets:
            nets.append(Net(name=net.name,
                            source=self.positions[net.source],
                            sinks=tuple(self.positions[s] for s in net.sinks)))
        return Netlist(netlist.name, self.cols, self.rows, nets)


class AnnealingPlacer:
    """VPR-flavoured simulated annealing over block swaps.

    The schedule is the textbook one: start hot enough to accept most
    moves, attempt ``moves_per_temperature × num_blocks`` swaps per step,
    cool geometrically, stop when the acceptance rate collapses.
    """

    def __init__(self, cols: int, rows: int, seed: int = 0,
                 moves_per_temperature: int = 10,
                 cooling: float = 0.9,
                 initial_acceptance: float = 0.8) -> None:
        if cols < 1 or rows < 1:
            raise ValueError("grid must be at least 1x1")
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        self.cols = cols
        self.rows = rows
        self.seed = seed
        self.moves_per_temperature = moves_per_temperature
        self.cooling = cooling
        self.initial_acceptance = initial_acceptance

    def place(self, netlist: LogicalNetlist) -> Placement:
        """Anneal a placement for ``netlist``; deterministic per seed."""
        if netlist.num_blocks > self.cols * self.rows:
            raise ValueError(
                f"{netlist.num_blocks} blocks do not fit a "
                f"{self.cols}x{self.rows} grid")
        rng = random.Random(self.seed)
        cells = [(x, y) for x in range(self.cols) for y in range(self.rows)]
        rng.shuffle(cells)
        positions: Dict[int, Position] = {
            block: cells[block] for block in range(netlist.num_blocks)}
        placement = Placement(self.cols, self.rows, positions)

        nets_of_block: Dict[int, List[LogicalNet]] = {}
        for net in netlist.nets:
            for block in set(net.blocks):
                nets_of_block.setdefault(block, []).append(net)

        def nets_cost(nets: Sequence[LogicalNet]) -> int:
            total = 0
            for net in nets:
                xs = [positions[b][0] for b in net.blocks]
                ys = [positions[b][1] for b in net.blocks]
                total += (max(xs) - min(xs)) + (max(ys) - min(ys))
            return total

        cost = placement.wirelength(netlist)
        temperature = self._initial_temperature(netlist, positions, rng)
        moves = max(1, self.moves_per_temperature * netlist.num_blocks)
        free_cells = [c for c in cells[netlist.num_blocks:]]

        first_pass = True
        while temperature > 0.005 or first_pass:
            first_pass = False
            accepted = 0
            for _ in range(moves):
                block = rng.randrange(netlist.num_blocks)
                use_free = free_cells and rng.random() < 0.3
                if use_free:
                    target_cell = rng.choice(free_cells)
                    other = None
                else:
                    other = rng.randrange(netlist.num_blocks)
                    if other == block:
                        continue
                    target_cell = positions[other]
                affected = list(nets_of_block.get(block, []))
                if other is not None:
                    affected += [n for n in nets_of_block.get(other, [])
                                 if n not in affected]
                before = nets_cost(affected)
                source_cell = positions[block]
                positions[block] = target_cell
                if other is not None:
                    positions[other] = source_cell
                after = nets_cost(affected)
                delta = after - before
                if delta <= 0 or (temperature > 0 and
                                  rng.random() < math.exp(-delta / temperature)):
                    cost += delta
                    accepted += 1
                    if use_free:
                        free_cells.remove(target_cell)
                        free_cells.append(source_cell)
                else:
                    positions[block] = source_cell
                    if other is not None:
                        positions[other] = target_cell
            temperature *= self.cooling
            if accepted == 0:
                break
            if temperature <= 0.005:
                break
        return Placement(self.cols, self.rows, positions)

    def _initial_temperature(self, netlist: LogicalNetlist,
                             positions: Dict[int, Position],
                             rng: random.Random) -> float:
        """Sample swap deltas; pick T so ~initial_acceptance are accepted."""
        deltas = []
        sample = Placement(self.cols, self.rows, positions)
        base = sample.wirelength(netlist)
        for _ in range(min(50, 5 * netlist.num_blocks)):
            a, b = rng.randrange(netlist.num_blocks), rng.randrange(netlist.num_blocks)
            if a == b:
                continue
            positions[a], positions[b] = positions[b], positions[a]
            delta = Placement(self.cols, self.rows, positions).wirelength(netlist) - base
            positions[a], positions[b] = positions[b], positions[a]
            if delta > 0:
                deltas.append(delta)
        if not deltas:
            return 1.0
        mean_delta = sum(deltas) / len(deltas)
        return -mean_delta / math.log(self.initial_acceptance)


def place_netlist(netlist: LogicalNetlist, cols: int, rows: int,
                  seed: int = 0) -> Netlist:
    """Anneal a placement and return the placed netlist."""
    placement = AnnealingPlacer(cols, rows, seed=seed).place(netlist)
    return placement.to_netlist(netlist)
