"""Detailed routing → graph coloring (the paper's §2 reduction).

Every 2-pin net becomes a CSP vertex whose domain is the track set
``0..W-1``.  Because switch blocks are track-preserving, a 2-pin net keeps
one track along its whole route, so the exclusivity constraints collapse
to: *two 2-pin nets of different multi-pin nets that share at least one
channel segment must take different tracks* — one graph edge per such
pair, "imposed once" even when the pair shares several connection blocks,
exactly as the paper notes.

The resulting :class:`~repro.coloring.problem.ColoringProblem` with K = W
is satisfiable iff a detailed routing with W tracks per channel exists.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

from ..coloring.dimacs import to_col_string
from ..coloring.problem import ColoringProblem, Graph
from .arch import Segment
from .global_route import GlobalRouting, TwoPinNet


@dataclass
class RoutingCSP:
    """The coloring problem induced by a global routing at width W.

    Vertex ``v`` of ``problem.graph`` is ``routing.two_pin_nets[v]``.
    """

    routing: GlobalRouting
    width: int
    problem: ColoringProblem
    build_time: float

    @property
    def num_two_pin_nets(self) -> int:
        return self.routing.num_two_pin_nets

    def two_pin(self, vertex: int) -> TwoPinNet:
        return self.routing.two_pin_nets[vertex]

    def to_dimacs_col(self) -> str:
        """The conflict graph in DIMACS ``.col`` format — the intermediate
        artifact of the paper's two-stage tool flow."""
        comments = [
            f"conflict graph of {self.routing.netlist.name} "
            f"({self.routing.num_two_pin_nets} two-pin nets)",
            f"color with W = {self.width} tracks per channel",
        ]
        return to_col_string(self.problem.graph, comments=comments)


def build_conflict_graph(routing: GlobalRouting) -> Graph:
    """Build the track-exclusivity conflict graph of a global routing."""
    graph = Graph(routing.num_two_pin_nets)
    by_segment: Dict[Segment, List[int]] = {}
    for vertex, two_pin in enumerate(routing.two_pin_nets):
        for segment in two_pin.segments:
            by_segment.setdefault(segment, []).append(vertex)
    for vertices in by_segment.values():
        for i, u in enumerate(vertices):
            net_u = routing.two_pin_nets[u].net_index
            for v in vertices[i + 1:]:
                if routing.two_pin_nets[v].net_index != net_u:
                    graph.add_edge(u, v)
    return graph


def build_routing_csp(routing: GlobalRouting, width: int) -> RoutingCSP:
    """Translate a global routing into a coloring problem at width ``width``
    (timed: this is the "translation to graph coloring" column of Table 2)."""
    if width < 1:
        raise ValueError("channel width must be at least 1")
    start = time.perf_counter()
    graph = build_conflict_graph(routing)
    names = [two_pin.name for two_pin in routing.two_pin_nets]
    problem = ColoringProblem(graph, width, vertex_names=names)
    build_time = time.perf_counter() - start
    return RoutingCSP(routing=routing, width=width, problem=problem,
                      build_time=build_time)


def validate_global_routing(routing: GlobalRouting) -> List[str]:
    """Structural checks on a global routing; returns human-readable
    violations (empty list = valid).

    Checks that each 2-pin net's segment list is a connected path starting
    at a segment adjacent to its source block and ending adjacent to its
    sink block.
    """
    arch = routing.arch
    violations: List[str] = []
    for two_pin in routing.two_pin_nets:
        if not two_pin.segments:
            violations.append(f"{two_pin.name}: empty route")
            continue
        for segment in two_pin.segments:
            if not arch.contains_segment(segment):
                violations.append(f"{two_pin.name}: segment {segment} off-array")
        if two_pin.segments[0] not in arch.block_segments(*two_pin.source):
            violations.append(
                f"{two_pin.name}: route does not start at source "
                f"{two_pin.source}")
        if two_pin.segments[-1] not in arch.block_segments(*two_pin.sink):
            violations.append(
                f"{two_pin.name}: route does not end at sink {two_pin.sink}")
        for a, b in zip(two_pin.segments, two_pin.segments[1:]):
            if b not in arch.segment_neighbors(a):
                violations.append(
                    f"{two_pin.name}: segments {a} and {b} not adjacent")
    return violations
