"""Global routing: multi-pin decomposition and congestion-aware maze search.

This plays the role SEGA-1.1's global routings play in the paper: it fixes,
for every 2-pin connection, *which channel segments* the connection passes
through — but not which track.  Detailed routing (the SAT part) then
assigns tracks.

Decomposition follows the paper's §2: "each multi-pin net is decomposed
into a collection of 2-pin nets".  We use Prim-style spanning decomposition
(each sink connects from the nearest already-connected pin), the standard
choice in global routers.

Each 2-pin net is routed by Dijkstra over the segment graph with a
congestion-dependent cost, so hot channels are avoided when possible and
the per-segment demand (which determines the conflict-graph cliques and
thus the minimum channel width) stays realistic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .arch import FPGAArchitecture, Segment
from .netlist import Net, Netlist

Position = Tuple[int, int]


@dataclass(frozen=True)
class TwoPinNet:
    """One 2-pin connection of a decomposed multi-pin net.

    ``net_index`` identifies the parent multi-pin net — 2-pin nets of the
    *same* parent never conflict (they carry the same signal and may share
    tracks); 2-pin nets of different parents sharing a segment must take
    different tracks.
    """

    net_index: int
    subnet_index: int
    source: Position
    sink: Position
    segments: Tuple[Segment, ...]

    @property
    def name(self) -> str:
        return f"net{self.net_index}.{self.subnet_index}"

    @property
    def length(self) -> int:
        return len(self.segments)


@dataclass
class GlobalRouting:
    """A complete global routing of a netlist on an architecture."""

    netlist: Netlist
    arch: FPGAArchitecture
    two_pin_nets: List[TwoPinNet] = field(default_factory=list)

    @property
    def num_two_pin_nets(self) -> int:
        return len(self.two_pin_nets)

    def segment_usage(self) -> Dict[Segment, int]:
        """Number of *distinct parent nets* crossing each segment.

        The maximum over segments lower-bounds the channel width needed.
        """
        usage: Dict[Segment, set] = {}
        for two_pin in self.two_pin_nets:
            for segment in two_pin.segments:
                usage.setdefault(segment, set()).add(two_pin.net_index)
        return {segment: len(nets) for segment, nets in usage.items()}

    def max_segment_usage(self) -> int:
        usage = self.segment_usage()
        return max(usage.values()) if usage else 0


class GlobalRouter:
    """Congestion-aware sequential global router."""

    def __init__(self, arch: FPGAArchitecture,
                 congestion_penalty: float = 0.5) -> None:
        if congestion_penalty < 0:
            raise ValueError("congestion_penalty must be non-negative")
        self.arch = arch
        self.congestion_penalty = congestion_penalty
        self._usage: Dict[Segment, int] = {}

    def route(self, netlist: Netlist) -> GlobalRouting:
        """Route every net; returns the full global routing.

        Nets are processed longest-HPWL-first (long nets have the fewest
        detour options), the usual ordering in sequential routers.
        """
        if netlist.cols != self.arch.cols or netlist.rows != self.arch.rows:
            raise ValueError("netlist and architecture grids differ")
        self._usage = {}
        routing = GlobalRouting(netlist=netlist, arch=self.arch)
        order = sorted(range(netlist.num_nets),
                       key=lambda i: -self._hpwl(netlist.nets[i]))
        for net_index in order:
            for two_pin in self._route_net(net_index, netlist.nets[net_index]):
                routing.two_pin_nets.append(two_pin)
        routing.two_pin_nets.sort(key=lambda t: (t.net_index, t.subnet_index))
        return routing

    @staticmethod
    def _hpwl(net: Net) -> int:
        xs = [p[0] for p in net.pins]
        ys = [p[1] for p in net.pins]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def _route_net(self, net_index: int, net: Net) -> List[TwoPinNet]:
        """Prim-style decomposition: connect each sink from the nearest
        already-connected pin, routing each 2-pin connection as we go."""
        connected: List[Position] = [net.source]
        remaining = list(net.sinks)
        result: List[TwoPinNet] = []
        subnet_index = 0
        while remaining:
            best = min(
                ((sink, anchor) for sink in remaining for anchor in connected),
                key=lambda pair: self.arch.manhattan_distance(pair[0], pair[1]))
            sink, anchor = best
            segments = self._route_two_pin(anchor, sink)
            result.append(TwoPinNet(net_index=net_index,
                                    subnet_index=subnet_index,
                                    source=anchor, sink=sink,
                                    segments=tuple(segments)))
            subnet_index += 1
            for segment in segments:
                self._usage[segment] = self._usage.get(segment, 0) + 1
            connected.append(sink)
            remaining.remove(sink)
        return result

    def _route_two_pin(self, source: Position, sink: Position) -> List[Segment]:
        """Dijkstra over segments from the source block to the sink block."""
        arch = self.arch
        targets = set(arch.block_segments(*sink))
        distances: Dict[Segment, float] = {}
        parents: Dict[Segment, Optional[Segment]] = {}
        heap: List[Tuple[float, int, Segment]] = []
        counter = 0
        for segment in arch.block_segments(*source):
            cost = self._segment_cost(segment)
            distances[segment] = cost
            parents[segment] = None
            heapq.heappush(heap, (cost, counter, segment))
            counter += 1
        while heap:
            cost, _, segment = heapq.heappop(heap)
            if cost > distances.get(segment, float("inf")):
                continue
            if segment in targets:
                return self._unwind(segment, parents)
            for neighbor in arch.segment_neighbors(segment):
                next_cost = cost + self._segment_cost(neighbor)
                if next_cost < distances.get(neighbor, float("inf")):
                    distances[neighbor] = next_cost
                    parents[neighbor] = segment
                    heapq.heappush(heap, (next_cost, counter, neighbor))
                    counter += 1
        raise AssertionError("segment graph is connected; route must exist")

    def _segment_cost(self, segment: Segment) -> float:
        return 1.0 + self.congestion_penalty * self._usage.get(segment, 0)

    @staticmethod
    def _unwind(segment: Segment,
                parents: Dict[Segment, Optional[Segment]]) -> List[Segment]:
        path = [segment]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])
        path.reverse()
        return path


def route_netlist(netlist: Netlist, congestion_penalty: float = 0.5) -> GlobalRouting:
    """Convenience: build the architecture from the netlist grid and route."""
    arch = FPGAArchitecture(netlist.cols, netlist.rows)
    return GlobalRouter(arch, congestion_penalty).route(netlist)
