"""A negotiation-based one-net-at-a-time detailed router (baseline).

The paper's §1 contrasts SAT-based detailed routing with "the
one-net-at-a-time approach used in most non-SAT-based FPGA detailed
routers": heuristics in the PathFinder family rip up and re-route nets
under rising congestion costs.  They are fast and usually find a routing
when one exists, but they can *never prove* that none exists — the
capability gap the SAT approach fills.

This module implements that baseline over the same track-preservation
model the SAT reduction uses: each 2-pin net must occupy a single track
index along its fixed global route, so detailed routing is exactly
conflict-graph coloring and "re-routing" a net means moving it to another
track.  Negotiation runs on top: every (segment, track) resource has a
congestion cost that grows with overuse history, and nets greedily pick
their cheapest track each iteration until either no resource is overused
(success, verified) or the iteration budget runs out (failure, *without*
an unroutability proof).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .detailed import RoutingCSP
from .global_route import GlobalRouting
from .tracks import TrackAssignment, verify_track_assignment


@dataclass
class NegotiationResult:
    """Outcome of a negotiation-based routing attempt.

    Unlike :class:`~repro.fpga.flow.DetailedRoutingResult`, a failure here
    carries **no proof**: ``assignment`` is None but the configuration may
    still be routable (the router just did not find it).
    """

    routing: GlobalRouting
    width: int
    success: bool
    assignment: Optional[TrackAssignment]
    iterations: int
    overused_history: List[int] = field(default_factory=list)

    @property
    def gave_up(self) -> bool:
        return not self.success


class PathFinderRouter:
    """Negotiated-congestion track assignment.

    Parameters
    ----------
    max_iterations:
        Rip-up/re-route rounds before giving up.
    present_factor_growth:
        Multiplier applied to the present-congestion penalty each
        iteration (PathFinder's ``pres_fac`` schedule).
    history_gain:
        Increment to a resource's history cost each iteration it stays
        overused.
    """

    def __init__(self, max_iterations: int = 50,
                 present_factor_growth: float = 1.5,
                 history_gain: float = 1.0) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if present_factor_growth < 1.0:
            raise ValueError("present_factor_growth must be >= 1")
        if history_gain < 0:
            raise ValueError("history_gain must be non-negative")
        self.max_iterations = max_iterations
        self.present_factor_growth = present_factor_growth
        self.history_gain = history_gain

    def route(self, csp: RoutingCSP) -> NegotiationResult:
        """Attempt a track assignment for ``csp.routing`` at ``csp.width``."""
        routing = csp.routing
        width = csp.width
        num_nets = routing.num_two_pin_nets
        graph = csp.problem.graph

        # Resource bookkeeping is per (conflict-graph vertex, track): a
        # vertex's cost for a track is driven by how many *conflicting*
        # vertices currently sit on that track, plus accumulated history.
        tracks: List[int] = [0] * num_nets
        history: Dict[Tuple[int, int], float] = {}
        present_factor = 1.0

        order = sorted(range(num_nets),
                       key=lambda v: -graph.degree(v))  # hardest first

        overused_history: List[int] = []
        for iteration in range(1, self.max_iterations + 1):
            # Re-route every net greedily against current occupancy.
            for vertex in order:
                tracks[vertex] = self._cheapest_track(
                    vertex, tracks, graph, width, history, present_factor)
            conflicts = self._conflicting_vertices(tracks, graph)
            overused_history.append(len(conflicts))
            if not conflicts:
                assignment = TrackAssignment(
                    routing=routing, width=width,
                    tracks={v: tracks[v] for v in range(num_nets)})
                violations = verify_track_assignment(assignment)
                if violations:  # defensive: negotiation must match verifier
                    raise AssertionError(
                        "negotiated assignment failed verification: "
                        + "; ".join(violations[:3]))
                return NegotiationResult(routing=routing, width=width,
                                         success=True, assignment=assignment,
                                         iterations=iteration,
                                         overused_history=overused_history)
            # Charge history on conflicted resources and raise pressure.
            for vertex in conflicts:
                key = (vertex, tracks[vertex])
                history[key] = history.get(key, 0.0) + self.history_gain
            present_factor *= self.present_factor_growth

        return NegotiationResult(routing=routing, width=width, success=False,
                                 assignment=None,
                                 iterations=self.max_iterations,
                                 overused_history=overused_history)

    @staticmethod
    def _conflicting_vertices(tracks: List[int], graph) -> List[int]:
        conflicted = set()
        for u, v in graph.edges():
            if tracks[u] == tracks[v]:
                conflicted.add(u)
                conflicted.add(v)
        return sorted(conflicted)

    def _cheapest_track(self, vertex: int, tracks: List[int], graph,
                        width: int, history, present_factor: float) -> int:
        neighbor_tracks: Dict[int, int] = {}
        for neighbor in graph.neighbors(vertex):
            track = tracks[neighbor]
            neighbor_tracks[track] = neighbor_tracks.get(track, 0) + 1
        best_track = 0
        best_cost = float("inf")
        for track in range(width):
            present = neighbor_tracks.get(track, 0) * present_factor
            cost = 1.0 + present + history.get((vertex, track), 0.0)
            if cost < best_cost:
                best_cost = cost
                best_track = track
        return best_track


def negotiate_tracks(csp: RoutingCSP, max_iterations: int = 50) -> NegotiationResult:
    """Convenience wrapper around :class:`PathFinderRouter`."""
    return PathFinderRouter(max_iterations=max_iterations).route(csp)
