"""Synthetic placed-netlist generation.

The paper routes the MCNC benchmark circuits using the global routings
shipped with SEGA-1.1.  Neither artifact is redistributable here, so this
generator synthesises placed netlists with the structural properties that
matter for the routing-to-coloring reduction (see DESIGN.md §2):

* *locality* — sink offsets follow a geometric-ish distance distribution,
  as placement tools produce, so routes are short and channel congestion
  is spatially correlated;
* *fanout distribution* — mostly 1-3 sink nets with a tail of higher
  fanout, as in technology-mapped MCNC circuits;
* *determinism* — everything is derived from a seed, so every benchmark
  instance is exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from .netlist import Net, Netlist

Position = Tuple[int, int]


@dataclass(frozen=True)
class CircuitSpec:
    """Parameters of one synthetic circuit."""

    name: str
    cols: int
    rows: int
    num_nets: int
    seed: int
    max_fanout: int = 4
    mean_distance: float = 2.0

    def __post_init__(self) -> None:
        if self.num_nets < 1:
            raise ValueError("a circuit needs at least one net")
        if self.max_fanout < 1:
            raise ValueError("max_fanout must be at least 1")
        if self.mean_distance <= 0:
            raise ValueError("mean_distance must be positive")
        if self.cols * self.rows < 2:
            raise ValueError("the array needs at least two blocks")


def _sample_fanout(rng: random.Random, max_fanout: int) -> int:
    """Mostly small fanouts with a geometric tail, clipped to max_fanout."""
    fanout = 1
    while fanout < max_fanout and rng.random() < 0.35:
        fanout += 1
    return fanout


def _sample_sink(rng: random.Random, spec: CircuitSpec,
                 source: Position) -> Position:
    """Sample a sink near the source (truncated geometric Manhattan radius)."""
    for _ in range(64):
        dx = round(rng.gauss(0, spec.mean_distance))
        dy = round(rng.gauss(0, spec.mean_distance))
        if dx == 0 and dy == 0:
            continue
        x, y = source[0] + dx, source[1] + dy
        if 0 <= x < spec.cols and 0 <= y < spec.rows:
            return (x, y)
    # Dense/small arrays: fall back to a uniform distinct block.
    while True:
        position = (rng.randrange(spec.cols), rng.randrange(spec.rows))
        if position != source:
            return position


def generate_netlist(spec: CircuitSpec) -> Netlist:
    """Generate the placed netlist described by ``spec`` (deterministic)."""
    rng = random.Random(spec.seed)
    nets: List[Net] = []
    for index in range(spec.num_nets):
        source = (rng.randrange(spec.cols), rng.randrange(spec.rows))
        fanout = _sample_fanout(rng, spec.max_fanout)
        sinks: List[Position] = []
        attempts = 0
        while len(sinks) < fanout and attempts < 256:
            attempts += 1
            sink = _sample_sink(rng, spec, source)
            if sink != source and sink not in sinks:
                sinks.append(sink)
        if not sinks:  # pathological tiny arrays
            alternatives = [(x, y) for x in range(spec.cols)
                            for y in range(spec.rows) if (x, y) != source]
            sinks = [rng.choice(alternatives)]
        nets.append(Net(name=f"n{index}", source=source, sinks=tuple(sinks)))
    return Netlist(spec.name, spec.cols, spec.rows, nets)
