"""Track assignments: decoding colorings back into detailed routes, and
the independent legality verifier.

The verifier re-checks the *routing-level* property (no two electrically
distinct nets on one track of one segment) directly against the global
routing, without going through the conflict graph — so it would catch a
bug in the reduction as well as one in an encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from .arch import Segment
from .detailed import RoutingCSP
from .global_route import GlobalRouting


@dataclass
class TrackAssignment:
    """A detailed routing: track index per 2-pin net."""

    routing: GlobalRouting
    width: int
    tracks: Dict[int, int]  # two-pin-net index -> track in 0..width-1

    def track_of(self, vertex: int) -> int:
        return self.tracks[vertex]


def assignment_from_coloring(csp: RoutingCSP,
                             coloring: Mapping[int, int]) -> TrackAssignment:
    """Interpret a conflict-graph coloring as a track assignment."""
    tracks = {vertex: coloring[vertex]
              for vertex in range(csp.num_two_pin_nets)}
    return TrackAssignment(routing=csp.routing, width=csp.width, tracks=tracks)


def verify_track_assignment(assignment: TrackAssignment) -> List[str]:
    """Check detailed-routing legality; returns violations (empty = legal).

    * every 2-pin net has a track in ``0..width-1``;
    * on every channel segment, 2-pin nets of different multi-pin nets
      occupy pairwise different tracks (track-preserving switch blocks make
      this the complete exclusivity condition).
    """
    routing = assignment.routing
    violations: List[str] = []
    for vertex, two_pin in enumerate(routing.two_pin_nets):
        if vertex not in assignment.tracks:
            violations.append(f"{two_pin.name}: no track assigned")
            continue
        track = assignment.tracks[vertex]
        if not 0 <= track < assignment.width:
            violations.append(
                f"{two_pin.name}: track {track} outside 0..{assignment.width - 1}")

    occupancy: Dict[Segment, Dict[int, int]] = {}
    for vertex, two_pin in enumerate(routing.two_pin_nets):
        track = assignment.tracks.get(vertex)
        if track is None:
            continue
        for segment in two_pin.segments:
            holders = occupancy.setdefault(segment, {})
            if track in holders:
                other = holders[track]
                if routing.two_pin_nets[other].net_index != two_pin.net_index:
                    violations.append(
                        f"segment {segment} track {track}: nets "
                        f"{routing.two_pin_nets[other].name} and "
                        f"{two_pin.name} collide")
            else:
                holders[track] = vertex
    return violations


def is_legal(assignment: TrackAssignment) -> bool:
    """True iff the assignment is a legal detailed routing."""
    return not verify_track_assignment(assignment)
