"""Placed netlists: logic blocks at grid positions and multi-pin nets.

Only what detailed routing needs is modelled: a net has one source block
and one or more sink blocks, all already placed (the MCNC benchmarks the
paper uses come placed and globally routed via SEGA; our synthetic
generator in :mod:`repro.fpga.generate` plays that role).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

Position = Tuple[int, int]


@dataclass(frozen=True)
class Net:
    """A multi-pin net: one source, ``len(sinks)`` sinks."""

    name: str
    source: Position
    sinks: Tuple[Position, ...]

    def __post_init__(self) -> None:
        if not self.sinks:
            raise ValueError(f"net {self.name!r} has no sinks")
        if self.source in self.sinks:
            raise ValueError(f"net {self.name!r} lists its source as a sink")
        if len(set(self.sinks)) != len(self.sinks):
            raise ValueError(f"net {self.name!r} repeats a sink")

    @property
    def fanout(self) -> int:
        return len(self.sinks)

    @property
    def pins(self) -> List[Position]:
        return [self.source] + list(self.sinks)


class Netlist:
    """A collection of placed nets on a ``cols × rows`` array."""

    def __init__(self, name: str, cols: int, rows: int,
                 nets: Iterable[Net] = ()) -> None:
        if cols < 1 or rows < 1:
            raise ValueError("the array needs at least one block")
        self.name = name
        self.cols = cols
        self.rows = rows
        self.nets: List[Net] = []
        names = set()
        for net in nets:
            self.add_net(net, _names=names)

    def add_net(self, net: Net, _names=None) -> None:
        """Add a net, validating placement and name uniqueness."""
        for x, y in net.pins:
            if not (0 <= x < self.cols and 0 <= y < self.rows):
                raise ValueError(
                    f"net {net.name!r} pin ({x},{y}) outside the "
                    f"{self.cols}x{self.rows} array")
        existing = _names if _names is not None else {n.name for n in self.nets}
        if net.name in existing:
            raise ValueError(f"duplicate net name {net.name!r}")
        if _names is not None:
            _names.add(net.name)
        self.nets.append(net)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    @property
    def num_pins(self) -> int:
        return sum(1 + net.fanout for net in self.nets)

    def total_wirelength_lower_bound(self) -> int:
        """Sum over nets of the half-perimeter wirelength (HPWL)."""
        total = 0
        for net in self.nets:
            xs = [p[0] for p in net.pins]
            ys = [p[1] for p in net.pins]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    def __repr__(self) -> str:
        return (f"Netlist({self.name!r}, {self.cols}x{self.rows}, "
                f"nets={len(self.nets)})")
