"""End-to-end smoke check for the solve service (CI's ``serve-smoke``).

Boots a :class:`~repro.serve.server.SolveService` on an ephemeral
loopback port, submits a small mixed SAT/UNSAT corpus twice over the
JSON-lines protocol, and asserts:

* every answer is correct (expected status) and audit-verified,
* the second pass is served (almost) entirely from the cache,
* the metrics dump carries the cache hit/miss/fill counters,
* the server shuts down cleanly.

Run with ``python -m repro.serve.smoke`` (or ``make serve-smoke``).
Exit code 0 on success, 1 on any failed check.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
import threading
from typing import List, Optional, Tuple

from .. import api
from ..coloring.instances import book_graph, mycielski_graph, wheel_graph
from ..coloring.problem import Graph
from ..obs.report import render_metrics
from ..sat.status import SolveStatus
from .client import ServeClient
from .server import SolveService

#: (name, graph, K, expected status) — tiny instances, mixed verdicts.
def _corpus() -> List[Tuple[str, Graph, int, SolveStatus]]:
    return [
        ("wheel7-K4", wheel_graph(7), 4, SolveStatus.SAT),
        ("wheel7-K3", wheel_graph(7), 3, SolveStatus.UNSAT),
        ("mycielski4-K4", mycielski_graph(4), 4, SolveStatus.SAT),
        ("mycielski4-K3", mycielski_graph(4), 3, SolveStatus.UNSAT),
        ("book5-K3", book_graph(5), 3, SolveStatus.SAT),
        ("book5-K2", book_graph(5), 2, SolveStatus.UNSAT),
    ]


def _serve_in_thread(service: SolveService) -> threading.Thread:
    """Run the service's event loop on a daemon thread; returns once
    the listener is bound (service.port is real)."""
    bound = threading.Event()
    failure: List[BaseException] = []

    def _main() -> None:
        async def _run() -> None:
            await service.start()
            bound.set()
            await service.serve_forever()
        try:
            asyncio.run(_run())
        except BaseException as error:  # surface instead of dying silently
            failure.append(error)
            bound.set()

    thread = threading.Thread(target=_main, name="serve-smoke-server",
                              daemon=True)
    thread.start()
    if not bound.wait(timeout=30) or failure:
        raise RuntimeError(f"server failed to start: "
                           f"{failure[0] if failure else 'timeout'}")
    return thread


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="serve-smoke: boot, submit a corpus twice, "
                    "assert cache hits")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--job-timeout", type=float, default=120.0)
    parser.add_argument("--min-hit-rate", type=float, default=0.9,
                        help="required cached fraction of the second pass")
    args = parser.parse_args(argv)

    corpus = _corpus()
    failures: List[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)
            print(f"FAIL {message}")

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        service = SolveService(port=0, workers=args.workers,
                               cache_dir=tmp, job_timeout=args.job_timeout)
        thread = _serve_in_thread(service)
        print(f"server up on {service.host}:{service.port} "
              f"({args.workers} workers, disk cache at {tmp})")

        with ServeClient(service.host, service.port) as client:
            client.ping()
            requests = [api.SolveRequest(graph=graph, colors=colors,
                                         client="smoke", tag=name)
                        for name, graph, colors, _ in corpus]

            for label, expect_cached in (("first", False), ("second", True)):
                cached_count = 0
                for (name, _, _, expected), request in zip(corpus, requests):
                    response = client.solve(request)
                    cached_count += bool(response.cached)
                    check(response.status is expected,
                          f"{label} pass {name}: status {response.status}, "
                          f"expected {expected}")
                    check(response.audit == "PASS",
                          f"{label} pass {name}: audit verdict "
                          f"{response.audit!r}, expected PASS")
                    check(response.tag == name,
                          f"{label} pass {name}: tag {response.tag!r} "
                          f"not echoed")
                rate = cached_count / len(corpus)
                print(f"{label} pass: {cached_count}/{len(corpus)} cached")
                if expect_cached:
                    check(rate >= args.min_hit_rate,
                          f"second-pass cache rate {rate:.0%} below "
                          f"{args.min_hit_rate:.0%}")
                else:
                    check(cached_count == 0,
                          f"first pass unexpectedly cached {cached_count}")

            dump = client.metrics()
            cache_counts = dump.get("cache", {})
            print(f"cache counters: {cache_counts}")
            check(cache_counts.get("hits", 0) >= len(corpus),
                  f"expected >= {len(corpus)} cache hits, "
                  f"got {cache_counts.get('hits')}")
            check(cache_counts.get("fills", 0) == len(corpus),
                  f"expected {len(corpus)} fills, "
                  f"got {cache_counts.get('fills')}")
            counters = (dump.get("metrics") or {}).get("counters") or {}
            for name in ("serve.cache.hits", "serve.cache.misses",
                         "serve.cache.fills"):
                check(name in counters, f"metrics dump missing {name}")
            print(render_metrics(dump["metrics"]))
            client.shutdown()

        thread.join(timeout=30)
        check(not thread.is_alive(), "server thread did not stop")

    if failures:
        print(f"serve-smoke: {len(failures)} check(s) failed")
        return 1
    print("serve-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
