"""Blocking JSON-lines client for :class:`repro.serve.server.SolveService`.

Deliberately synchronous: callers are scripts, tests and the ``repro
submit`` CLI command, none of which want an event loop.  One persistent
connection per client; requests and replies are strictly
request/response over it.

For anything that must survive a flaky network, a restarting server or
a solve that outlives one socket timeout, use
:class:`repro.serve.resilience.ResilientClient` — the retrying,
circuit-breaking wrapper around this class.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Optional

from .. import api

#: Sentinel so ``timeout=None`` (block forever) stays expressible.
_UNSET = object()


class ServeError(RuntimeError):
    """The server answered ``ok: false`` (or the connection died)."""


class ServeRejected(ServeError):
    """Admission control refused the job (queue full, client cap,
    instance too large, or quarantine) — resubmission later may work."""


class ServeClient:
    """A connected client; usable as a context manager.

    ``timeout`` is the *default* bound on each blocking socket
    operation.  :meth:`solve` derives a per-request bound from its
    ``deadline`` argument (or the request's own wall-clock budget via
    :class:`~repro.serve.resilience.ResilientClient`), so a slow solve
    under a generous budget no longer masquerades as a dead server and
    a short probe no longer waits out the full default.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7227,
                 timeout: Optional[float] = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._sock.makefile("rwb")

    # -- plumbing ------------------------------------------------------

    def _call(self, envelope: Dict, timeout=_UNSET) -> Dict:
        """One request/response exchange.  ``timeout`` overrides the
        default socket timeout for this exchange only."""
        self._sock.settimeout(self.timeout if timeout is _UNSET
                              else timeout)
        self._stream.write(json.dumps(envelope).encode("utf-8") + b"\n")
        self._stream.flush()
        line = self._stream.readline()
        if not line:
            raise ServeError("server closed the connection")
        reply = json.loads(line)
        if not isinstance(reply, dict):
            raise ServeError(f"malformed reply: {reply!r}")
        return reply

    def close(self) -> None:
        try:
            self._stream.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- operations ----------------------------------------------------

    def ping(self, timeout=_UNSET) -> Dict:
        """Liveness check; returns the server's ping reply."""
        reply = self._call({"op": "ping"}, timeout=timeout)
        if not reply.get("ok"):
            raise ServeError(reply.get("error", "ping failed"))
        return reply

    def solve(self, request: "api.SolveRequest",
              deadline: Optional[float] = None) -> "api.SolveResponse":
        """Submit one request and block for its response.

        ``deadline`` bounds this call's socket operations, in seconds;
        omitted, the client-wide default ``timeout`` applies.  Raises
        :class:`ServeRejected` on admission refusal and
        :class:`ServeError` on protocol/server errors; solver trouble
        (timeouts, budget exhaustion, worker errors) comes back as a
        normal response with the corresponding status.
        """
        reply = self._call({"op": "solve", "request": request.to_wire()},
                           timeout=(deadline if deadline is not None
                                    else _UNSET))
        if not reply.get("ok"):
            message = str(reply.get("error", "unknown server error"))
            if reply.get("rejected"):
                raise ServeRejected(message)
            raise ServeError(message)
        return api.SolveResponse.from_wire(reply["response"])

    def metrics(self, timeout=_UNSET) -> Dict:
        """The server's ``/metrics``-style dump: ``metrics`` (registry
        snapshot), ``cache`` (counters + occupancy), ``admission`` —
        plus ``journal`` and ``watchdog`` sections when those are on."""
        reply = self._call({"op": "metrics"}, timeout=timeout)
        if not reply.get("ok"):
            raise ServeError(reply.get("error", "metrics failed"))
        return reply

    def shutdown(self) -> None:
        """Ask the server to drain and exit (the reply is the bye)."""
        try:
            self._call({"op": "shutdown"})
        except (ServeError, OSError):
            pass  # the server may win the race and close first
