"""Blocking JSON-lines client for :class:`repro.serve.server.SolveService`.

Deliberately synchronous: callers are scripts, tests and the ``repro
submit`` CLI command, none of which want an event loop.  One persistent
connection per client; requests and replies are strictly
request/response over it.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Optional

from .. import api


class ServeError(RuntimeError):
    """The server answered ``ok: false`` (or the connection died)."""


class ServeRejected(ServeError):
    """Admission control refused the job (queue full, client cap,
    instance too large, or quarantine) — resubmission later may work."""


class ServeClient:
    """A connected client; usable as a context manager.

    ``timeout`` bounds each blocking socket operation — set it above
    the server's ``job_timeout`` or slow solves will look like dead
    connections.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7227,
                 timeout: Optional[float] = 300.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._sock.makefile("rwb")

    # -- plumbing ------------------------------------------------------

    def _call(self, envelope: Dict) -> Dict:
        self._stream.write(json.dumps(envelope).encode("utf-8") + b"\n")
        self._stream.flush()
        line = self._stream.readline()
        if not line:
            raise ServeError("server closed the connection")
        reply = json.loads(line)
        if not isinstance(reply, dict):
            raise ServeError(f"malformed reply: {reply!r}")
        return reply

    def close(self) -> None:
        try:
            self._stream.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- operations ----------------------------------------------------

    def ping(self) -> Dict:
        """Liveness check; returns the server's ping reply."""
        reply = self._call({"op": "ping"})
        if not reply.get("ok"):
            raise ServeError(reply.get("error", "ping failed"))
        return reply

    def solve(self, request: "api.SolveRequest") -> "api.SolveResponse":
        """Submit one request and block for its response.

        Raises :class:`ServeRejected` on admission refusal and
        :class:`ServeError` on protocol/server errors; solver trouble
        (timeouts, budget exhaustion, worker errors) comes back as a
        normal response with the corresponding status.
        """
        reply = self._call({"op": "solve", "request": request.to_wire()})
        if not reply.get("ok"):
            message = str(reply.get("error", "unknown server error"))
            if reply.get("rejected"):
                raise ServeRejected(message)
            raise ServeError(message)
        return api.SolveResponse.from_wire(reply["response"])

    def metrics(self) -> Dict:
        """The server's ``/metrics``-style dump: ``metrics`` (registry
        snapshot), ``cache`` (counters + occupancy), ``admission``."""
        reply = self._call({"op": "metrics"})
        if not reply.get("ok"):
            raise ServeError(reply.get("error", "metrics failed"))
        return reply

    def shutdown(self) -> None:
        """Ask the server to drain and exit (the reply is the bye)."""
        try:
            self._call({"op": "shutdown"})
        except (ServeError, OSError):
            pass  # the server may win the race and close first
