"""repro.serve — the solver as a long-running service.

A thin asyncio front end (:class:`~repro.serve.server.SolveService`)
accepts :class:`repro.api.SolveRequest` wire payloads over a JSON-lines
TCP protocol, runs them on a persistent worker-process pool, and answers
with :class:`repro.api.SolveResponse` payloads.  Between the two sits
the piece that makes a service worthwhile for benchmark-style workloads
(the same instances resubmitted across sweeps, CI runs and parameter
studies): a **content-addressed result cache**
(:class:`~repro.serve.cache.ResultCache`) keyed by the SHA-256 of the
canonical instance bytes plus (K, strategies, limits).  Fills are
audit-verified (:mod:`repro.reliability.audit`) before they may be
served to anyone else; hits skip the pool entirely.

Admission control (:class:`~repro.serve.admission.AdmissionController`)
bounds the queue, caps per-client concurrency, clamps every job's
budget under a server-wide :class:`~repro.sat.status.SolveLimits`
ceiling, and quarantines clients whose jobs keep erroring — reusing
:class:`repro.reliability.quarantine.QuarantineTracker` unchanged.

Operational counters (hits, misses, evictions, fills, admission
rejections, per-status job counts) land in :mod:`repro.obs.metrics`
under the ``serve.*`` prefix and are served by the ``metrics`` op — the
``/metrics``-style dump endpoint.

The service is built to *stay up* (see ``docs/serving.md`` →
"Resilience"): a :class:`~repro.serve.resilience.WorkerWatchdog`
SIGKILLs wedged workers and reclaims their pool slots; a durable
write-ahead :class:`~repro.serve.journal.RequestJournal` makes every
admitted request survive a server crash (replayed on the next boot
through the same audit-guarded cache-fill path); ``SIGTERM`` and the
``shutdown`` op drain instead of dropping in-flight work; and
:class:`~repro.serve.resilience.ResilientClient` wraps
:class:`~repro.serve.client.ServeClient` with per-request deadlines,
jittered-backoff retries (safe — submission is idempotent by content
address) and a half-open circuit breaker.

See ``docs/serving.md`` for the architecture and the cache-invalidation
rules, ``repro serve`` / ``repro submit`` for the CLI,
``python -m repro.serve.smoke`` for the end-to-end smoke check and
``python -m repro.serve.chaos`` for the crash/recovery chaos suite.
"""

from .admission import AdmissionController, AdmissionDecision, AdmissionPolicy
from .cache import ResultCache
from .client import ServeClient, ServeError, ServeRejected
from .journal import MAX_RECOVERY_ATTEMPTS, PendingEntry, RequestJournal
from .resilience import (CircuitBreaker, CircuitOpenError, JobHeartbeat,
                         ResilientClient, RetryPolicy, WorkerWatchdog)
from .server import SolveService

__all__ = [
    "AdmissionController", "AdmissionDecision", "AdmissionPolicy",
    "CircuitBreaker", "CircuitOpenError", "JobHeartbeat",
    "MAX_RECOVERY_ATTEMPTS", "PendingEntry", "RequestJournal",
    "ResilientClient", "ResultCache", "RetryPolicy", "ServeClient",
    "ServeError", "ServeRejected", "SolveService", "WorkerWatchdog",
]
