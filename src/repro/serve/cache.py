"""Content-addressed result cache: in-memory LRU over an on-disk store.

The key is :meth:`repro.api.SolveRequest.cache_key` — SHA-256 of the
canonical instance bytes plus (K, strategies, limits).  Because the
canonical serialization sorts edges, equal graphs hash equally no matter
how they were built, while any change to the question (K, strategy set,
budget) or to the instance itself (a relabeling *is* a different graph)
misses.  The cached value is a :class:`repro.api.SolveResponse` wire
dict — plain JSON either layer can store.

Two layers:

* **Memory** — an ``OrderedDict`` LRU bounded by ``capacity`` entries.
  Hits move to the MRU end; inserting past capacity evicts the LRU
  entry (to disk it is not a loss — the entry was persisted at fill
  time).
* **Disk** (optional) — one JSON file per digest under
  ``<dir>/<digest[:2]>/<digest>.json`` (two-hex-char sharding keeps
  directories small).  Writes go through a temp file in the same
  directory followed by :func:`os.replace`, so a crashed or concurrent
  writer can never leave a torn entry; readers treat unparsable files
  as misses and delete them.  A memory miss that hits disk is promoted
  back into the LRU.

On top of exact content-address lookups the cache keeps a **superset
index**: server fills are stamped with the request's *base* digest
(instance + K + limits, strategies excluded) and its strategy labels.
A request whose strategy set is a superset of a cached **decided**
answer's for the same base is served that answer
(:meth:`ResultCache.superset_get`) — sound because SAT/UNSAT is a
property of the instance, not of which strategy found it first, and a
portfolio over the larger set would have accepted the same first
decided answer.  Undecided cached entries never satisfy a superset
lookup: a budgeted TIMEOUT under fewer strategies says nothing about
the bigger race.

A server restarted over the same disk directory can **warm-start**
(:meth:`ResultCache.warm_start`): the most recently written disk
entries are promoted into the LRU (and the superset index) up front,
so the first pass after a restart hits memory instead of paying a disk
read per request.

Counters (hits, misses, disk hits, fills, evictions, superset hits,
warm-started entries) are kept on the cache itself and mirrored into
:mod:`repro.obs.metrics` under ``serve.cache.*`` when metrics are
enabled.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

from ..obs import metrics as obs_metrics

#: Registry prefix for the mirrored counters.
_METRIC_PREFIX = "serve.cache."


class ResultCache:
    """LRU + optional disk store for solve-response wire dicts.

    Thread-safe: the server's event loop and any background fill path
    share one lock around the LRU and the counters.  Disk I/O happens
    inside the lock too — entries are small (one JSON response) and the
    simplicity is worth more than the parallelism here.
    """

    def __init__(self, capacity: int = 256,
                 disk_dir: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.disk_dir = disk_dir
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict]" = OrderedDict()
        #: Superset index: base digest (instance+K+limits, no
        #: strategies) → digests of entries filled under that base.
        self._by_base: Dict[str, List[str]] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.fills = 0
        self.evictions = 0
        self.superset_hits = 0
        self.warm_started = 0
        if disk_dir:
            os.makedirs(disk_dir, exist_ok=True)

    # -- lookup --------------------------------------------------------

    def get(self, digest: str) -> Optional[Dict]:
        """The cached response wire dict for ``digest``, or None.

        Returns a shallow copy — callers stamp provenance fields
        (``cached``, ``tag``) onto the result without mutating the
        stored entry.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self._entries.move_to_end(digest)
                self.hits += 1
                self._mirror("hits")
                return dict(entry)
            entry = self._disk_read(digest)
            if entry is not None:
                self.hits += 1
                self.disk_hits += 1
                self._mirror("hits")
                self._mirror("disk_hits")
                self._insert(digest, entry)
                return dict(entry)
            self.misses += 1
            self._mirror("misses")
            return None

    def superset_get(self, base: str,
                     labels: Iterable[str]) -> Optional[Dict]:
        """A cached *decided* answer whose strategy set is a subset of
        ``labels``, for the same ``base`` digest — or None.

        The exact content address should be tried first (:meth:`get`);
        this is the fallback for a request racing *more* strategies
        than a previous submitter did.  Only decided (SAT/UNSAT)
        entries qualify: an undecided stop under fewer strategies says
        nothing about the larger race.
        """
        wanted = set(labels)
        with self._lock:
            digests = self._by_base.get(base)
            if not digests:
                return None
            for digest in list(digests):
                entry = self._entries.get(digest)
                if entry is None:
                    entry = self._disk_read(digest)
                    if entry is None:
                        digests.remove(digest)  # evicted and gone
                        continue
                    self._insert(digest, entry)
                cached_set = entry.get("strategies")
                if not cached_set or not set(cached_set) <= wanted:
                    continue
                if entry.get("status") not in ("SAT", "UNSAT"):
                    continue
                self._entries.move_to_end(digest)
                self.superset_hits += 1
                self._mirror("superset_hits")
                return dict(entry)
            return None

    # -- fill ----------------------------------------------------------

    def put(self, digest: str, payload: Dict) -> None:
        """Store ``payload`` under ``digest`` (memory + disk).

        The caller decides *what* is cacheable — the server only fills
        with decided, audit-verified responses.
        """
        with self._lock:
            self.fills += 1
            self._mirror("fills")
            self._insert(digest, dict(payload))
            self._disk_write(digest, payload)

    def _insert(self, digest: str, payload: Dict) -> None:
        self._entries[digest] = payload
        self._entries.move_to_end(digest)
        base = payload.get("base")
        if base and payload.get("strategies"):
            digests = self._by_base.setdefault(base, [])
            if digest not in digests:
                digests.append(digest)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._mirror("evictions")

    # -- warm start ----------------------------------------------------

    def warm_start(self, limit: Optional[int] = None) -> int:
        """Promote the most recently written disk entries into the LRU
        (up to ``limit``, default the cache capacity).  Returns the
        number of entries loaded; counted under
        ``serve.cache.warm_start``.  A no-op without a disk dir."""
        if not self.disk_dir:
            return 0
        budget = min(limit if limit is not None else self.capacity,
                     self.capacity)
        candidates: List[tuple] = []
        try:
            shards = os.listdir(self.disk_dir)
        except OSError:
            return 0
        for shard in shards:
            shard_dir = os.path.join(self.disk_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            try:
                names = os.listdir(shard_dir)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".json") or name.startswith("."):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    mtime = os.path.getmtime(path)
                except OSError:
                    continue
                candidates.append((mtime, name[:-len(".json")]))
        candidates.sort(reverse=True)  # newest answers are hottest
        loaded = 0
        with self._lock:
            for _, digest in candidates[:budget]:
                if digest in self._entries:
                    continue
                entry = self._disk_read(digest)
                if entry is None:
                    continue
                self._insert(digest, entry)
                loaded += 1
            self.warm_started += loaded
            if loaded:
                self._mirror("warm_start", loaded)
        return loaded

    # -- disk layer ----------------------------------------------------

    def _path(self, digest: str) -> str:
        return os.path.join(self.disk_dir, digest[:2], digest + ".json")

    def _disk_read(self, digest: str) -> Optional[Dict]:
        if not self.disk_dir:
            return None
        path = self._path(digest)
        try:
            with open(path, "r", encoding="utf-8") as stream:
                entry = json.load(stream)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # A torn or corrupt entry is a miss, and rot: drop the file
            # so the next fill rewrites it cleanly.
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        return entry if isinstance(entry, dict) else None

    def _disk_write(self, digest: str, payload: Dict) -> None:
        if not self.disk_dir:
            return
        path = self._path(digest)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        # Atomic publish: temp file in the same directory, then replace.
        descriptor, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as stream:
                json.dump(payload, stream, sort_keys=True)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # -- introspection -------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Counter snapshot plus current occupancy (the ``metrics`` op's
        ``cache`` section)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "disk_hits": self.disk_hits, "fills": self.fills,
                    "evictions": self.evictions,
                    "superset_hits": self.superset_hits,
                    "warm_started": self.warm_started,
                    "entries": len(self._entries),
                    "capacity": self.capacity}

    @property
    def hit_rate(self) -> float:
        """Hits over lookups so far (0.0 before any lookup)."""
        with self._lock:
            lookups = self.hits + self.misses
            return self.hits / lookups if lookups else 0.0

    def clear(self) -> None:
        """Drop the memory layer (disk entries survive — they are the
        persistent store a restarted server warms from)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    @staticmethod
    def _mirror(name: str, amount: int = 1) -> None:
        if obs_metrics.enabled():
            obs_metrics.registry().inc(_METRIC_PREFIX + name, amount)
