"""Admission control and per-client budgets for the solve service.

Everything here reuses the result-contract and reliability vocabulary
the rest of the stack already speaks: budgets are
:class:`repro.sat.status.SolveLimits` (the server's ceiling is *merged*
with the request's own budget, tighter bound per axis, exactly like the
batch runner does), and misbehaving clients sit out via
:class:`repro.reliability.quarantine.QuarantineTracker` — the same
offence/backoff machinery that quarantines crashing strategies in
:func:`repro.bench.batch.run_batch`, keyed by client name instead of
strategy label.

The controller answers one question per request — *may this run, and
under what budget?* — and records one fact per finished job — *did this
client's job error?*  ERROR outcomes (worker crashes, audit failures)
count as offences; enough of them inside the policy's threshold put the
client behind an exponential-backoff curtain.  TIMEOUT and
BUDGET_EXHAUSTED do **not** count: hitting a budget is the budget
working, not misbehaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..reliability.quarantine import QuarantinePolicy, QuarantineTracker
from ..sat.status import SolveLimits, SolveStatus


@dataclass(frozen=True)
class AdmissionPolicy:
    """Server-side knobs (see ``docs/serving.md``).

    Attributes
    ----------
    max_queue_depth:
        Reject new work once this many jobs are in flight or queued on
        the pool (backpressure instead of unbounded buffering).
    max_inflight_per_client:
        Fairness cap: one client may not occupy more than this many
        pool slots at once.
    max_vertices:
        Reject instances larger than this outright (an encoding for a
        huge graph can exhaust the worker's memory before any solver
        budget applies).  ``None`` disables the check.
    job_limits:
        The server-wide budget ceiling.  Each admitted job runs under
        ``job_limits.merge(request.limits)`` — a client can tighten its
        own budget but never exceed the server's.
    quarantine:
        Offence/backoff policy for clients whose jobs keep erroring
        (None = :class:`QuarantinePolicy` defaults).
    """

    max_queue_depth: int = 64
    max_inflight_per_client: int = 8
    max_vertices: Optional[int] = 100_000
    job_limits: Optional[SolveLimits] = None
    quarantine: Optional[QuarantinePolicy] = None


@dataclass
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    #: Human-readable rejection reason ("" when admitted).
    reason: str = ""
    #: Effective budget for the job (server ceiling merged with the
    #: request's own limits); None when rejected or truly unlimited.
    limits: Optional[SolveLimits] = None


class AdmissionController:
    """Tracks in-flight work per client and applies the policy.

    Single-threaded by design: the asyncio server calls it only from
    the event loop, so no lock is needed.  ``begin``/``finish`` must
    bracket every admitted job (the server does this in a
    try/finally).
    """

    def __init__(self, policy: Optional[AdmissionPolicy] = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self._inflight: Dict[str, int] = {}
        self._total_inflight = 0
        self._tracker = QuarantineTracker(self.policy.quarantine)
        self.admitted = 0
        self.rejected = 0
        #: Rejection counts by reason kind (the ``metrics`` op exposes
        #: this — it is how an operator sees *why* work bounces).
        self.rejections: Dict[str, int] = {}

    # -- the gate ------------------------------------------------------

    def admit(self, client: str, num_vertices: int,
              limits: Optional[SolveLimits] = None) -> AdmissionDecision:
        """Decide whether one job may enter the pool right now."""
        policy = self.policy
        now = time.monotonic()
        if self._tracker.quarantined(client or "", now):
            release = self._tracker.release_time(client or "")
            return self._reject(
                "quarantined",
                f"client {client or '<anonymous>'} is quarantined for "
                f"{max(0.0, release - now):.1f}s after repeated errors")
        if self._total_inflight >= policy.max_queue_depth:
            return self._reject(
                "queue_full",
                f"queue depth {self._total_inflight} at capacity "
                f"{policy.max_queue_depth}")
        if self._inflight.get(client, 0) >= policy.max_inflight_per_client:
            return self._reject(
                "client_cap",
                f"client {client or '<anonymous>'} already has "
                f"{self._inflight.get(client, 0)} jobs in flight "
                f"(cap {policy.max_inflight_per_client})")
        if policy.max_vertices is not None \
                and num_vertices > policy.max_vertices:
            return self._reject(
                "too_large",
                f"instance has {num_vertices} vertices "
                f"(server cap {policy.max_vertices})")
        self.admitted += 1
        effective = limits
        if policy.job_limits is not None:
            effective = policy.job_limits.merge(limits)
        return AdmissionDecision(admitted=True, limits=effective)

    def _reject(self, kind: str, reason: str) -> AdmissionDecision:
        self.rejected += 1
        self.rejections[kind] = self.rejections.get(kind, 0) + 1
        return AdmissionDecision(admitted=False, reason=reason)

    # -- in-flight accounting -----------------------------------------

    def begin(self, client: str) -> None:
        """An admitted job entered the pool."""
        self._inflight[client] = self._inflight.get(client, 0) + 1
        self._total_inflight += 1

    def finish(self, client: str, status: SolveStatus,
               detail: str = "") -> None:
        """An admitted job left the pool; records offences.

        ERROR is an offence (crash, audit failure); everything else —
        including TIMEOUT and BUDGET_EXHAUSTED, which mean the budget
        *worked* — counts as a success for backoff-decay purposes.
        """
        count = self._inflight.get(client, 0)
        if count <= 1:
            self._inflight.pop(client, None)
        else:
            self._inflight[client] = count - 1
        self._total_inflight = max(0, self._total_inflight - 1)
        if status is SolveStatus.ERROR:
            self._tracker.record_offence(client or "", detail or "job error",
                                         time.monotonic())
        else:
            self._tracker.record_success(client or "")

    @property
    def inflight(self) -> int:
        return self._total_inflight

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view for the ``metrics`` op."""
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rejections": dict(self.rejections),
            "inflight": self._total_inflight,
            "inflight_by_client": dict(self._inflight),
            "quarantine": self._tracker.snapshot(),
        }
