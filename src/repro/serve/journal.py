"""Durable write-ahead request journal for the solve service.

The service's promise is *zero lost admitted requests*: once admission
control says yes, the request must eventually produce an answer — even
if the server process is SIGKILLed with the job still on the worker
pool.  The journal is how that promise survives a crash:

* **admit** is written (and fsync'd) *before* the job enters the pool:
  the full request wire dict keyed by its content digest, so a fresh
  process can reconstruct and re-run the exact request.
* **done** is written once a response was produced for the digest —
  any terminal status counts, because the submitter got an answer.
* **attempt** is written by recovery *before* replaying an entry, so a
  request that crashes the server during replay is counted across
  boots and **poison**-marked (skipped forever) after
  ``MAX_RECOVERY_ATTEMPTS`` tries instead of crash-looping recovery.

Storage is append-only JSON Lines in numbered segment files
(``journal-000001.jsonl`` …) inside one directory.  Appends go to the
highest-numbered segment as a single ``write`` followed by ``fsync``
(configurable off for tests).  When the active segment outgrows
``segment_max_bytes`` the journal **rotates**: the still-pending state
(admits with their accumulated attempt counts) is carried forward into
the next segment via a temp file + ``os.replace`` + directory fsync —
an atomic publish, exactly like the result cache's disk writes — and
the older segments are deleted.  Rotation is therefore also
compaction: completed entries vanish with their segment.

Recovery (:meth:`RequestJournal.pending`) replays every segment in
order.  A torn final line — a crash or an injected
``journal_torn_write`` fault mid-append — parses as garbage and is
dropped (counted in ``torn_lines``); every complete record before it
is honoured.  A torn *admit* is safe to drop: the fsync had not
returned, so the submitter never got past admission.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..obs import metrics as obs_metrics
from ..reliability.faults import FaultInjector, FaultPlan

#: Registry prefix for the mirrored counters.
_METRIC_PREFIX = "serve.journal."

#: Recovery gives up on an entry after this many crashed replays.
MAX_RECOVERY_ATTEMPTS = 2

_SEGMENT_RE = re.compile(r"^journal-(\d{6})\.jsonl$")


def _segment_name(seq: int) -> str:
    return f"journal-{seq:06d}.jsonl"


@dataclass
class PendingEntry:
    """One admitted-but-unfinished request, as recovered from disk."""

    digest: str
    request: Dict
    #: Crashed recovery attempts so far (across boots).
    attempts: int = 0


class RequestJournal:
    """Append-only, crash-recoverable record of admitted requests.

    Single-writer by design: the asyncio server appends only from its
    event loop.  Appends are small (one JSON line) and fsync'd, so the
    durability point of ``record_admit`` is its return — the server
    must not submit the job to the pool before that.
    """

    def __init__(self, directory: str, segment_max_bytes: int = 1 << 20,
                 fsync: bool = True, faults=None) -> None:
        self.directory = directory
        self.segment_max_bytes = segment_max_bytes
        self.fsync = fsync
        plan = FaultPlan.resolve(faults)
        self._injector = (FaultInjector(plan, label="journal",
                                        sites=("journal",))
                          if plan is not None else None)
        self.appends = 0
        self.rotations = 0
        self.torn_lines = 0
        #: Poison marks seen by the last :meth:`pending` scan (rotation
        #: carries them forward so the mark outlives compaction).
        self._poisoned_items: List = []
        #: True while the active segment ends in a torn half-line.
        self._torn_tail = False
        self._stream = None
        os.makedirs(directory, exist_ok=True)
        self._seq = max(self._segments() or [0])
        if self._seq == 0:
            self._seq = 1
        self._open_active()

    # -- the write path ------------------------------------------------

    def record_admit(self, digest: str, request_wire: Dict) -> None:
        """Durably record one admitted request *before* it runs."""
        self._append({"type": "admit", "digest": digest,
                      "request": request_wire})

    def record_done(self, digest: str) -> None:
        """The digest produced a response; recovery must skip it."""
        self._append({"type": "done", "digest": digest})

    def record_attempt(self, digest: str) -> None:
        """Recovery is about to replay the digest (crash accounting)."""
        self._append({"type": "attempt", "digest": digest})

    def record_poison(self, digest: str, reason: str = "") -> None:
        """The digest crashed recovery too often; never replay again."""
        self._append({"type": "poison", "digest": digest,
                      "reason": reason})

    def _append(self, record: Dict) -> None:
        data = json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
        if self._torn_tail:
            # The previous append was torn mid-line: terminate that
            # garbage line first, so only the torn record is lost and
            # this one parses on its own line.
            data = b"\n" + data
        if self._injector is not None:
            torn = self._injector.torn_write(data)
            if torn is not None:
                # Injected power loss: a partial line, no fsync — the
                # record is *lost* and recovery must shrug it off.
                self._mirror("torn_writes")
                self._stream.write(torn)
                self._stream.flush()
                self._torn_tail = True
                return
        self._torn_tail = False
        self._stream.write(data)
        self._stream.flush()
        if self.fsync:
            os.fsync(self._stream.fileno())
        self.appends += 1
        self._mirror("appends")
        if self._stream.tell() >= self.segment_max_bytes:
            self.rotate()

    # -- rotation / compaction -----------------------------------------

    def rotate(self) -> None:
        """Carry pending state into a fresh segment, drop the old ones.

        The new segment is built in a temp file and published with
        ``os.replace`` + directory fsync, so a crash anywhere in here
        leaves either the old segments or the complete new one — never
        a half-written head.
        """
        pending = self.pending(include_poisoned=True)
        next_seq = self._seq + 1
        path = os.path.join(self.directory, _segment_name(next_seq))
        descriptor, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".journal-", suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as stream:
                for entry in pending:
                    record = {"type": "admit", "digest": entry.digest,
                              "request": entry.request,
                              "attempts": entry.attempts}
                    stream.write(json.dumps(record, sort_keys=True)
                                 .encode("utf-8") + b"\n")
                for digest, reason in self._poisoned_items:
                    stream.write(json.dumps(
                        {"type": "poison", "digest": digest,
                         "reason": reason},
                        sort_keys=True).encode("utf-8") + b"\n")
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp_path, path)
            self._fsync_directory()
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        old_segments = [seq for seq in self._segments() if seq < next_seq]
        if self._stream is not None:
            self._stream.close()
        self._seq = next_seq
        self._open_active()
        for seq in old_segments:
            try:
                os.unlink(os.path.join(self.directory, _segment_name(seq)))
            except OSError:
                pass
        self._fsync_directory()
        self.rotations += 1
        self._mirror("rotations")

    def compact(self) -> None:
        """Alias for :meth:`rotate` — the drain path calls this to
        leave the smallest possible journal behind."""
        self.rotate()

    # -- recovery ------------------------------------------------------

    def pending(self, include_poisoned: bool = False) -> List[PendingEntry]:
        """Admitted-but-unfinished entries, in admission order.

        Re-reads the segments from disk (the journal is the source of
        truth, not in-memory state — a fresh process calls this first).
        Poisoned digests are excluded unless ``include_poisoned`` —
        rotation needs them to carry the poison marks forward.
        """
        entries: Dict[str, PendingEntry] = {}
        poisoned: Dict[str, str] = {}
        for seq in self._segments():
            path = os.path.join(self.directory, _segment_name(seq))
            for record in self._read_segment(path):
                kind = record.get("type")
                digest = str(record.get("digest", ""))
                if not digest:
                    continue
                if kind == "admit":
                    if digest not in entries:
                        entries[digest] = PendingEntry(
                            digest=digest,
                            request=dict(record.get("request") or {}),
                            attempts=int(record.get("attempts", 0)))
                elif kind == "attempt":
                    if digest in entries:
                        entries[digest].attempts += 1
                elif kind == "done":
                    entries.pop(digest, None)
                elif kind == "poison":
                    poisoned[digest] = str(record.get("reason", ""))
        self._poisoned_items = list(poisoned.items())
        if include_poisoned:
            return list(entries.values())
        return [entry for entry in entries.values()
                if entry.digest not in poisoned]

    def poisoned(self) -> Dict[str, str]:
        """Digest → reason for every poison-marked entry."""
        self.pending(include_poisoned=True)
        return dict(self._poisoned_items)

    def _read_segment(self, path: str) -> List[Dict]:
        records: List[Dict] = []
        try:
            with open(path, "rb") as stream:
                raw = stream.read()
        except OSError:
            return records
        lines = raw.split(b"\n")
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A torn line.  Only a crashed *tail* is expected; an
                # unparsable line mid-segment is counted all the same
                # and skipped — recovery must never die on its input.
                self.torn_lines += 1
                self._mirror("torn_lines")
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    # -- plumbing ------------------------------------------------------

    def _segments(self) -> List[int]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        found = []
        for name in names:
            match = _SEGMENT_RE.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def _open_active(self) -> None:
        path = os.path.join(self.directory, _segment_name(self._seq))
        self._stream = open(path, "ab")

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def counts(self) -> Dict[str, int]:
        """Counter snapshot for the ``metrics`` op's ``journal``
        section."""
        return {"appends": self.appends, "rotations": self.rotations,
                "torn_lines": self.torn_lines, "segment": self._seq,
                "pending": len(self.pending()),
                "poisoned": len(self._poisoned_items)}

    def __enter__(self) -> "RequestJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _mirror(name: str) -> None:
        if obs_metrics.enabled():
            obs_metrics.registry().inc(_METRIC_PREFIX + name)
