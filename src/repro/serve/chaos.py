"""Chaos suite for the solve service (CI's ``serve-chaos``).

Three scenarios, each proving one resilience claim end to end:

* ``hang`` — a worker stalls inside a job (injected ``worker_hang``).
  The watchdog must SIGKILL it within ~2 heartbeat intervals of the
  job's budget expiring, the pool slot must be reclaimed (the pool is
  rebuilt and the *same* request solves fine immediately after), and
  the stuck submission must still get an answer (ERROR, never a silent
  hang).
* ``flaky`` — the connection layer drops requests without replying
  (``conn_drop``), the client stalls between sends (``slow_client``)
  and journal appends tear mid-line (``journal_torn_write``).  The
  retrying :class:`~repro.serve.resilience.ResilientClient` must get
  every answer anyway — resubmission is idempotent by content address —
  and journal recovery must shrug off the torn tails.
* ``crash`` — the server process is SIGKILLed mid-corpus with jobs in
  flight, then restarted over the same cache + journal directories.
  The write-ahead journal must replay every admitted-but-unfinished
  request: **zero lost admitted requests**, and every recovered cache
  entry audit-verified (no unaudited fills, even on the recovery path).

Everything is deterministic: fault plans carry fixed seeds, and firing
decisions are keyed by (seed, job token, spec), so a failure reproduces.

Run with ``python -m repro.serve.chaos`` (or ``make serve-chaos``).
Exit code 0 on success, 1 on any failed check.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from .. import api
from ..reliability.faults import FaultPlan
from ..sat.status import SolveStatus
from .client import ServeClient, ServeError
from .resilience import ResilientClient, RetryPolicy, CircuitBreaker
from .server import SolveService
from .smoke import _corpus, _serve_in_thread


class _Checks:
    """Collects failures instead of dying on the first one."""

    def __init__(self, scenario: str) -> None:
        self.scenario = scenario
        self.failures: List[str] = []

    def check(self, condition: bool, message: str) -> None:
        if not condition:
            self.failures.append(message)
            print(f"FAIL [{self.scenario}] {message}")

    def note(self, message: str) -> None:
        print(f"     [{self.scenario}] {message}")


def _requests(client: str) -> List[Tuple[str, "api.SolveRequest",
                                         SolveStatus]]:
    return [(name, api.SolveRequest(graph=graph, colors=colors,
                                    client=client, tag=name), expected)
            for name, graph, colors, expected in _corpus()]


def _cached_entries(cache_dir: str) -> Dict[str, Dict]:
    """digest → parsed disk-cache entry, across all shards."""
    entries: Dict[str, Dict] = {}
    for shard in sorted(os.listdir(cache_dir)):
        shard_dir = os.path.join(cache_dir, shard)
        if not os.path.isdir(shard_dir):
            continue
        for name in os.listdir(shard_dir):
            if not name.endswith(".json") or name.startswith("."):
                continue
            with open(os.path.join(shard_dir, name),
                      encoding="utf-8") as stream:
                entries[name[:-len(".json")]] = json.load(stream)
    return entries


def _check_all_audited(checks: _Checks, cache_dir: str) -> None:
    for digest, entry in _cached_entries(cache_dir).items():
        checks.check(entry.get("status") in ("SAT", "UNSAT"),
                     f"undecided entry cached: {digest[:12]} "
                     f"({entry.get('status')})")
        checks.check(entry.get("audit") == "PASS",
                     f"unaudited cache fill: {digest[:12]} "
                     f"(audit {entry.get('audit')!r})")


# ---------------------------------------------------------------------
# Scenario: hang — watchdog SIGKILL + slot reclaim
# ---------------------------------------------------------------------


def scenario_hang() -> _Checks:
    checks = _Checks("hang")
    interval, budget = 0.1, 1.0
    plan = "seed=11; worker_hang@serve_worker:match=job#1:*,s=3600"
    saved = os.environ.get("REPRO_FAULTS")
    # Through the environment so the *forked workers* inherit the plan;
    # only the first pool job (token job#1:…) matches, and it stalls for
    # an hour unless something kills it.
    os.environ["REPRO_FAULTS"] = plan
    try:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-hang-") as tmp:
            service = SolveService(
                port=0, workers=2,
                cache_dir=os.path.join(tmp, "cache"),
                journal_dir=os.path.join(tmp, "journal"),
                job_timeout=budget, heartbeat_interval=interval)
            thread = _serve_in_thread(service)
            victim = _requests("chaos-hang")[0]
            name, request, expected = victim
            with ServeClient(service.host, service.port,
                             timeout=120.0) as client:
                started = time.monotonic()
                response = client.solve(request)
                elapsed = time.monotonic() - started
                checks.note(f"hung job answered {response.status} "
                            f"after {elapsed:.2f}s")
                checks.check(
                    response.status in (SolveStatus.ERROR, expected),
                    f"hung job must answer decided-or-ERROR, "
                    f"got {response.status}")
                dump = client.metrics()
                watchdog = dump.get("watchdog") or {}
                counters = (dump.get("metrics") or {}).get("counters") or {}
                checks.check(watchdog.get("kills", 0) >= 1,
                             f"watchdog recorded no kill: {watchdog}")
                checks.check(counters.get("serve.pool_rebuilds", 0) >= 1,
                             "pool was not rebuilt after the kill")
                last_kill = watchdog.get("last_kill") or {}
                reason = str(last_kill.get("reason", ""))
                checks.check(reason.startswith("overdue"),
                             f"expected an overdue kill, got {reason!r}")
                if reason.startswith("overdue:"):
                    ran_for = float(reason.split()[1].rstrip("s"))
                    latency = ran_for - budget - 2 * interval  # grace
                    checks.note(f"kill latency past budget+grace: "
                                f"{latency:.2f}s "
                                f"(2x heartbeat = {2 * interval:.2f}s)")
                    # Detection must land within ~2 beat periods; the
                    # extra 0.5s absorbs a loaded CI box's scheduling.
                    checks.check(latency <= 2 * interval + 0.5,
                                 f"kill took {latency:.2f}s past "
                                 f"budget+grace (want <= ~2x interval)")
                # The slot is reclaimed: the same request — no longer
                # matching the job#1 token — solves immediately.
                retry = client.solve(request)
                checks.check(retry.status is expected,
                             f"post-kill resubmit: {retry.status}, "
                             f"expected {expected}")
                # The ERROR answer was delivered, so the journal owes
                # nothing to a future boot.
                journal = dump.get("journal") or {}
                checks.check(journal.get("poisoned", 0) == 0,
                             f"unexpected poison marks: {journal}")
                final = client.metrics().get("journal") or {}
                checks.check(final.get("pending", 0) == 0,
                             f"journal should be settled: {final}")
                client.shutdown()
            thread.join(timeout=30)
            checks.check(not thread.is_alive(), "server did not stop")
    finally:
        if saved is None:
            os.environ.pop("REPRO_FAULTS", None)
        else:
            os.environ["REPRO_FAULTS"] = saved
    return checks


# ---------------------------------------------------------------------
# Scenario: flaky — dropped connections, slow client, torn journal
# ---------------------------------------------------------------------


def scenario_flaky() -> _Checks:
    checks = _Checks("flaky")
    plan = FaultPlan.parse("seed=13; conn_drop@conn:p=0.25; "
                           "slow_client@conn:p=0.5,s=0.01; "
                           "journal_torn_write@journal:p=0.2")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-flaky-") as tmp:
        journal_dir = os.path.join(tmp, "journal")
        service = SolveService(port=0, workers=2,
                               cache_dir=os.path.join(tmp, "cache"),
                               journal_dir=journal_dir,
                               job_timeout=60.0, faults=plan)
        thread = _serve_in_thread(service)
        client = ResilientClient(
            service.host, service.port,
            retry=RetryPolicy(max_attempts=6, base_backoff=0.01,
                              max_backoff=0.1, seed=7),
            breaker=CircuitBreaker(failure_threshold=10),
            faults=plan)
        with client:
            for name, request, expected in _requests("chaos-flaky"):
                response = client.solve(request, deadline=120.0)
                checks.check(response.status is expected,
                             f"{name}: {response.status}, "
                             f"expected {expected}")
                checks.check(response.audit == "PASS" or response.cached,
                             f"{name}: audit {response.audit!r}")
            dump = client.metrics()
            counters = (dump.get("metrics") or {}).get("counters") or {}
            checks.note(f"client attempts={client.attempts} "
                        f"retries={client.retries} "
                        f"reconnects={client.reconnects}; server drops="
                        f"{counters.get('serve.conn_dropped', 0)}")
            checks.check(counters.get("serve.conn_dropped", 0) >= 1,
                         "no connection drops fired — scenario is vacuous")
            checks.check(client.retries >= 1,
                         "client never retried despite drops")
            checks.check(client.breaker.state == "closed",
                         f"breaker ended {client.breaker.state}, "
                         f"expected closed")
            client.shutdown()
        thread.join(timeout=30)
        checks.check(not thread.is_alive(), "server did not stop")
        # Torn appends must not wedge recovery: a fresh journal over the
        # same directory scans cleanly and owes nothing.
        from .journal import RequestJournal
        with RequestJournal(journal_dir, faults=False) as journal:
            pending = journal.pending()
            checks.note(f"journal after run: pending={len(pending)} "
                        f"torn_lines={journal.torn_lines}")
            checks.check(not pending,
                         f"journal left {len(pending)} pending entries "
                         f"despite every answer being delivered")
    return checks


# ---------------------------------------------------------------------
# Scenario: crash — SIGKILL mid-corpus, restart, journal replay
# ---------------------------------------------------------------------


def _spawn_server(arguments: List[str]) -> Tuple[subprocess.Popen, int]:
    """Launch ``repro serve`` in its own session; returns (proc, port)."""
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)  # the plan travels via --faults only
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve",
         "--port", "0"] + arguments,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, start_new_session=True, text=True)
    port = None
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if "listening on" in line:
            port = int(line.split("listening on", 1)[1]
                       .split()[0].rsplit(":", 1)[1])
            break
    if port is None:
        proc.kill()
        raise RuntimeError("server subprocess did not report its port")
    # Keep draining stdout so the server can never block on the pipe.
    threading.Thread(target=proc.stdout.read, daemon=True).start()
    return proc, port


def _killpg(proc: subprocess.Popen) -> None:
    """SIGKILL the server *and* its worker children (same session)."""
    try:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    except (ProcessLookupError, PermissionError, OSError):
        proc.kill()
    proc.wait()


def scenario_crash() -> _Checks:
    checks = _Checks("crash")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-crash-") as tmp:
        cache_dir = os.path.join(tmp, "cache")
        journal_dir = os.path.join(tmp, "journal")
        corpus = _requests("chaos-crash")
        digests = {name: request.cache_key()
                   for name, request, _ in corpus}

        # -- phase 1: server A, first two jobs finish, four wedge ------
        proc_a, port_a = _spawn_server(
            ["--cache-dir", cache_dir, "--journal-dir", journal_dir,
             "--workers", "2", "--heartbeat-interval", "0.1",
             "--faults",
             "seed=5; worker_hang@serve_worker:match=job#[3-9]:*,s=3600"])
        stuck_threads: List[threading.Thread] = []
        try:
            with ServeClient("127.0.0.1", port_a, timeout=120.0) as client:
                for name, request, expected in corpus[:2]:
                    response = client.solve(request)
                    checks.check(response.status is expected,
                                 f"warm-up {name}: {response.status}")

                def _stuck(request: "api.SolveRequest") -> None:
                    try:
                        with ServeClient("127.0.0.1", port_a,
                                         timeout=300.0) as victim:
                            victim.solve(request)
                    except (ServeError, OSError, ValueError):
                        pass  # the server dies under us — expected

                for _, request, _ in corpus[2:]:
                    thread = threading.Thread(target=_stuck,
                                              args=(request,),
                                              daemon=True)
                    thread.start()
                    stuck_threads.append(thread)

                # All four must be *admitted* (journaled) before the
                # kill: two wedged in workers, two queued behind them.
                deadline = time.monotonic() + 60.0
                pending = -1
                while time.monotonic() < deadline:
                    pending = (client.metrics().get("journal") or {}) \
                        .get("pending", 0)
                    if pending >= 4:
                        break
                    time.sleep(0.1)
                checks.check(pending >= 4,
                             f"only {pending} journaled in-flight "
                             f"entries before the kill")
        finally:
            checks.note(f"SIGKILL server A (pid {proc_a.pid}) "
                        f"with 4 admitted jobs unfinished")
            _killpg(proc_a)
        for thread in stuck_threads:
            thread.join(timeout=10)

        # -- phase 2: server B over the same dirs, no faults -----------
        proc_b, port_b = _spawn_server(
            ["--cache-dir", cache_dir, "--journal-dir", journal_dir,
             "--workers", "2", "--heartbeat-interval", "0.1"])
        try:
            with ServeClient("127.0.0.1", port_b, timeout=120.0) as client:
                deadline = time.monotonic() + 120.0
                journal: Dict = {}
                replayed = 0
                while time.monotonic() < deadline:
                    dump = client.metrics()
                    journal = dump.get("journal") or {}
                    counters = (dump.get("metrics") or {}) \
                        .get("counters") or {}
                    replayed = counters.get("serve.journal.replayed", 0)
                    if journal.get("pending", 1) == 0:
                        break
                    time.sleep(0.2)
                checks.note(f"recovery: replayed={replayed} "
                            f"journal={journal}")
                checks.check(journal.get("pending", 1) == 0,
                             f"journal still owes entries: {journal}")
                checks.check(journal.get("poisoned", 0) == 0,
                             f"healthy entries were poisoned: {journal}")
                checks.check(replayed >= 4,
                             f"expected >= 4 journal replays, "
                             f"got {replayed}")
                client.shutdown()
        finally:
            proc_b.wait(timeout=60)

        # -- the claim: zero lost admitted requests --------------------
        entries = _cached_entries(cache_dir)
        for name, _, expected in corpus:
            entry = entries.get(digests[name])
            checks.check(entry is not None,
                         f"{name}: admitted request LOST — no cached "
                         f"answer after recovery")
            if entry is not None:
                checks.check(entry.get("status") == expected.value,
                             f"{name}: recovered {entry.get('status')}, "
                             f"expected {expected.value}")
        _check_all_audited(checks, cache_dir)
    return checks


# ---------------------------------------------------------------------


SCENARIOS = {"hang": scenario_hang, "flaky": scenario_flaky,
             "crash": scenario_crash}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="serve-chaos: kill workers, drop connections, "
                    "SIGKILL the server — prove nothing admitted is "
                    "ever lost")
    parser.add_argument("--scenario", choices=sorted(SCENARIOS) + ["all"],
                        default="all")
    args = parser.parse_args(argv)
    names = sorted(SCENARIOS) if args.scenario == "all" \
        else [args.scenario]
    failures = 0
    for name in names:
        print(f"=== scenario: {name} ===")
        started = time.monotonic()
        result = SCENARIOS[name]()
        verdict = "OK" if not result.failures else \
            f"{len(result.failures)} check(s) failed"
        print(f"=== scenario {name}: {verdict} "
              f"({time.monotonic() - started:.1f}s) ===")
        failures += len(result.failures)
    if failures:
        print(f"serve-chaos: {failures} check(s) failed")
        return 1
    print("serve-chaos: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
