"""The asyncio solve service: JSON-lines TCP over a worker-process pool.

Protocol (one JSON object per line, both directions):

* ``{"op": "solve", "request": <SolveRequest wire>}`` →
  ``{"ok": true, "response": <SolveResponse wire>}`` or
  ``{"ok": false, "error": "...", "rejected": true?}``.
* ``{"op": "metrics"}`` → the ``/metrics``-style dump: the process
  metrics snapshot plus the cache and admission sections.
* ``{"op": "ping"}`` → liveness + protocol version.
* ``{"op": "shutdown"}`` → ``{"ok": true, "bye": true}``, then the
  server drains and stops.

The request path::

    cache lookup ──hit──▶ answer (no pool, no admission charge)
        │ miss
    admission (queue depth, per-client cap, size cap, quarantine)
        │ admitted, budget = server ceiling ∧ request limits
    worker pool: api.solve with audit FORCED on
        │ decided + audit passed
    cache fill (memory LRU + atomic disk write) ──▶ answer

Cache hits are answered on the event loop without touching the pool and
without charging the client's budget.  Fills are audit-verified — a
cached answer has survived :func:`repro.reliability.audit.audit_outcome`
once, so hits can skip re-verification; a response that fails its audit
comes back as ERROR and is never cached.  Concurrent identical requests
are single-flighted: the second submitter awaits the first's job and is
then served from the cache instead of duplicating the work.

Workers are a persistent :class:`~concurrent.futures.ProcessPoolExecutor`
(solves are CPU-bound; the GIL rules out threads).  Each job resets the
worker's observability state, runs one request, and ships its telemetry
(spans + metrics snapshot) back with the result for the server to
ingest — the same worker-telemetry scheme the portfolio and batch
runners use over their result queues.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Optional

from .. import api, obs
from ..obs import metrics as obs_metrics
from ..sat.status import SolveLimits, SolveReport, SolveStatus
from .admission import AdmissionController, AdmissionPolicy
from .cache import ResultCache

#: Protocol version announced by ``ping``.
PROTOCOL = "repro-serve/1"

#: Hard cap on one request line (a DoS-sized payload should fail the
#: read, not exhaust memory).
MAX_LINE_BYTES = 64 * 1024 * 1024


def _execute_wire(wire: Dict) -> tuple:
    """Worker-side entry: run one request, return (response wire,
    telemetry).  Module-level so the pool can pickle it; never raises —
    every failure becomes an ERROR response."""
    obs.worker_begin()
    # The pool reuses processes: start each job from a clean registry so
    # the telemetry shipped back is this job's alone, not cumulative.
    obs_metrics.registry().reset()
    obs_metrics.enable(True)
    try:
        request = api.SolveRequest.from_wire(wire)
        payload = api.solve(request).to_wire()
    except Exception as error:  # defensive: the pool must stay healthy
        report = SolveReport(status=SolveStatus.ERROR, detail=repr(error))
        payload = api.SolveResponse(status=SolveStatus.ERROR, report=report,
                                    tag=str(wire.get("tag", ""))).to_wire()
    return payload, obs.drain_telemetry()


class SolveService:
    """The long-running front end.  Lifecycle::

        service = SolveService(port=0, workers=4, cache_dir="cache/")
        await service.start()        # binds; service.port is now real
        await service.serve_forever()  # until a shutdown op or stop()

    All state mutation happens on the event loop; the worker pool only
    ever sees plain wire dicts.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 cache_capacity: int = 256,
                 cache_dir: Optional[str] = None,
                 policy: Optional[AdmissionPolicy] = None,
                 job_timeout: Optional[float] = None,
                 audit_fills: bool = True) -> None:
        self.host = host
        self.port = port
        self.workers = workers if workers is not None else max(
            1, (mp.cpu_count() or 2) - 1)
        self.cache = cache if cache is not None else ResultCache(
            cache_capacity, cache_dir)
        self.admission = AdmissionController(policy)
        #: Server-wide wall-clock bound per job (merged into every
        #: request's budget, on top of the admission ceiling).
        self.job_timeout = job_timeout
        #: Force an audit on every pool execution so cache fills are
        #: verified answers.  Off only for benchmarking the cache layer.
        self.audit_fills = audit_fills
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ProcessPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped: Optional[asyncio.Event] = None
        #: Single-flight table: digest → future of the in-flight job.
        self._jobs: Dict[str, "asyncio.Future"] = {}

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "SolveService":
        """Bind the listener and spin up the pool.  With ``port=0`` the
        OS picks a free port; :attr:`port` holds the real one after."""
        obs_metrics.enable(True)  # the service always keeps its counters
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        context = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn")
        self._executor = ProcessPoolExecutor(max_workers=self.workers,
                                             mp_context=context)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or a ``shutdown`` op) runs."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def stop(self) -> None:
        """Stop accepting, drain the pool, release everything."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            executor, self._executor = self._executor, None
            # shutdown(wait=True) joins worker processes — do it off
            # the loop so in-flight connection handlers stay serviced.
            await self._loop.run_in_executor(
                None, lambda: executor.shutdown(wait=True))
        if self._stopped is not None:
            self._stopped.set()

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # oversized line or peer reset
                if not line:
                    break
                try:
                    envelope = json.loads(line)
                except ValueError:
                    reply = {"ok": False, "error": "malformed JSON line"}
                else:
                    reply = await self._dispatch(envelope)
                writer.write(json.dumps(reply).encode("utf-8") + b"\n")
                await writer.drain()
                if reply.get("bye"):
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, envelope: Dict) -> Dict:
        op = envelope.get("op")
        self._count("serve.ops")
        if op == "ping":
            return {"ok": True, "protocol": PROTOCOL,
                    "workers": self.workers}
        if op == "metrics":
            return {"ok": True,
                    "metrics": obs_metrics.registry().snapshot(),
                    "cache": self.cache.counts(),
                    "admission": self.admission.snapshot()}
        if op == "shutdown":
            # Reply first (the handler breaks on "bye"), stop right
            # after this dispatch returns.
            self._loop.call_soon(lambda: self._loop.create_task(self.stop()))
            return {"ok": True, "bye": True}
        if op == "solve":
            return await self._solve(envelope.get("request") or {})
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- the solve path ------------------------------------------------

    async def _solve(self, wire: Dict) -> Dict:
        try:
            request = api.SolveRequest.from_wire(wire)
        except Exception as error:
            self._count("serve.invalid")
            return {"ok": False, "error": f"invalid request: {error}"}
        digest = request.cache_key()

        payload = self.cache.get(digest)
        if payload is None and digest in self._jobs:
            # Single-flight: an identical request is already solving.
            # Await it, then take its freshly-filled cache entry.
            self._count("serve.coalesced")
            await asyncio.wait([self._jobs[digest]])
            payload = self.cache.get(digest)
        if payload is not None:
            payload["cached"] = True
            payload["tag"] = request.tag
            self._count("serve.responses.cached")
            return {"ok": True, "response": payload}

        decision = self.admission.admit(request.client,
                                        request.graph.num_vertices,
                                        request.limits)
        if not decision.admitted:
            self._count("serve.rejected")
            return {"ok": False, "error": decision.reason, "rejected": True}

        effective = decision.limits
        if self.job_timeout is not None:
            effective = (effective or SolveLimits()).with_wall_clock(
                self.job_timeout)
        job_wire = dict(wire)
        job_wire["limits"] = api.limits_to_wire(effective)
        if self.audit_fills:
            job_wire["audit"] = True

        self.admission.begin(request.client)
        ticket = self._loop.create_future()
        self._jobs[digest] = ticket
        status, detail = SolveStatus.ERROR, "worker failed"
        try:
            payload, telemetry = await self._run_job(job_wire)
            obs.ingest_telemetry(telemetry)
            status = SolveStatus(payload["status"])
            detail = str((payload.get("report") or {}).get("detail", ""))
        except Exception as error:
            detail = repr(error)
            report = SolveReport(status=SolveStatus.ERROR, detail=detail)
            payload = api.SolveResponse(status=SolveStatus.ERROR,
                                        report=report).to_wire()
        finally:
            self.admission.finish(request.client, status, detail)
            self._jobs.pop(digest, None)
            if not ticket.done():
                ticket.set_result(None)

        payload["digest"] = digest
        payload["cached"] = False
        payload["tag"] = request.tag
        self._count(f"serve.jobs.{status}")
        if status.decided and payload.get("audit") != "FAIL":
            # Audit-guarded fill: with audit_fills on, a decided answer
            # here has verdict PASS (a FAIL was demoted to ERROR).
            self.cache.put(digest, dict(payload))
        return {"ok": True, "response": payload}

    async def _run_job(self, job_wire: Dict) -> tuple:
        try:
            return await self._loop.run_in_executor(
                self._executor, _execute_wire, job_wire)
        except BrokenProcessPool:
            # A worker died hard (OOM kill, segfault).  Replace the pool
            # so one casualty does not take the service down, and fail
            # only this job.
            self._count("serve.pool_rebuilds")
            old, self._executor = self._executor, None
            await self._loop.run_in_executor(
                None, lambda: old.shutdown(wait=False))
            context = mp.get_context(
                "fork" if "fork" in mp.get_all_start_methods() else "spawn")
            self._executor = ProcessPoolExecutor(max_workers=self.workers,
                                                 mp_context=context)
            raise

    @staticmethod
    def _count(name: str) -> None:
        if obs_metrics.enabled():
            obs_metrics.registry().inc(name)
