"""The asyncio solve service: JSON-lines TCP over a worker-process pool.

Protocol (one JSON object per line, both directions):

* ``{"op": "solve", "request": <SolveRequest wire>}`` →
  ``{"ok": true, "response": <SolveResponse wire>}`` or
  ``{"ok": false, "error": "...", "rejected": true?}``.
* ``{"op": "metrics"}`` → the ``/metrics``-style dump: the process
  metrics snapshot plus the cache, admission, journal and watchdog
  sections.
* ``{"op": "ping"}`` → liveness + protocol version + draining flag.
* ``{"op": "shutdown"}`` → ``{"ok": true, "bye": true}``, then the
  server **drains** (stops accepting, finishes or journals in-flight
  jobs under the drain deadline) and stops.

The request path::

    cache lookup ──hit──▶ answer (no pool, no admission charge)
        │ miss (exact, then single-flight, then strategy-superset)
    admission (queue depth, per-client cap, size cap, quarantine)
        │ admitted, budget = server ceiling ∧ request limits
    journal admit (fsync'd write-ahead record — survives SIGKILL)
        │
    worker pool: api.solve with audit FORCED on, heartbeats to the
    watchdog, SIGKILL + pool rebuild if the job wedges
        │ decided + audit passed
    cache fill (memory LRU + atomic disk write) + journal done ──▶ answer

Cache hits are answered on the event loop without touching the pool and
without charging the client's budget.  Fills are audit-verified — a
cached answer has survived :func:`repro.reliability.audit.audit_outcome`
once, so hits can skip re-verification; a response that fails its audit
comes back as ERROR and is never cached.  Concurrent identical requests
are single-flighted: the second submitter awaits the first's job and is
then served from the cache instead of duplicating the work.

Workers are a persistent :class:`~concurrent.futures.ProcessPoolExecutor`
(solves are CPU-bound; the GIL rules out threads).  Each job resets the
worker's observability state, runs one request under a
:class:`~repro.serve.resilience.JobHeartbeat`, and ships its telemetry
(spans + metrics snapshot) back with the result for the server to
ingest — the same worker-telemetry scheme the portfolio and batch
runners use.

Resilience (see ``docs/serving.md``): the
:class:`~repro.serve.resilience.WorkerWatchdog` SIGKILLs jobs that run
past their deadline or stop heartbeating; the
:class:`~repro.serve.journal.RequestJournal` write-ahead-logs every
admitted request so a crashed server **recovers on boot** by replaying
unfinished entries through the same audit-guarded cache-fill path
(entries that crash recovery twice are poison-marked and skipped); and
``SIGTERM`` or the ``shutdown`` op triggers a **draining** stop instead
of an abrupt one.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import multiprocessing as mp
import signal
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Optional

from .. import api, obs
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..reliability.faults import FaultInjector, FaultPlan
from ..sat.status import SolveLimits, SolveReport, SolveStatus
from .admission import AdmissionController, AdmissionPolicy
from .cache import ResultCache
from .journal import MAX_RECOVERY_ATTEMPTS, RequestJournal
from .resilience import (DEFAULT_HEARTBEAT_INTERVAL, JobHeartbeat,
                         WorkerWatchdog, worker_channel,
                         worker_channel_init)

#: Protocol version announced by ``ping``.
PROTOCOL = "repro-serve/1"

#: Hard cap on one request line (a DoS-sized payload should fail the
#: read, not exhaust memory).
MAX_LINE_BYTES = 64 * 1024 * 1024


def _warmup() -> None:
    """No-op pool task used to force worker processes into existence."""


def _execute_wire(wire: Dict, token: str = "") -> tuple:
    """Worker-side entry: run one request, return (response wire,
    telemetry).  Module-level so the pool can pickle it; never raises —
    every failure becomes an ERROR response.  ``token`` names the job
    on the heartbeat side channel and labels serve-worker faults."""
    obs.worker_begin()
    # The pool reuses processes: start each job from a clean registry so
    # the telemetry shipped back is this job's alone, not cumulative.
    obs_metrics.registry().reset()
    obs_metrics.enable(True)
    with JobHeartbeat(worker_channel(), token):
        plan = FaultPlan.from_env()
        if plan is not None:
            injector = FaultInjector(plan, label=token,
                                     sites=("serve_worker",))
            injector.maybe_exit()         # crash@serve_worker
            injector.maybe_worker_hang()  # stuck-job scenario
        try:
            request = api.SolveRequest.from_wire(wire)
            payload = api.solve(request).to_wire()
        except Exception as error:  # defensive: the pool must stay healthy
            report = SolveReport(status=SolveStatus.ERROR,
                                 detail=repr(error))
            payload = api.SolveResponse(
                status=SolveStatus.ERROR, report=report,
                tag=str(wire.get("tag", ""))).to_wire()
    return payload, obs.drain_telemetry()


class SolveService:
    """The long-running front end.  Lifecycle::

        service = SolveService(port=0, workers=4, cache_dir="cache/",
                               journal_dir="journal/")
        await service.start()        # binds; recovery replays the journal
        await service.serve_forever()  # until SIGTERM / shutdown / stop()

    All state mutation happens on the event loop; the worker pool only
    ever sees plain wire dicts.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 cache_capacity: int = 256,
                 cache_dir: Optional[str] = None,
                 policy: Optional[AdmissionPolicy] = None,
                 job_timeout: Optional[float] = None,
                 audit_fills: bool = True,
                 journal_dir: Optional[str] = None,
                 journal_fsync: bool = True,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 watchdog: bool = True,
                 drain_deadline: float = 10.0,
                 warm_start: bool = True,
                 faults=None) -> None:
        self.host = host
        self.port = port
        self.workers = workers if workers is not None else max(
            1, (mp.cpu_count() or 2) - 1)
        self.cache = cache if cache is not None else ResultCache(
            cache_capacity, cache_dir)
        self.admission = AdmissionController(policy)
        #: Server-wide wall-clock bound per job (merged into every
        #: request's budget, on top of the admission ceiling).
        self.job_timeout = job_timeout
        #: Force an audit on every pool execution so cache fills are
        #: verified answers.  Off only for benchmarking the cache layer.
        self.audit_fills = audit_fills
        #: Write-ahead journal directory (None = journaling off).
        self.journal_dir = journal_dir
        self.journal_fsync = journal_fsync
        self.heartbeat_interval = heartbeat_interval
        self.watchdog_enabled = watchdog
        #: Seconds a draining shutdown waits for in-flight jobs before
        #: abandoning them to the journal (recovered on next boot).
        self.drain_deadline = drain_deadline
        self.warm_start_enabled = warm_start
        self._fault_plan = FaultPlan.resolve(faults)
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ProcessPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped: Optional[asyncio.Event] = None
        self._context = None
        self._heartbeats = None
        self.journal: Optional[RequestJournal] = None
        self.watchdog: Optional[WorkerWatchdog] = None
        self._watchdog_task: Optional[asyncio.Task] = None
        self._recovery_task: Optional[asyncio.Task] = None
        self._draining = False
        self._stopping = False
        #: Digests abandoned by a drain deadline: their journal entries
        #: stay pending on purpose (next boot replays them).
        self._drain_abandoned: set = set()
        self._job_seq = 0
        self._conn_seq = 0
        #: Single-flight table: digest → future of the in-flight job.
        self._jobs: Dict[str, "asyncio.Future"] = {}

    # -- lifecycle -----------------------------------------------------

    def _make_executor(self) -> ProcessPoolExecutor:
        """One pool, heartbeat-initialised — used at start and by the
        BrokenProcessPool rebuild path, so replacement workers rejoin
        the side channel."""
        kwargs: Dict = {"max_workers": self.workers,
                        "mp_context": self._context}
        if self._heartbeats is not None:
            kwargs["initializer"] = worker_channel_init
            kwargs["initargs"] = (self._heartbeats,
                                  self.heartbeat_interval)
        executor = ProcessPoolExecutor(**kwargs)
        # Fork the full complement NOW rather than lazily on first
        # submit.  A worker forked mid-flight inherits a duplicate of
        # every accepted connection's fd, and that duplicate keeps the
        # peer's socket half-open after we close it — the client never
        # sees the FIN until the worker dies.  Pre-spawning (one worker
        # per warmup submit) also moves the fork cost to boot time.
        for future in [executor.submit(_warmup)
                       for _ in range(self.workers)]:
            future.result()
        return executor

    async def start(self) -> "SolveService":
        """Bind the listener and spin up the pool.  With ``port=0`` the
        OS picks a free port; :attr:`port` holds the real one after.
        Warm-starts the cache from disk and kicks off journal recovery
        as a background task (recovered answers land in the cache while
        new requests are already being served)."""
        obs_metrics.enable(True)  # the service always keeps its counters
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._context = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn")
        if self.watchdog_enabled:
            self._heartbeats = self._context.Queue()
            self.watchdog = WorkerWatchdog(
                self._heartbeats, interval=self.heartbeat_interval)
        self._executor = self._make_executor()
        if self.warm_start_enabled and self.cache.disk_dir:
            loaded = self.cache.warm_start()
            if loaded:
                trace.event("serve.cache.warm_start", entries=loaded)
        if self.journal_dir:
            self.journal = RequestJournal(self.journal_dir,
                                          fsync=self.journal_fsync,
                                          faults=self._fault_plan)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.watchdog is not None:
            self._watchdog_task = self._loop.create_task(
                self.watchdog.run())
        if self.journal is not None:
            self._recovery_task = self._loop.create_task(self._recover())
        self._install_signal_handlers()
        return self

    def _install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → draining shutdown.  Only possible on the
        main thread of a Unix main interpreter; anywhere else (tests
        run the loop on a daemon thread) this silently no-ops and the
        embedding code owns the signals."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum,
                    lambda: self._loop.create_task(self.drain()))
            except (NotImplementedError, RuntimeError, ValueError,
                    AttributeError):
                return

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or a ``shutdown`` op) runs."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def drain(self, deadline: Optional[float] = None) -> None:
        """Graceful shutdown: stop accepting, let in-flight jobs finish
        (or journal them) under ``deadline`` seconds, flush, stop.

        Jobs still running at the deadline are SIGKILLed and their
        journal entries left *pending* — the next boot replays them, so
        an admitted request is never lost to a shutdown.
        """
        if self._draining:
            return
        self._draining = True
        deadline = self.drain_deadline if deadline is None else deadline
        trace.event("serve.drain.started", inflight=len(self._jobs),
                    deadline=deadline)
        self._count("serve.drain.started")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._recovery_task is not None:
            # Recovery jobs count as in-flight work below; just stop
            # the task from launching new replays.
            self._recovery_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._recovery_task
            self._recovery_task = None
        end = self._loop.time() + max(0.0, deadline)
        while self._jobs and self._loop.time() < end:
            await asyncio.sleep(0.05)
        finished_cleanly = not self._jobs
        if not finished_cleanly:
            abandoned = set(self._jobs)
            self._drain_abandoned |= abandoned
            trace.event("serve.drain.abandoned", jobs=len(abandoned))
            self._count("serve.drain.abandoned", len(abandoned))
            self._kill_pool_workers()
            # Give the broken futures a moment to settle so connected
            # clients get their ERROR responses before the loop dies.
            settle = self._loop.time() + 5.0
            while self._jobs and self._loop.time() < settle:
                await asyncio.sleep(0.05)
        self._count("serve.drain.completed")
        await self.stop()

    def _kill_pool_workers(self) -> None:
        """SIGKILL whatever is still executing (the drain backstop)."""
        if self.watchdog is not None:
            self.watchdog.kill_active()
            return
        # No watchdog: fall back to the pool's own process table.
        processes = getattr(self._executor, "_processes", None) or {}
        import os as _os
        for pid in list(processes):
            try:
                _os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                pass

    async def stop(self) -> None:
        """Stop accepting, tear down the pool, release everything.

        Prefer :meth:`drain` for an orderly exit; ``stop`` is the
        immediate version (the end of a drain, and tests).
        """
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        for task_name in ("_recovery_task", "_watchdog_task"):
            task = getattr(self, task_name)
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
                setattr(self, task_name, None)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            executor, self._executor = self._executor, None
            # shutdown(wait=True) joins worker processes — do it off
            # the loop so in-flight connection handlers stay serviced.
            await self._loop.run_in_executor(
                None, lambda: executor.shutdown(wait=True))
        if self.journal is not None:
            self.journal.close()
        if self._stopped is not None:
            self._stopped.set()

    # -- journal recovery ----------------------------------------------

    async def _recover(self) -> None:
        """Boot-time crash recovery: replay admitted-but-unfinished
        journal entries through the audit-guarded cache-fill path.

        Entries run one at a time (boot should not monopolise the pool
        against live traffic) and register in the single-flight table,
        so a client resubmitting the same digest coalesces onto the
        replay instead of duplicating it.  An entry that has already
        crashed recovery ``MAX_RECOVERY_ATTEMPTS`` times is poison-
        marked and skipped forever.
        """
        journal = self.journal
        pending = journal.pending()
        if not pending:
            return
        trace.event("serve.journal.recovery_started",
                    pending=len(pending))
        self._count("serve.journal.recovered", len(pending))
        for entry in pending:
            if self._draining or self._stopping:
                return
            digest = entry.digest
            if self.cache.get(digest) is not None:
                journal.record_done(digest)
                continue
            if entry.attempts >= MAX_RECOVERY_ATTEMPTS:
                journal.record_poison(
                    digest,
                    f"crashed recovery {entry.attempts} time(s)")
                trace.event("serve.journal.poisoned", digest=digest)
                self._count("serve.journal.poisoned")
                continue
            try:
                request = api.SolveRequest.from_wire(entry.request)
            except Exception as error:
                journal.record_poison(digest,
                                      f"unparseable request: {error!r}")
                self._count("serve.journal.poisoned")
                continue
            journal.record_attempt(digest)
            await self._replay(digest, request, entry.request)
        # Leave the smallest journal behind: replayed noise compacts
        # away, still-pending entries carry forward.
        journal.rotate()
        trace.event("serve.journal.recovery_completed")

    async def _replay(self, digest: str, request: "api.SolveRequest",
                      wire: Dict) -> None:
        """Re-run one journaled request exactly like a live admit
        (budget ceiling, forced audit, watchdog, cache fill)."""
        if digest in self._jobs:  # a live client raced us to it
            await asyncio.wait([self._jobs[digest]])
            if self.cache.get(digest) is not None:
                self.journal.record_done(digest)
            return
        effective = request.limits
        if self.admission.policy.job_limits is not None:
            effective = self.admission.policy.job_limits.merge(effective)
        if self.job_timeout is not None:
            effective = (effective or SolveLimits()).with_wall_clock(
                self.job_timeout)
        job_wire = dict(wire)
        job_wire["limits"] = api.limits_to_wire(effective)
        if self.audit_fills:
            job_wire["audit"] = True
        token = self._next_token("replay", digest)
        ticket = self._loop.create_future()
        self._jobs[digest] = ticket
        self._register_job(token, effective)
        try:
            payload, telemetry = await self._run_job(job_wire, token)
            obs.ingest_telemetry(telemetry)
            status = SolveStatus(payload["status"])
            if status.decided and payload.get("audit") != "FAIL":
                self._fill_cache(digest, request, payload)
                self.journal.record_done(digest)
                self._count("serve.journal.replayed")
            elif status in (SolveStatus.TIMEOUT,
                            SolveStatus.BUDGET_EXHAUSTED):
                # The budget worked; the original submitter is long
                # gone, so there is nobody to hand the undecided answer
                # to — the request is complete.
                self.journal.record_done(digest)
                self._count("serve.journal.replayed")
            else:
                # ERROR: leave the entry pending — the attempt record
                # already written means a crash-looping entry poisons
                # after MAX_RECOVERY_ATTEMPTS boots.
                self._count("serve.journal.replay_errors")
        except Exception:
            self._count("serve.journal.replay_errors")
        finally:
            if self.watchdog is not None:
                self.watchdog.finished(token)
            self._jobs.pop(digest, None)
            if not ticket.done():
                ticket.set_result(None)

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._conn_seq += 1
        injector = None
        if self._fault_plan is not None:
            injector = FaultInjector(self._fault_plan,
                                     label=f"conn#{self._conn_seq}",
                                     sites=("conn",))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # oversized line or peer reset
                if not line:
                    break
                if injector is not None and injector.maybe_conn_drop():
                    # Injected flaky network: hang up without replying.
                    # The retrying client must recover; submission is
                    # idempotent by content address.
                    self._count("serve.conn_dropped")
                    break
                try:
                    envelope = json.loads(line)
                except ValueError:
                    reply = {"ok": False, "error": "malformed JSON line"}
                else:
                    reply = await self._dispatch(envelope)
                writer.write(json.dumps(reply).encode("utf-8") + b"\n")
                await writer.drain()
                if reply.get("bye"):
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, envelope: Dict) -> Dict:
        op = envelope.get("op")
        self._count("serve.ops")
        if op == "ping":
            return {"ok": True, "protocol": PROTOCOL,
                    "workers": self.workers, "draining": self._draining}
        if op == "metrics":
            dump = {"ok": True,
                    "metrics": obs_metrics.registry().snapshot(),
                    "cache": self.cache.counts(),
                    "admission": self.admission.snapshot()}
            if self.journal is not None:
                dump["journal"] = self.journal.counts()
            if self.watchdog is not None:
                dump["watchdog"] = self.watchdog.snapshot()
            return dump
        if op == "shutdown":
            # Reply first (the handler breaks on "bye"), then drain:
            # finish or journal what is in flight, flush, exit.
            self._loop.call_soon(
                lambda: self._loop.create_task(self.drain()))
            return {"ok": True, "bye": True, "draining": True}
        if op == "solve":
            return await self._solve(envelope.get("request") or {})
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- the solve path ------------------------------------------------

    async def _solve(self, wire: Dict) -> Dict:
        try:
            request = api.SolveRequest.from_wire(wire)
        except Exception as error:
            self._count("serve.invalid")
            return {"ok": False, "error": f"invalid request: {error}"}
        digest = request.cache_key()

        payload = self.cache.get(digest)
        if payload is None and digest in self._jobs:
            # Single-flight: an identical request is already solving.
            # Await it, then take its freshly-filled cache entry.
            self._count("serve.coalesced")
            await asyncio.wait([self._jobs[digest]])
            payload = self.cache.get(digest)
        if payload is None:
            # A decided answer cached under a *subset* of this
            # request's strategies (same instance/K/limits) answers it
            # too — the larger portfolio would accept the same first
            # decided result.
            payload = self.cache.superset_get(
                request.base_key(),
                [strategy.label for strategy in request.strategies])
            if payload is not None:
                self._count("serve.responses.superset")
        if payload is not None:
            payload["cached"] = True
            payload["tag"] = request.tag
            self._count("serve.responses.cached")
            return {"ok": True, "response": payload}

        if self._draining:
            self._count("serve.rejected_draining")
            return {"ok": False, "rejected": True, "draining": True,
                    "error": "server is draining; resubmit elsewhere "
                             "or retry after restart"}

        decision = self.admission.admit(request.client,
                                        request.graph.num_vertices,
                                        request.limits)
        if not decision.admitted:
            self._count("serve.rejected")
            return {"ok": False, "error": decision.reason, "rejected": True}

        effective = decision.limits
        if self.job_timeout is not None:
            effective = (effective or SolveLimits()).with_wall_clock(
                self.job_timeout)
        job_wire = dict(wire)
        job_wire["limits"] = api.limits_to_wire(effective)
        if self.audit_fills:
            job_wire["audit"] = True

        # Write-ahead: the admit record is durable (fsync'd) before the
        # job may enter the pool — a SIGKILL from here on is recoverable.
        if self.journal is not None:
            self.journal.record_admit(digest, dict(wire))

        token = self._next_token("job", digest)
        self.admission.begin(request.client)
        self._register_job(token, effective)
        ticket = self._loop.create_future()
        self._jobs[digest] = ticket
        status, detail = SolveStatus.ERROR, "worker failed"
        try:
            payload, telemetry = await self._run_job(job_wire, token)
            obs.ingest_telemetry(telemetry)
            status = SolveStatus(payload["status"])
            detail = str((payload.get("report") or {}).get("detail", ""))
        except Exception as error:
            detail = repr(error)
            report = SolveReport(status=SolveStatus.ERROR, detail=detail)
            payload = api.SolveResponse(status=SolveStatus.ERROR,
                                        report=report).to_wire()
        finally:
            self.admission.finish(request.client, status, detail)
            if self.watchdog is not None:
                self.watchdog.finished(token)
            self._jobs.pop(digest, None)
            if not ticket.done():
                ticket.set_result(None)
            if self.journal is not None:
                if digest in self._drain_abandoned:
                    # Abandoned by the drain deadline: leave the entry
                    # pending so the next boot replays it.
                    pass
                else:
                    self.journal.record_done(digest)

        payload["digest"] = digest
        payload["cached"] = False
        payload["tag"] = request.tag
        self._count(f"serve.jobs.{status}")
        if status.decided and payload.get("audit") != "FAIL":
            # Audit-guarded fill: with audit_fills on, a decided answer
            # here has verdict PASS (a FAIL was demoted to ERROR).
            self._fill_cache(digest, request, payload)
        return {"ok": True, "response": payload}

    def _fill_cache(self, digest: str, request: "api.SolveRequest",
                    payload: Dict) -> None:
        """Stamp provenance the superset index needs, then fill."""
        entry = dict(payload)
        entry["digest"] = digest
        entry["base"] = request.base_key()
        entry["strategies"] = [strategy.label
                               for strategy in request.strategies]
        self.cache.put(digest, entry)

    def _next_token(self, prefix: str, digest: str) -> str:
        self._job_seq += 1
        return f"{prefix}#{self._job_seq}:{digest[:12]}"

    def _register_job(self, token: str,
                      limits: Optional[SolveLimits]) -> None:
        if self.watchdog is None:
            return
        deadline = limits.wall_clock_limit if limits is not None else None
        self.watchdog.register(token, deadline)

    async def _run_job(self, job_wire: Dict, token: str = "") -> tuple:
        try:
            return await self._loop.run_in_executor(
                self._executor, _execute_wire, job_wire, token)
        except BrokenProcessPool:
            # A worker died hard (OOM kill, segfault, or a watchdog
            # SIGKILL of a wedged job).  Replace the pool so one
            # casualty does not take the service down, and fail only
            # the jobs that were on it.
            self._count("serve.pool_rebuilds")
            old, self._executor = self._executor, None
            await self._loop.run_in_executor(
                None, lambda: old.shutdown(wait=False))
            self._executor = self._make_executor()
            raise

    @staticmethod
    def _count(name: str, amount: int = 1) -> None:
        if obs_metrics.enabled():
            obs_metrics.registry().inc(name, amount)
