"""End-to-end resilience primitives for the solve service.

Four pieces, two per side of the wire (see ``docs/serving.md``,
"Resilience"):

**Worker side** — :func:`worker_channel_init` (the pool initializer)
hands every worker process a multiprocessing queue, and
:class:`JobHeartbeat` beats on it from a daemon thread for the duration
of one job: a ``start`` record carrying the worker's pid, then a
``beat`` every ``interval`` seconds.  The beats prove the *process* is
alive; they deliberately keep flowing while a job is stuck in a
``time.sleep``-style stall, because hang detection is the watchdog's
deadline check, not the beat stream.

**Server side** — :class:`WorkerWatchdog` owns the other end of the
queue on the event loop.  Every poll it folds in new heartbeat records
and sweeps the active-job table for two conditions:

* **overdue** — the job has run past its effective wall-clock budget
  plus a grace period.  A healthy solver returns TIMEOUT *at* the
  budget; a job still running ``grace`` past it is wedged somewhere
  cooperative cancellation cannot reach.
* **stale** — no heartbeat for ``stale_after`` seconds: the process is
  frozen (stuck in native code holding the GIL) or silently dead.

Either way the watchdog SIGKILLs the worker's pid.  The pool notices
the corpse, the in-flight future fails with ``BrokenProcessPool``, and
the server's existing rebuild path replaces the pool — the job comes
back as an ERROR response (and a quarantine offence for its client),
never a silent stall.

**Client side** — :class:`RetryPolicy` (capped exponential backoff with
deterministic seeded jitter) and :class:`CircuitBreaker` (closed →
open → half-open) power :class:`ResilientClient`, a drop-in
``ServeClient`` wrapper with per-request deadlines,
reconnect-on-broken-pipe and idempotent resubmission.  Retrying a
solve is *safe* because submission is content-addressed: a duplicate
of an in-flight request coalesces server-side and a duplicate of a
finished one is a cache hit.
"""

from __future__ import annotations

import os
import queue as queue_module
import random
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..obs import metrics as obs_metrics
from ..obs import trace
from ..reliability.faults import FaultInjector, FaultPlan
from .client import ServeClient, ServeError, ServeRejected

#: Default heartbeat period, seconds.  The watchdog polls at the same
#: cadence, so detection latency is a small multiple of this.
DEFAULT_HEARTBEAT_INTERVAL = 0.5


def _count(name: str, value: int = 1) -> None:
    if obs_metrics.enabled():
        obs_metrics.registry().inc(name, value)


# ---------------------------------------------------------------------
# Worker side: the heartbeat channel
# ---------------------------------------------------------------------

#: Worker-process globals, set by the pool initializer (fork workers
#: inherit the parent's ``None`` and overwrite it on init).
_channel = None
_channel_interval = DEFAULT_HEARTBEAT_INTERVAL


def worker_channel_init(channel, interval: float) -> None:
    """ProcessPoolExecutor initializer: adopt the heartbeat queue."""
    global _channel, _channel_interval
    _channel = channel
    _channel_interval = interval


def worker_channel():
    """The worker's heartbeat queue (None outside a watchdogged pool)."""
    return _channel


class JobHeartbeat:
    """Context manager a worker wraps around one job execution.

    Emits ``("start", token, pid, t)`` on entry, then ``("beat", token,
    pid, t)`` every ``interval`` from a daemon thread until exit.  All
    sends are best-effort: a full or broken queue must never take the
    job down with it.
    """

    def __init__(self, channel, token: str,
                 interval: Optional[float] = None) -> None:
        self.channel = channel
        self.token = token
        self.interval = (interval if interval is not None
                         else _channel_interval)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _put(self, kind: str) -> None:
        if self.channel is None:
            return
        try:
            self.channel.put_nowait(
                (kind, self.token, os.getpid(), time.monotonic()))
        except Exception:
            pass  # a lost beat is a false *positive* risk we accept

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._put("beat")

    def __enter__(self) -> "JobHeartbeat":
        self._put("start")
        if self.channel is not None:
            self._thread = threading.Thread(
                target=self._run, name=f"heartbeat-{self.token}",
                daemon=True)
            self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval * 2)


# ---------------------------------------------------------------------
# Server side: the watchdog
# ---------------------------------------------------------------------


@dataclass
class _ActiveJob:
    """Loop-side record of one job currently on the pool."""

    token: str
    deadline: Optional[float]
    registered: float
    pid: Optional[int] = None
    started: Optional[float] = None
    last_seen: Optional[float] = None
    killed: bool = False


class WorkerWatchdog:
    """Deadline + liveness supervision of the serve worker pool.

    All methods run on the event loop (or the single test thread) —
    the only cross-process traffic is the heartbeat queue, which
    :meth:`poll` drains non-blocking.  Timestamps are taken from the
    server's own clock at record receipt, so no cross-process clock
    comparability is assumed.
    """

    def __init__(self, channel=None,
                 interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 grace: Optional[float] = None,
                 stale_after: Optional[float] = None,
                 kill: Callable[[int, int], None] = os.kill,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.channel = channel
        self.interval = interval
        #: Slack past the job deadline before a kill: a healthy solver
        #: stops *at* the budget; two beat periods is plenty of slack
        #: for result marshalling.
        self.grace = grace if grace is not None else 2.0 * interval
        #: No heartbeat for this long → the process is frozen or dead.
        self.stale_after = (stale_after if stale_after is not None
                            else max(10.0 * interval, 2.0))
        self._kill = kill
        self._clock = clock
        self._jobs: Dict[str, _ActiveJob] = {}
        self.kills = 0
        #: ``(token, reason)`` of every kill, newest last.
        self.kill_log: List[tuple] = []

    # -- job registry (called by the server) ---------------------------

    def register(self, token: str, deadline: Optional[float]) -> None:
        """A job entered the pool; ``deadline`` is its effective
        wall-clock budget in seconds (None = unbudgeted: overdue
        detection off, stale detection still on)."""
        now = self._clock()
        self._jobs[token] = _ActiveJob(token=token, deadline=deadline,
                                       registered=now)

    def finished(self, token: str) -> None:
        """The job's future settled (result or error) — stop watching."""
        self._jobs.pop(token, None)

    def active_pids(self) -> List[int]:
        """Pids currently executing a registered job."""
        return [job.pid for job in self._jobs.values()
                if job.pid is not None and not job.killed]

    # -- the poll loop -------------------------------------------------

    def poll(self) -> List[str]:
        """Drain heartbeats, sweep for overdue/stale jobs, kill them.

        Returns the tokens killed this poll (for tests and logging).
        """
        self._drain()
        return self._sweep()

    def _drain(self) -> None:
        if self.channel is None:
            return
        while True:
            try:
                record = self.channel.get_nowait()
            except queue_module.Empty:
                return
            except (OSError, EOFError, ValueError):
                return  # channel torn down under us (shutdown race)
            try:
                kind, token, pid = record[0], record[1], record[2]
            except (TypeError, IndexError):
                continue
            job = self._jobs.get(token)
            if job is None:
                continue  # job already settled; late beats are noise
            now = self._clock()
            job.pid = pid
            job.last_seen = now
            if kind == "start" and job.started is None:
                job.started = now

    def _sweep(self) -> List[str]:
        now = self._clock()
        killed: List[str] = []
        for token, job in list(self._jobs.items()):
            if job.killed or job.pid is None:
                continue
            reason = ""
            if (job.deadline is not None and job.started is not None
                    and now > job.started + job.deadline + self.grace):
                reason = (f"overdue: {now - job.started:.2f}s elapsed, "
                          f"budget {job.deadline:.2f}s + "
                          f"grace {self.grace:.2f}s")
            elif (job.last_seen is not None
                    and now - job.last_seen > self.stale_after):
                reason = (f"stale: no heartbeat for "
                          f"{now - job.last_seen:.2f}s "
                          f"(limit {self.stale_after:.2f}s)")
            if not reason:
                continue
            job.killed = True
            killed.append(token)
            self.kills += 1
            self.kill_log.append((token, reason))
            trace.event("watchdog.kill", token=token, pid=job.pid,
                        reason=reason)
            _count("serve.watchdog.kills")
            try:
                self._kill(job.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                pass  # already gone — the pool will notice either way
        return killed

    def kill_active(self) -> int:
        """SIGKILL every registered job's worker (the drain-deadline
        backstop).  Returns the number of kills attempted."""
        count = 0
        for job in list(self._jobs.values()):
            if job.pid is None or job.killed:
                continue
            job.killed = True
            count += 1
            self.kills += 1
            self.kill_log.append((job.token, "drain deadline"))
            trace.event("watchdog.kill", token=job.token, pid=job.pid,
                        reason="drain deadline")
            _count("serve.watchdog.kills")
            try:
                self._kill(job.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                pass
        return count

    async def run(self) -> None:
        """The watchdog task: poll forever at the beat cadence."""
        import asyncio
        while True:
            self.poll()
            await asyncio.sleep(self.interval)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view for the ``metrics`` op."""
        return {
            "active": len(self._jobs),
            "kills": self.kills,
            "interval": self.interval,
            "grace": self.grace,
            "stale_after": self.stale_after,
            "last_kill": (dict(zip(("token", "reason"), self.kill_log[-1]))
                          if self.kill_log else None),
        }


# ---------------------------------------------------------------------
# Client side: retries and the circuit breaker
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    ``backoff(attempt, rng)`` for attempt 1, 2, … is
    ``base_backoff * backoff_factor ** (attempt - 1)`` capped at
    ``max_backoff``, scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]``.  Jitter decorrelates clients that all
    lost the same server at the same moment; the seeded RNG keeps chaos
    tests bit-reproducible.
    """

    max_attempts: int = 4
    base_backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def rng(self) -> random.Random:
        """A fresh jitter RNG for one client (deterministic per seed)."""
        return random.Random(self.seed)

    def backoff(self, attempt: int,
                rng: Optional[random.Random] = None) -> float:
        """Sleep before retry number ``attempt + 1`` (attempts count
        from 1)."""
        duration = min(self.base_backoff
                       * self.backoff_factor ** max(0, attempt - 1),
                       self.max_backoff)
        if self.jitter and rng is not None:
            duration *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return duration


class CircuitOpenError(ServeError):
    """The circuit breaker is open: the server failed repeatedly and
    the cool-down has not elapsed — fail fast instead of queueing
    doomed connection attempts."""


class CircuitBreaker:
    """Half-open circuit breaker over consecutive transport failures.

    closed → (``failure_threshold`` consecutive failures) → open →
    (``reset_timeout`` elapsed) → half-open → one probe: success closes
    the circuit, failure re-opens it with a fresh cool-down.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._half_open = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._half_open:
            return "half_open"
        if self._clock() - self._opened_at >= self.reset_timeout:
            return "half_open"  # the next allow() takes the probe slot
        return "open"

    def allow(self) -> bool:
        """May one call go through right now?"""
        if self._opened_at is None:
            return True
        if self._half_open:
            return False  # a probe is already in flight
        if self._clock() - self._opened_at >= self.reset_timeout:
            self._half_open = True
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._half_open = False

    def record_failure(self) -> None:
        self._failures += 1
        if self._half_open or self._failures >= self.failure_threshold:
            self._opened_at = self._clock()
            self._half_open = False
            _count("serve.client.circuit_opened")

    def remaining_cooldown(self) -> float:
        if self._opened_at is None or self._half_open:
            return 0.0
        return max(0.0, self.reset_timeout
                   - (self._clock() - self._opened_at))


#: Extra socket-timeout slack on top of a request's wall-clock budget:
#: queueing, encode time and network latency are not solver time.
NETWORK_GRACE = 5.0


class ResilientClient:
    """A ``ServeClient`` that survives the failures ``ServeClient``
    documents: dead connections, flaky networks, restarting servers.

    Per request it: (1) consults the circuit breaker, (2) derives the
    socket timeout from the request's deadline (the request's own
    wall-clock budget plus :data:`NETWORK_GRACE` when no explicit
    deadline is given — slow solves no longer look like dead servers),
    (3) retries transport failures under the
    :class:`RetryPolicy`, reconnecting each time.  Retries are safe
    because submission is idempotent by content address: a duplicate of
    an in-flight request coalesces server-side, a duplicate of a
    finished one hits the cache.

    Admission rejections (:class:`ServeRejected`) are *not* transport
    failures — the server is alive and said no — so they propagate
    immediately and count as breaker successes.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7227,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 timeout: float = 300.0,
                 connect_timeout: float = 5.0,
                 faults=None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.host = host
        self.port = port
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self._clock = clock
        self._sleep = sleep
        self._rng = self.retry.rng()
        self._client: Optional[ServeClient] = None
        plan = FaultPlan.resolve(faults)
        self._injector = (FaultInjector(plan, label="client",
                                        sites=("conn",))
                          if plan is not None else None)
        self.attempts = 0
        self.retries = 0
        self.reconnects = 0

    # -- connection management ----------------------------------------

    def _ensure_client(self) -> ServeClient:
        if self._client is None:
            self._client = ServeClient(self.host, self.port,
                                       timeout=self.connect_timeout)
            self.reconnects += 1
        return self._client

    def _drop_connection(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            try:
                client.close()
            except OSError:
                pass

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the retry loop ------------------------------------------------

    def _call_with_retries(self, operation, op_timeout: float,
                           deadline: Optional[float]):
        """Run ``operation(client, timeout)`` under breaker + retries.

        ``deadline`` bounds the *whole* loop (attempts + backoffs) in
        seconds from now; ``op_timeout`` bounds each attempt's socket
        operations.
        """
        end = self._clock() + deadline if deadline is not None else None
        last_error: Optional[Exception] = None
        attempt = 0
        while True:
            attempt += 1
            self.attempts += 1
            if not self.breaker.allow():
                raise CircuitOpenError(
                    f"circuit open for {self.host}:{self.port} "
                    f"({self.breaker.remaining_cooldown():.1f}s cooldown "
                    f"remaining)")
            if self._injector is not None:
                delay = self._injector.slow_client_delay()
                if delay > 0.0:
                    self._sleep(delay)
            remaining = (end - self._clock()) if end is not None else None
            if remaining is not None and remaining <= 0:
                self.breaker.record_failure()
                raise ServeError(
                    f"request deadline exhausted after {attempt - 1} "
                    f"attempt(s)") from last_error
            timeout = op_timeout
            if remaining is not None:
                timeout = min(timeout, remaining)
            try:
                client = self._ensure_client()
                result = operation(client, timeout)
            except ServeRejected:
                # The server is alive and answered; not a circuit event
                # worth opening for, and retrying inside the rejection
                # window would just burn the backoff budget.
                self.breaker.record_success()
                raise
            except (ServeError, ConnectionError, socket.timeout,
                    OSError, ValueError) as error:
                last_error = error
                self.breaker.record_failure()
                self._drop_connection()
                _count("serve.client.failures")
                if attempt >= self.retry.max_attempts:
                    raise ServeError(
                        f"request failed after {attempt} attempt(s): "
                        f"{error}") from error
                backoff = self.retry.backoff(attempt, self._rng)
                if end is not None \
                        and self._clock() + backoff >= end:
                    raise ServeError(
                        f"request deadline exhausted after {attempt} "
                        f"attempt(s): {error}") from error
                self.retries += 1
                _count("serve.client.retries")
                self._sleep(backoff)
            else:
                self.breaker.record_success()
                return result

    # -- operations ----------------------------------------------------

    def solve(self, request, deadline: Optional[float] = None):
        """Submit one request with retries; blocks for its response.

        ``deadline`` bounds the whole call in seconds.  When omitted it
        is derived from the request's own wall-clock budget (plus
        :data:`NETWORK_GRACE`) so the socket timeout tracks how long
        the solve is *allowed* to take; an unbudgeted request falls
        back to the client-wide ``timeout``.
        """
        limits = getattr(request, "limits", None)
        wall = getattr(limits, "wall_clock_limit", None)
        if deadline is None and wall is not None:
            deadline = wall + NETWORK_GRACE
        op_timeout = deadline if deadline is not None else self.timeout
        return self._call_with_retries(
            lambda client, timeout: client.solve(request, deadline=timeout),
            op_timeout, deadline)

    def ping(self) -> Dict:
        return self._call_with_retries(
            lambda client, timeout: client.ping(timeout=timeout),
            self.connect_timeout, None)

    def metrics(self) -> Dict:
        return self._call_with_retries(
            lambda client, timeout: client.metrics(timeout=timeout),
            self.timeout, None)

    def shutdown(self) -> None:
        """Best-effort shutdown request (no retries — a dead server is
        already shut down)."""
        try:
            self._ensure_client().shutdown()
        except (ServeError, OSError):
            pass
        finally:
            self._drop_connection()
