# Convenience targets for the reproduction.

.PHONY: install test bench bench-quick bench-all examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Solver BCP throughput (arena vs legacy engine); finishes in well under
# a minute and writes BENCH_solver.json at the repository root.
bench-quick:
	PYTHONPATH=src python -m repro.bench.throughput --quick

# The previous bench-quick: a scaled-down pass of every paper table.
bench-all:
	REPRO_BENCH_SCALE=0.7 pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do \
		echo "== $$script"; python $$script || exit 1; \
	done

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
