# Convenience targets for the reproduction.

.PHONY: install test test-fast check chaos bench bench-quick bench-all examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# Skip the @pytest.mark.slow tests (deadline races, hard instances).
# Works from a clean checkout, installed or not.
test-fast:
	PYTHONPATH=src python -m pytest tests/ -m "not slow"

# The tier-1 acceptance gate: the full suite, fail-fast, from a clean
# checkout (no install needed thanks to PYTHONPATH).
check:
	PYTHONPATH=src python -m pytest -x -q tests/

# Chaos suite: deterministic fault injection end to end (fixed seed so a
# failure reproduces bit-for-bit).  See docs/reliability.md.
chaos:
	PYTHONPATH=src REPRO_CHAOS_SEED=1 python -m pytest -x -q \
		tests/test_chaos.py tests/test_parser_fuzz.py

bench:
	pytest benchmarks/ --benchmark-only

# Solver BCP throughput (arena vs legacy engine); finishes in well under
# a minute and writes BENCH_solver.json at the repository root.
bench-quick:
	PYTHONPATH=src python -m repro.bench.throughput --quick

# The previous bench-quick: a scaled-down pass of every paper table.
bench-all:
	REPRO_BENCH_SCALE=0.7 pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do \
		echo "== $$script"; python $$script || exit 1; \
	done

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
