# Convenience targets for the reproduction.

.PHONY: install test test-fast check chaos encodings-matrix fuzz-smoke fuzz-nightly trace-smoke serve-smoke serve-chaos dist-smoke bench bench-quick bench-smoke bench-scale bench-all examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# Skip the @pytest.mark.slow tests (deadline races, hard instances).
# Works from a clean checkout, installed or not.
test-fast:
	PYTHONPATH=src python -m pytest tests/ -m "not slow"

# The tier-1 acceptance gate: the full suite, fail-fast, from a clean
# checkout (no install needed thanks to PYTHONPATH).
check:
	PYTHONPATH=src python -m pytest -x -q tests/

# Chaos suite: deterministic fault injection end to end (fixed seed so a
# failure reproduces bit-for-bit).  See docs/reliability.md.
chaos:
	PYTHONPATH=src REPRO_CHAOS_SEED=1 python -m pytest -x -q \
		tests/test_chaos.py tests/test_parser_fuzz.py

# Encoding-matrix smoke: the cardinality/partial-order property suites
# plus the equisatisfiability matrix restricted to the new families
# (commander / bimander / product AMO, seqdirect, POP, POP-H) — a fast
# per-push gate on the encoding layer itself.  See docs/encodings.md.
encodings-matrix:
	PYTHONPATH=src python -m pytest -q tests/test_cardinality.py \
		tests/test_partial_order.py
	PYTHONPATH=src python -m pytest -q tests/test_encodings_equisat.py \
		-k "cmddirect or bimdirect or proddirect or seqdirect or pop"

# Differential-fuzzing smoke: a 60-second budgeted campaign on the
# quick matrix — which races the stock arena engine against
# arena+inprocess (inprocessing + tier reduction) and includes one
# strategy from each new encoding family (cmddirect, pop, pop-h), so
# every new solver flag and encoding code path is differentially
# fuzzed on each CI push.  Any disagreement between strategies fails
# the target and leaves a minimized reproducer bundle under
# fuzz-bundles/.  See docs/testing.md.
fuzz-smoke:
	PYTHONPATH=src python -m repro fuzz --seeds 3 --matrix quick \
		--budget-seconds 60 --out fuzz-bundles

# The nightly campaign: the full registry matrix (25 encodings x 2
# symmetry x 2 engines), rotating seed base (CI passes FUZZ_SEED_BASE
# from the run number), fixed wall budget.
FUZZ_SEED_BASE ?= 1
fuzz-nightly:
	PYTHONPATH=src python -m repro fuzz --seeds 25 \
		--seed-base $(FUZZ_SEED_BASE) --matrix full \
		--budget-seconds 1200 --out fuzz-bundles

# Observability smoke test: solve one small instance with --trace on,
# assert every line of the sink parses as JSON, then render it.  See
# docs/observability.md.
trace-smoke:
	rm -f trace-smoke.trace.jsonl
	PYTHONPATH=src python -m repro width alu2 --scale 0.6 \
		--trace trace-smoke.trace.jsonl
	PYTHONPATH=src python -c "\
	from repro.obs.report import parse_trace_file; \
	records = parse_trace_file('trace-smoke.trace.jsonl'); \
	spans = [r for r in records if r.get('type') == 'span']; \
	assert spans, 'trace contains no spans'; \
	assert any(r.get('type') == 'metrics' for r in records), \
	    'trace contains no metrics snapshot'; \
	print(f'trace-smoke: {len(records)} records, {len(spans)} spans OK')"
	PYTHONPATH=src python -m repro trace trace-smoke.trace.jsonl

# Solver-as-a-service smoke: boot the asyncio solve service on an
# ephemeral loopback port, submit a small SAT/UNSAT corpus twice over
# the JSON-lines protocol, and assert the second pass is served almost
# entirely from the content-addressed, audit-verified result cache,
# that the metrics dump carries the serve.cache.* counters, and that
# the server shuts down cleanly.  See docs/serving.md.
serve-smoke:
	PYTHONPATH=src python -m repro.serve.smoke

# Serve chaos suite: wedge a worker (the watchdog must SIGKILL it and
# reclaim the pool slot), drop connections under a retrying client, and
# SIGKILL the whole server mid-corpus then restart it over the same
# journal + cache — asserting zero lost admitted requests and no
# unaudited cache fills.  Deterministic fault seeds; see docs/serving.md
# ("Resilience").
serve-chaos:
	PYTHONPATH=src python -m repro.serve.chaos

# Distributed-solving smoke: a 2-shard work-stealing run with an
# injected worker crash (zero lost jobs, legacy-engine fallback), a
# clause-sharing portfolio under corrupt_share (filter must hold), and
# a cubed run with crashing workers (every cube still closed).
# Deterministic fault seeds; see docs/distributed.md.
dist-smoke:
	PYTHONPATH=src python -m repro.dist.smoke

bench:
	pytest benchmarks/ --benchmark-only

# Solver throughput (BCP stress, context and conflict-heavy suites);
# finishes in about a minute and writes BENCH_solver.json at the
# repository root.
bench-quick:
	PYTHONPATH=src python -m repro.bench.throughput --quick

# bench-quick plus the checked-in performance floor: fails on a >25%
# regression of any figure pinned in benchmarks/floor.json (props/sec,
# BCP speedup, conflict-suite speedup).  This is the CI bench gate.
bench-smoke:
	PYTHONPATH=src python -m repro.bench.throughput --quick \
		-o bench-smoke.json --check-floor benchmarks/floor.json

# Distributed-solving scale bench: worker-scaling sweep (1/2/4 workers
# over the hard-UNSAT suite, cube-and-conquer routing) plus the
# clause-sharing-vs-racing duel; writes BENCH_scale.json at the
# repository root.  Takes a few minutes; `--quick` (used by CI) checks
# the shape on tiny instances in seconds.
bench-scale:
	PYTHONPATH=src python -m repro.bench.scale

# The previous bench-quick: a scaled-down pass of every paper table.
bench-all:
	REPRO_BENCH_SCALE=0.7 pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do \
		echo "== $$script"; python $$script || exit 1; \
	done

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
