# Convenience targets for the reproduction.

.PHONY: install test bench bench-quick examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_BENCH_SCALE=0.7 pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do \
		echo "== $$script"; python $$script || exit 1; \
	done

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
