"""Dedicated coverage for the brute-force testing oracles.

``repro.coloring.brute`` and ``repro.sat.solver.enumerate`` anchor the
whole differential/property test pyramid — every other suite trusts
them — yet they only ever ran *as* oracles, never *under* test.  These
tests pin their behaviour directly (known chromatic numbers, exact
model counts, the size guards) and close the loop with the acceptance
check: on every generated graph small enough to brute-force, the CDCL
pipeline agrees with the oracle under all 15 encodings.
"""

import pytest
from hypothesis import given, settings

from repro.coloring import (ColoringProblem, Graph, complete_graph,
                            cycle_graph)
from repro.coloring.brute import (chromatic_number, find_coloring,
                                  is_colorable)
from repro.core import Strategy, solve_coloring
from repro.core.encodings import ALL_ENCODINGS
from repro.qa import generate_instances
from repro.sat import CNF, SolveStatus, solve
from repro.sat.solver.enumerate import (all_models, count_models,
                                        enumerate_models,
                                        solve_by_enumeration)
from .strategies import make_random_cnf, small_cnfs, small_graphs


class TestBruteColoring:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_complete_graph_chromatic_number(self, n):
        assert chromatic_number(complete_graph(n)) == n

    @pytest.mark.parametrize("n,chi", [(4, 2), (5, 3), (6, 2), (7, 3)])
    def test_cycle_chromatic_number(self, n, chi):
        assert chromatic_number(cycle_graph(n)) == chi

    def test_edgeless_graph_needs_one_color(self):
        assert chromatic_number(Graph(5)) == 1

    def test_empty_graph(self):
        assert chromatic_number(Graph(0)) == 0

    def test_found_coloring_is_proper(self):
        graph = complete_graph(4)
        coloring = find_coloring(graph, 4)
        assert coloring is not None
        assert ColoringProblem(graph, 4).is_valid_coloring(coloring)

    def test_no_coloring_below_chromatic_number(self):
        assert find_coloring(complete_graph(4), 3) is None
        assert not is_colorable(cycle_graph(5), 2)

    def test_size_guard(self):
        with pytest.raises(ValueError):
            find_coloring(Graph(17), 3)

    def test_rejects_zero_colors(self):
        with pytest.raises(ValueError):
            find_coloring(Graph(2), 0)

    @settings(max_examples=40, deadline=None)
    @given(small_graphs(max_vertices=6))
    def test_monotone_in_colors(self, graph):
        """K-colorable implies (K+1)-colorable; chromatic_number is the
        exact threshold."""
        chi = chromatic_number(graph)
        if chi > 1:
            assert not is_colorable(graph, chi - 1)
        assert is_colorable(graph, chi)
        assert is_colorable(graph, chi + 1)


class TestEnumeration:
    def test_unconstrained_counts_all_assignments(self):
        assert count_models(CNF(num_vars=3)) == 8

    def test_single_unit_halves_the_space(self):
        assert count_models(CNF([[1]], num_vars=3)) == 4

    def test_contradiction_has_no_models(self):
        cnf = CNF([[1], [-1]])
        assert count_models(cnf) == 0
        assert not solve_by_enumeration(cnf).is_sat

    def test_exact_models_of_xor(self):
        # x XOR y: exactly the two assignments with differing values.
        cnf = CNF([[1, 2], [-1, -2]])
        models = all_models(cnf)
        assert len(models) == 2
        assert {(m.value(1), m.value(2)) for m in models} == \
            {(True, False), (False, True)}

    def test_every_enumerated_model_satisfies(self):
        cnf = make_random_cnf(num_vars=6, num_clauses=15, seed=11)
        models = list(enumerate_models(cnf))
        assert all(m.satisfies(cnf) for m in models)
        assert count_models(cnf) == len(models)

    def test_size_guard(self):
        with pytest.raises(ValueError):
            next(enumerate_models(CNF(num_vars=25)))

    @pytest.mark.parametrize("seed", range(15))
    def test_agrees_with_cdcl(self, seed):
        cnf = make_random_cnf(num_vars=8, num_clauses=28, seed=seed + 2000)
        assert solve_by_enumeration(cnf).is_sat == \
            solve(cnf).is_sat

    @settings(max_examples=40, deadline=None)
    @given(small_cnfs(max_vars=6, max_clauses=14))
    def test_agrees_with_cdcl_property(self, cnf):
        assert solve_by_enumeration(cnf).is_sat == \
            solve(cnf).is_sat


def _small_generated_problems(max_vertices=6):
    """Generated qa instances small enough for the brute oracle."""
    problems = []
    for seed in (1, 2, 3):
        for instance in generate_instances(seed):
            if 1 <= instance.num_vertices <= max_vertices:
                problems.append((instance.name, instance.problem))
    return problems


@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
def test_brute_oracle_agreement_all_encodings(encoding):
    """Acceptance: on every generated graph of <= 6 vertices, the CDCL
    pipeline agrees with the brute-force oracle under each of the 15
    encodings, and every SAT answer decodes to a proper coloring."""
    problems = _small_generated_problems()
    assert problems, "generators produced no small instances"
    strategy = Strategy(encoding, "none")
    for name, problem in problems:
        expected = is_colorable(problem.graph, problem.num_colors)
        outcome = solve_coloring(problem, strategy)
        assert outcome.status in (SolveStatus.SAT, SolveStatus.UNSAT), \
            f"{name}: unbounded solve did not decide"
        assert outcome.is_sat == expected, (
            f"{name}: {encoding} answered {outcome.status}, oracle says "
            f"colorable={expected}")
        if outcome.is_sat:
            assert problem.is_valid_coloring(outcome.coloring), \
                f"{name}: {encoding} decoded an improper coloring"
