"""Tests for encoding name parsing and the registry."""

import pytest

from repro.core.encodings import (ALL_ENCODINGS, EXTENSION_ENCODINGS,
                                  MODERN_AMO_ENCODINGS, MODERN_ENCODINGS,
                                  NEW_ENCODINGS, PARTIAL_ORDER_ENCODINGS,
                                  PREVIOUS_ENCODINGS, REGISTRY_ENCODINGS,
                                  TABLE2_ENCODINGS, get_encoding,
                                  parse_encoding)


class TestNameParsing:
    def test_simple_names(self):
        for name in ("log", "direct", "muldirect", "ITE-linear", "ITE-log"):
            encoding = parse_encoding(name)
            assert not encoding.is_hierarchical
            assert encoding.levels[0].num_vars is None

    def test_hierarchical_names(self):
        encoding = parse_encoding("ITE-linear-2+muldirect")
        assert encoding.is_hierarchical
        assert len(encoding.levels) == 2
        assert encoding.levels[0].scheme.name == "ITE-linear"
        assert encoding.levels[0].num_vars == 2
        assert encoding.levels[1].scheme.name == "muldirect"

    def test_ite_log_suffix_not_confused_with_param(self):
        encoding = parse_encoding("ITE-log-2+direct")
        assert encoding.levels[0].scheme.name == "ITE-log"
        assert encoding.levels[0].num_vars == 2

    def test_case_insensitive(self):
        assert parse_encoding("MULDIRECT").levels[0].scheme.name == "muldirect"
        assert parse_encoding("ite-LOG").levels[0].scheme.name == "ITE-log"

    def test_three_level_name(self):
        encoding = parse_encoding("direct-2+muldirect-2+log")
        assert len(encoding.levels) == 3

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            parse_encoding("gray")

    def test_param_on_final_level_rejected(self):
        with pytest.raises(ValueError):
            parse_encoding("muldirect-3")

    def test_missing_param_on_upper_level_rejected(self):
        with pytest.raises(ValueError):
            parse_encoding("muldirect+muldirect")

    def test_empty_level_rejected(self):
        with pytest.raises(ValueError):
            parse_encoding("direct-3+")

    def test_zero_param_rejected(self):
        with pytest.raises(ValueError):
            parse_encoding("direct-0+muldirect")

    def test_pop_h_not_confused_with_pop_param(self):
        # "pop-h" is a scheme name; "pop-2" is pop with 2 threshold vars.
        assert parse_encoding("pop-h").levels[0].scheme.name == "pop-h"
        level = parse_encoding("pop-2+muldirect").levels[0]
        assert level.scheme.name == "pop"
        assert level.num_vars == 2

    def test_cardinality_scheme_names(self):
        for name in ("seqdirect", "cmddirect", "bimdirect", "proddirect"):
            encoding = parse_encoding(name)
            assert not encoding.is_hierarchical
            assert encoding.levels[0].scheme.name == name


class TestRegistry:
    def test_paper_inventory(self):
        assert len(PREVIOUS_ENCODINGS) == 2
        assert len(NEW_ENCODINGS) == 12
        assert len(ALL_ENCODINGS) == 15
        assert len(TABLE2_ENCODINGS) == 7
        assert set(TABLE2_ENCODINGS) <= set(ALL_ENCODINGS)

    def test_every_paper_encoding_parses(self):
        for name in ALL_ENCODINGS:
            encoding = get_encoding(name)
            assert encoding.name == name

    def test_registry_inventory(self):
        assert len(MODERN_AMO_ENCODINGS) == 3
        assert len(PARTIAL_ORDER_ENCODINGS) == 3
        assert len(MODERN_ENCODINGS) == 7
        assert len(REGISTRY_ENCODINGS) == (len(ALL_ENCODINGS)
                                           + len(EXTENSION_ENCODINGS)
                                           + len(MODERN_ENCODINGS))
        assert len(set(REGISTRY_ENCODINGS)) == len(REGISTRY_ENCODINGS)

    def test_every_registry_encoding_parses(self):
        for name in REGISTRY_ENCODINGS:
            encoding = get_encoding(name)
            assert encoding.name == name
            assert encoding.vars_per_vertex(5) >= 1

    def test_cache_returns_same_object(self):
        assert get_encoding("log") is get_encoding("log")

    def test_vars_per_vertex(self):
        assert get_encoding("direct").vars_per_vertex(7) == 7
        assert get_encoding("log").vars_per_vertex(7) == 3
        assert get_encoding("ITE-linear").vars_per_vertex(7) == 6
        assert get_encoding("ITE-log").vars_per_vertex(7) == 3
        # 7 = 3+2+2 under a 3-way top: 3 + 3 bottom vars
        assert get_encoding("muldirect-3+muldirect").vars_per_vertex(7) == 6
        # ITE-linear-2 -> 3 subdomains of (3,2,2): 2 + 3 bottom vars
        assert get_encoding("ITE-linear-2+direct").vars_per_vertex(7) == 5

    def test_vars_per_vertex_new_families(self):
        # pop: K-1 thresholds; pop-h: K selectors + K-1 thresholds.
        assert get_encoding("pop").vars_per_vertex(7) == 6
        assert get_encoding("pop-h").vars_per_vertex(7) == 13
        # pop-2 -> 3 ordered subdomains of (3,2,2): 2 + 3 bottom vars.
        assert get_encoding("pop-2+muldirect").vars_per_vertex(7) == 5
        # 7 values + aux: commander ⌈7/3⌉=3 groups -> 3 commanders
        # (recursion stops at 3 = group size), bimander 2 index bits,
        # product 3+3 grid selectors, sequential 6 ladder vars.
        assert get_encoding("cmddirect").vars_per_vertex(7) == 10
        assert get_encoding("bimdirect").vars_per_vertex(7) == 9
        assert get_encoding("proddirect").vars_per_vertex(7) == 13
        assert get_encoding("seqdirect").vars_per_vertex(7) == 13


class TestEncodingSizes:
    """Structural expectations about CNF sizes (§2/§3 trade-offs)."""

    def _encode(self, name, num_vertices=6, num_colors=5):
        from repro.coloring import ColoringProblem, complete_graph
        problem = ColoringProblem(complete_graph(num_vertices), num_colors)
        return get_encoding(name).encode(problem)

    def test_log_uses_fewest_vars(self):
        log_vars = self._encode("log").cnf.num_vars
        direct_vars = self._encode("direct").cnf.num_vars
        assert log_vars < direct_vars

    def test_muldirect_has_fewer_clauses_than_direct(self):
        assert (self._encode("muldirect").cnf.num_clauses
                < self._encode("direct").cnf.num_clauses)

    def test_ite_encodings_add_no_structural_clauses(self):
        # Same conflict clause count as muldirect minus its ALO clauses.
        ite = self._encode("ITE-linear")
        muldirect = self._encode("muldirect")
        assert ite.cnf.num_clauses == muldirect.cnf.num_clauses - 6

    def test_hierarchical_reduces_vars_vs_direct(self):
        hier = self._encode("muldirect-3+muldirect", num_colors=9)
        direct = self._encode("direct", num_colors=9)
        assert hier.cnf.num_vars < direct.cnf.num_vars
