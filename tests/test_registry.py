"""Tests for encoding name parsing and the registry."""

import pytest

from repro.core.encodings import (ALL_ENCODINGS, NEW_ENCODINGS,
                                  PREVIOUS_ENCODINGS, TABLE2_ENCODINGS,
                                  get_encoding, parse_encoding)


class TestNameParsing:
    def test_simple_names(self):
        for name in ("log", "direct", "muldirect", "ITE-linear", "ITE-log"):
            encoding = parse_encoding(name)
            assert not encoding.is_hierarchical
            assert encoding.levels[0].num_vars is None

    def test_hierarchical_names(self):
        encoding = parse_encoding("ITE-linear-2+muldirect")
        assert encoding.is_hierarchical
        assert len(encoding.levels) == 2
        assert encoding.levels[0].scheme.name == "ITE-linear"
        assert encoding.levels[0].num_vars == 2
        assert encoding.levels[1].scheme.name == "muldirect"

    def test_ite_log_suffix_not_confused_with_param(self):
        encoding = parse_encoding("ITE-log-2+direct")
        assert encoding.levels[0].scheme.name == "ITE-log"
        assert encoding.levels[0].num_vars == 2

    def test_case_insensitive(self):
        assert parse_encoding("MULDIRECT").levels[0].scheme.name == "muldirect"
        assert parse_encoding("ite-LOG").levels[0].scheme.name == "ITE-log"

    def test_three_level_name(self):
        encoding = parse_encoding("direct-2+muldirect-2+log")
        assert len(encoding.levels) == 3

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            parse_encoding("gray")

    def test_param_on_final_level_rejected(self):
        with pytest.raises(ValueError):
            parse_encoding("muldirect-3")

    def test_missing_param_on_upper_level_rejected(self):
        with pytest.raises(ValueError):
            parse_encoding("muldirect+muldirect")

    def test_empty_level_rejected(self):
        with pytest.raises(ValueError):
            parse_encoding("direct-3+")

    def test_zero_param_rejected(self):
        with pytest.raises(ValueError):
            parse_encoding("direct-0+muldirect")


class TestRegistry:
    def test_paper_inventory(self):
        assert len(PREVIOUS_ENCODINGS) == 2
        assert len(NEW_ENCODINGS) == 12
        assert len(ALL_ENCODINGS) == 15
        assert len(TABLE2_ENCODINGS) == 7
        assert set(TABLE2_ENCODINGS) <= set(ALL_ENCODINGS)

    def test_every_paper_encoding_parses(self):
        for name in ALL_ENCODINGS:
            encoding = get_encoding(name)
            assert encoding.name == name

    def test_cache_returns_same_object(self):
        assert get_encoding("log") is get_encoding("log")

    def test_vars_per_vertex(self):
        assert get_encoding("direct").vars_per_vertex(7) == 7
        assert get_encoding("log").vars_per_vertex(7) == 3
        assert get_encoding("ITE-linear").vars_per_vertex(7) == 6
        assert get_encoding("ITE-log").vars_per_vertex(7) == 3
        # 7 = 3+2+2 under a 3-way top: 3 + 3 bottom vars
        assert get_encoding("muldirect-3+muldirect").vars_per_vertex(7) == 6
        # ITE-linear-2 -> 3 subdomains of (3,2,2): 2 + 3 bottom vars
        assert get_encoding("ITE-linear-2+direct").vars_per_vertex(7) == 5


class TestEncodingSizes:
    """Structural expectations about CNF sizes (§2/§3 trade-offs)."""

    def _encode(self, name, num_vertices=6, num_colors=5):
        from repro.coloring import ColoringProblem, complete_graph
        problem = ColoringProblem(complete_graph(num_vertices), num_colors)
        return get_encoding(name).encode(problem)

    def test_log_uses_fewest_vars(self):
        log_vars = self._encode("log").cnf.num_vars
        direct_vars = self._encode("direct").cnf.num_vars
        assert log_vars < direct_vars

    def test_muldirect_has_fewer_clauses_than_direct(self):
        assert (self._encode("muldirect").cnf.num_clauses
                < self._encode("direct").cnf.num_clauses)

    def test_ite_encodings_add_no_structural_clauses(self):
        # Same conflict clause count as muldirect minus its ALO clauses.
        ite = self._encode("ITE-linear")
        muldirect = self._encode("muldirect")
        assert ite.cnf.num_clauses == muldirect.cnf.num_clauses - 6

    def test_hierarchical_reduces_vars_vs_direct(self):
        hier = self._encode("muldirect-3+muldirect", num_colors=9)
        direct = self._encode("direct", num_colors=9)
        assert hier.cnf.num_vars < direct.cnf.num_vars
