"""Tests for pattern combinators."""

import pytest

from repro.core.patterns import (check_pattern, conflict_clause,
                                 negate_pattern, pattern_holds,
                                 patterns_are_distinct, shift_clause,
                                 shift_pattern)


class TestCheckPattern:
    def test_valid(self):
        check_pattern((1, -2, 3), num_vars=3)

    def test_zero_literal(self):
        with pytest.raises(ValueError):
            check_pattern((1, 0), num_vars=2)

    def test_out_of_block(self):
        with pytest.raises(ValueError):
            check_pattern((4,), num_vars=3)

    def test_repeated_variable(self):
        with pytest.raises(ValueError):
            check_pattern((1, -1), num_vars=2)

    def test_empty_pattern_is_valid(self):
        check_pattern((), num_vars=0)


class TestNegate:
    def test_de_morgan(self):
        assert negate_pattern((1, -2, 3)) == (-1, 2, -3)

    def test_empty_pattern_negates_to_empty_clause(self):
        assert negate_pattern(()) == ()


class TestShift:
    def test_positive_and_negative(self):
        assert shift_pattern((1, -2), 10) == (11, -12)

    def test_zero_offset(self):
        assert shift_pattern((3, -4), 0) == (3, -4)

    def test_clause_alias(self):
        assert shift_clause((-1, 2), 5) == (-6, 7)


class TestConflictClause:
    def test_combines_negations(self):
        assert conflict_clause((1, -2), (3,)) == (-1, 2, -3)

    def test_both_empty_gives_empty_clause(self):
        # Two adjacent single-value CSP variables are unsatisfiable.
        assert conflict_clause((), ()) == ()


class TestPatternHolds:
    def test_positive_and_negative(self):
        values = [True, False, True]
        assert pattern_holds((1, -2, 3), values)
        assert not pattern_holds((2,), values)
        assert not pattern_holds((-1,), values)

    def test_empty_pattern_always_holds(self):
        assert pattern_holds((), [])


class TestDistinct:
    def test_distinct(self):
        assert patterns_are_distinct([(1,), (-1,), (1, 2)])

    def test_duplicate_up_to_order(self):
        assert not patterns_are_distinct([(1, -2), (-2, 1)])
