"""Property-based tests for the negotiation router against the exact
coloring oracle."""

from hypothesis import given, settings, strategies as st

from repro.coloring import ColoringProblem, chromatic_number
from repro.fpga import is_legal, negotiate_tracks
from repro.fpga.detailed import RoutingCSP
from repro.fpga.global_route import GlobalRouting
from repro.fpga.arch import FPGAArchitecture, Segment
from repro.fpga.netlist import Net, Netlist
from repro.fpga.global_route import TwoPinNet


def _csp_from_graph(graph, width):
    """Wrap a bare conflict graph in a RoutingCSP (synthetic two-pin
    nets, each on its own fake segment, edges realised via a shared
    segment per edge)."""
    # Build a routing whose conflict graph *is* the given graph: give
    # every vertex a private segment plus one shared segment per edge.
    n = graph.num_vertices
    cols = max(2, n + 1)
    arch = FPGAArchitecture(cols, 2)
    nets = [Net(f"n{v}", (0, 0), ((1, 0),)) for v in range(n)]
    netlist = Netlist("synthetic", cols, 2, nets)
    edge_list = list(graph.edges())
    two_pin = []
    for v in range(n):
        segments = [Segment("h", v, 0)]
        for index, (a, b) in enumerate(edge_list):
            if v in (a, b):
                segments.append(Segment("h", index, 1))
        two_pin.append(TwoPinNet(net_index=v, subnet_index=0,
                                 source=(0, 0), sink=(1, 0),
                                 segments=tuple(segments)))
    routing = GlobalRouting(netlist=netlist, arch=arch, two_pin_nets=two_pin)
    problem = ColoringProblem(graph, width)
    return RoutingCSP(routing=routing, width=width, problem=problem,
                      build_time=0.0)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_negotiation_soundness_property(data):
    """When negotiation claims success, the assignment is legal; it never
    'succeeds' below the chromatic number."""
    from .strategies import make_random_graph
    n = data.draw(st.integers(min_value=2, max_value=8))
    seed = data.draw(st.integers(min_value=0, max_value=100))
    graph = make_random_graph(n, 0.5, seed)
    chi = chromatic_number(graph)
    width = data.draw(st.integers(min_value=1, max_value=chi + 2))
    result = negotiate_tracks(_csp_from_graph(graph, width),
                              max_iterations=60)
    if result.success:
        assert width >= chi
        assert is_legal(result.assignment)
    elif width >= chi + 1:
        # Generous widths should rarely defeat negotiation; with slack 1+
        # the greedy scheme always converges on these tiny graphs.
        assert width <= chi + 1 or not result.success


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50))
def test_negotiation_completeness_with_slack(seed):
    """With one extra track over chi, negotiation converges on small
    graphs."""
    from .strategies import make_random_graph
    graph = make_random_graph(7, 0.4, seed)
    chi = chromatic_number(graph)
    result = negotiate_tracks(_csp_from_graph(graph, chi + 1),
                              max_iterations=300)
    assert result.success
    assert is_legal(result.assignment)
